GO ?= go

.PHONY: build test race vet bench bench-json bench-diff bufdebug stream chaos trace hotspot contention check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-heavy packages under the race detector: the coherence
# protocol, the telemetry registry, the fault-injected fabric, the
# lock-free queues, the streaming bench, and the layers between them.
race:
	$(GO) test -race ./internal/core/... ./internal/telemetry/... ./internal/cluster/... ./internal/fabric/... ./internal/fault/... ./internal/chaos/... ./internal/queue/... ./internal/bench/... ./internal/cc/...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# Machine-readable micro results (sequential/random paths per system,
# streaming bulk transfers serial and pipelined) with run metadata.
bench-json:
	$(GO) run ./cmd/darray-bench -json-out BENCH_micro.json

# Zero-copy ablation: the micro suite pooled vs NoPool side by side.
# Virtual ns/op must match; allocs/op is the pool's payoff.
bench-diff:
	$(GO) run ./cmd/darray-bench -bench-diff -words-per-node 8192 -max-nodes 3

# Buffer-misuse detection: -tags bufdebug arms double-release and
# use-after-release panics and quarantines released buffers, so any
# stale alias in the zero-copy data path trips deterministically.
bufdebug:
	$(GO) test -tags bufdebug -count=1 ./internal/buf/ ./internal/core/ ./internal/chaos/

# Streaming smoke: the bulk-transfer pipeline, doorbell batching, and
# coalescing tables at CI scale, plus the >=2x speedup gate.
stream:
	$(GO) run ./cmd/darray-bench -fig stream -words-per-node 8192 -max-nodes 3
	$(GO) test -run 'TestStream' -count=1 ./internal/bench/

# Short seeded chaos smoke: every workload (microbench, bulk-range,
# PageRank, CC, KVS YCSB-B) must survive the default fault schedule
# bit-identically.
chaos:
	$(GO) test -run 'TestChaos' -count=1 ./internal/chaos/

# Function-shipping smoke: the RMW-heavy hotspot crossover tables
# (skew x ship mode) at CI scale, plus the crossover acceptance gate
# (auto >= 1.5x off at theta=0.99, auto within 5% of off at theta=0).
hotspot:
	$(GO) run ./cmd/darray-bench -fig hotspot -max-nodes 6
	$(GO) test -run 'TestHotspot|TestShip' -count=1 ./internal/bench/ ./internal/core/

# Congestion-control smoke: the multi-stream contention tables (adaptive
# windows vs the fixed knobs) at CI scale, plus the crossover gate
# (>=1.3x better p99 and higher Jain fairness at 8 streams, lone-stream
# throughput within 5%) and the fixed-window chaos ablation.
contention:
	$(GO) run ./cmd/darray-bench -fig contention -words-per-node 65536 -max-nodes 2
	$(GO) test -run 'TestContention|TestChaosStreamContention' -count=1 ./internal/bench/ ./internal/chaos/

# Tracing smoke: a small traced KVS workload exports a Perfetto-loadable
# trace, the analyzer reloads it, and the acceptance tests verify that
# the exported JSON parses, every non-root span links to a live parent,
# and the critical path covers >= 95% of the slowest root op.
trace:
	$(GO) run ./cmd/darray-kv -nodes 3 -threads 1 -records 2048 -ops 500 -trace-out $(or $(TMPDIR),/tmp)/darray-trace-smoke.json
	$(GO) run ./cmd/darray-trace $(or $(TMPDIR),/tmp)/darray-trace-smoke.json
	$(GO) test -run 'TestAcceptance' -count=1 ./internal/trace/

check: build vet test race stream chaos bufdebug trace hotspot contention
