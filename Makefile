GO ?= go

.PHONY: build test race vet bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-heavy packages under the race detector: the coherence
# protocol, the telemetry registry, and the layers between them.
race:
	$(GO) test -race ./internal/core/... ./internal/telemetry/... ./internal/cluster/... ./internal/fabric/...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

check: build vet test race
