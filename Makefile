GO ?= go

.PHONY: build test race vet bench chaos check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-heavy packages under the race detector: the coherence
# protocol, the telemetry registry, the fault-injected fabric, and the
# layers between them.
race:
	$(GO) test -race ./internal/core/... ./internal/telemetry/... ./internal/cluster/... ./internal/fabric/... ./internal/fault/... ./internal/chaos/...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# Short seeded chaos smoke: every workload (microbench, PageRank, CC,
# KVS YCSB-B) must survive the default fault schedule bit-identically.
chaos:
	$(GO) test -run 'TestChaos' -count=1 ./internal/chaos/

check: build vet test race chaos
