// Command darray-trace analyzes an exported trace file (produced with
// -trace-out on darray-bench, darray-kv, or darray-graph): it reloads
// the spans from the Chrome trace-event JSON and prints the per-stage
// latency decomposition and critical-path report without needing the
// Perfetto UI.
//
//	darray-trace trace.json             # digest: stage table + longest root
//	darray-trace -roots trace.json      # list every sampled root op
//	darray-trace -crit 12 trace.json    # critical path of the Nth root
package main

import (
	"flag"
	"fmt"
	"os"

	"darray/internal/trace"
)

func main() {
	var (
		roots = flag.Bool("roots", false, "list every root span instead of the digest")
		crit  = flag.Int("crit", -1, "print the critical path of the Nth root (0-based, in recording order)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintf(os.Stderr, "usage: darray-trace [-roots] [-crit N] <trace.json>\n")
		os.Exit(2)
	}

	spans, err := trace.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(spans) == 0 {
		fmt.Println("no spans in file")
		return
	}

	switch {
	case *roots:
		for i, r := range trace.Roots(spans) {
			fmt.Printf("%4d  %s\n", i, r)
		}
	case *crit >= 0:
		rs := trace.Roots(spans)
		if *crit >= len(rs) {
			fmt.Fprintf(os.Stderr, "root %d out of range: file has %d roots\n", *crit, len(rs))
			os.Exit(1)
		}
		cp := trace.CriticalPath(spans, rs[*crit])
		fmt.Print(cp.Report())
		fmt.Printf("coverage: %.1f%% of root virtual time attributed\n", 100*cp.Coverage())
	default:
		fmt.Printf("%d spans, %d roots\n\n", len(spans), len(trace.Roots(spans)))
		fmt.Println(trace.Summarize(spans))
	}
}
