// Command darray-bench regenerates the paper's evaluation tables and
// figures (§6). Each figure runs the real systems over the simulated
// RDMA fabric and reports virtual-time results from the calibrated cost
// model (see DESIGN.md for the methodology).
//
// Usage:
//
//	darray-bench -list
//	darray-bench -fig fig13
//	darray-bench -all
//	darray-bench -fig fig16 -graph-scale 16 -max-nodes 8
//	darray-bench -fig fig1 -metrics
//	darray-bench -all -metrics -metrics-addr :8080   # live /debug/metrics + pprof
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"darray/internal/bench"
	"darray/internal/chaos"
	"darray/internal/fault"
	"darray/internal/telemetry"
	"darray/internal/trace"
)

func main() {
	var (
		fig        = flag.String("fig", "", "experiment id to run (fig1, fig12..fig18, ablation)")
		all        = flag.Bool("all", false, "run every experiment")
		list       = flag.Bool("list", false, "list experiments")
		maxNodes   = flag.Int("max-nodes", 6, "largest simulated node count")
		words      = flag.Int64("words-per-node", 1<<16, "array words per node (weak scaling unit)")
		graphScale = flag.Int("graph-scale", 13, "R-MAT scale for fig16 (paper: 24)")
		prIters    = flag.Int("pr-iters", 5, "PageRank iterations")
		kvRecords  = flag.Int64("kv-records", 4096, "KVS record count")
		kvOps      = flag.Int("kv-ops", 2000, "KVS ops per thread")
		zipfOps    = flag.Int("zipf-ops", 20000, "fig14 ops per node")
		randomOps  = flag.Int("random-ops", 20000, "fig18 ops per node")
		threads    = flag.String("threads", "1,2,4,8", "thread sweep for fig12/fig17")
		metrics    = flag.Bool("metrics", false, "collect telemetry; print per-experiment deltas and a final cluster-wide report")
		metricsFmt = flag.String("metrics-format", "text", "final report format: text or json")
		metricAddr = flag.String("metrics-addr", "", "serve live metrics (expvar, /debug/metrics, pprof) on this address; implies -metrics")
		chaosOn    = flag.Bool("chaos", false, "inject seeded fabric faults under every experiment (drops, dups, spikes, a partition window, a stalled node)")
		chaosSeed  = flag.Int64("chaos-seed", 1, "fault plan seed for -chaos; the same seed replays the same plan")
		jsonOut    = flag.String("json-out", "", "run the micro suite and write machine-readable results (e.g. BENCH_micro.json)")
		txBurst    = flag.Int("tx-burst", 0, "work requests per doorbell in the Tx thread (0 default, 1 or -1 disables batching); a ceiling when congestion control is on")
		pipeDepth  = flag.Int("pipeline", 0, "outstanding chunk fetches per bulk range (0 default, 1 or -1 serial); a ceiling when congestion control is on")
		prefetch   = flag.Int("prefetch", 0, "chunks prefetched on a sequential miss (0 default, -1 disables prefetch and the detector)")
		noCoalesce = flag.Bool("no-coalesce", false, "disable destination coalescing of coherence commands")
		noPool     = flag.Bool("no-pool", false, "disable the zero-copy buffer pool (allocate-per-message ablation)")
		noCC       = flag.Bool("no-cc", false, "disable congestion control: -pipeline and -tx-burst become fixed settings instead of ceilings")
		ship       = flag.String("ship", "auto", "function-shipping mode: auto (per-chunk contention estimator), on, off")
		benchDiff  = flag.Bool("bench-diff", false, "run the micro suite pooled and NoPool, print a ns/op and allocs/op comparison")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file (inspect with go tool pprof)")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
		traceOut   = flag.String("trace-out", "", "record causal spans and write a Perfetto-loadable Chrome trace to this file")
		traceEvery = flag.Int("trace-sample", 1, "with -trace-out, sample every Nth public op as a trace root")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	fmt.Println("calibrating cost model on this host...")
	model := bench.DefaultModel()
	p := bench.DefaultParams(model)
	p.MaxNodes = *maxNodes
	p.WordsPerNode = *words
	p.GraphScale = *graphScale
	p.PRIters = *prIters
	p.KVRecords = *kvRecords
	p.KVOps = *kvOps
	p.ZipfOps = *zipfOps
	p.RandomOps = *randomOps
	p.Threads = parseInts(*threads)
	p.TxBurst = *txBurst
	p.PipelineDepth = *pipeDepth
	p.PrefetchAhead = *prefetch
	p.DisableCoalesce = *noCoalesce
	p.NoPool = *noPool
	p.NoCC = *noCC
	p.Ship = *ship
	if *metricAddr != "" {
		*metrics = true
	}
	var trc *trace.Tracer
	if *traceOut != "" {
		trc = trace.New(0)
		trc.Enable(*traceEvery)
		p.Tracer = trc
	}
	if *metrics {
		reg := telemetry.New()
		reg.Enable()
		p.Telemetry = reg
		if *metricAddr != "" {
			// expvar under /debug/vars, the registry under /debug/metrics,
			// and net/http/pprof's handlers — all on the default mux.
			reg.Publish("darray")
			http.Handle("/debug/metrics", reg.Handler())
			go func() {
				if err := http.ListenAndServe(*metricAddr, nil); err != nil {
					fmt.Fprintf(os.Stderr, "metrics server: %v\n", err)
				}
			}()
			fmt.Printf("serving metrics on %s (/debug/metrics, /debug/vars, /debug/pprof)\n", *metricAddr)
		}
	}
	var (
		chaosMu    sync.Mutex
		chaosPlans []*fault.Plan
	)
	if *chaosOn {
		p.Faults = func(nodes int) *fault.Plan {
			plan := fault.New(chaos.DefaultFaults(*chaosSeed, nodes))
			chaosMu.Lock()
			chaosPlans = append(chaosPlans, plan)
			chaosMu.Unlock()
			return plan
		}
		fmt.Printf("chaos: fault injection on, seed=%d (replay with -chaos-seed %d)\n", *chaosSeed, *chaosSeed)
	}
	bench.PrintModel(os.Stdout, p)
	fmt.Println()

	run := func(e bench.Experiment) {
		start := time.Now()
		bench.RunAndPrint(os.Stdout, e, p)
		fmt.Printf("(%s completed in %v wall time)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	switch {
	case *all:
		for _, e := range bench.Experiments() {
			run(e)
		}
	case *fig != "":
		e, ok := bench.Find(*fig)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *fig)
			os.Exit(1)
		}
		run(e)
	case *jsonOut != "":
		// -json-out alone runs just the micro suite (below).
	case *benchDiff:
		start := time.Now()
		bench.MicroDiff(os.Stdout, p)
		fmt.Printf("(bench-diff completed in %v wall time)\n", time.Since(start).Round(time.Millisecond))
	default:
		flag.Usage()
		os.Exit(2)
	}

	if *jsonOut != "" {
		start := time.Now()
		if err := bench.WriteMicroJSON(*jsonOut, p); err != nil {
			fmt.Fprintf(os.Stderr, "json-out: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (micro suite, %v wall time)\n", *jsonOut, time.Since(start).Round(time.Millisecond))
	}

	if trc != nil {
		if err := trc.WriteFile(*traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
			os.Exit(1)
		}
		spans := trc.Spans()
		fmt.Printf("# trace\nwrote %s (%d spans; load in https://ui.perfetto.dev)\n%s\n",
			*traceOut, len(spans), trace.Summarize(spans))
		fmt.Println(trc.StageReport())
	}
	if p.Telemetry != nil {
		snap := p.Telemetry.Snapshot().NonZero()
		if *metricsFmt == "json" {
			fmt.Println(snap.JSON())
		} else {
			fmt.Printf("# cumulative metrics (all experiments)\n%s", snap.Report())
		}
	}
	if *chaosOn {
		var total fault.Stats
		chaosMu.Lock()
		for _, plan := range chaosPlans {
			total = total.Merge(plan.Stats())
		}
		n := len(chaosPlans)
		chaosMu.Unlock()
		fmt.Printf("chaos: seed=%d clusters=%d %s\n", *chaosSeed, n, total)
	}
}

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "bad thread list %q\n", s)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}
