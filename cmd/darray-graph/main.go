// Command darray-graph runs the DArray graph analytics engine on a
// generated R-MAT graph or a SNAP-style edge-list file:
//
//	darray-graph -app pagerank -scale 14 -nodes 4 -threads 2
//	darray-graph -app cc -input graph.txt
//	darray-graph -app sssp -scale 12 -engine darray
//	darray-graph -app pagerank -engine gemini   # baseline engine
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"darray/internal/chaos"
	"darray/internal/cluster"
	"darray/internal/core"
	"darray/internal/engine"
	"darray/internal/fault"
	"darray/internal/gemini"
	"darray/internal/graph"
	"darray/internal/trace"
	"darray/internal/vtime"
)

func main() {
	var (
		app        = flag.String("app", "pagerank", "pagerank | cc | bfs | sssp")
		eng        = flag.String("engine", "darray", "darray | darray-pin | gemini")
		input      = flag.String("input", "", "edge-list file (default: generate R-MAT)")
		scale      = flag.Int("scale", 12, "R-MAT scale when generating")
		nodes      = flag.Int("nodes", 4, "simulated cluster nodes")
		threads    = flag.Int("threads", 1, "application threads per node (darray engine)")
		iters      = flag.Int("iters", 10, "PageRank iterations")
		root       = flag.Int64("root", 0, "BFS/SSSP source vertex")
		metrics    = flag.Bool("metrics", false, "print the cluster telemetry report after the run")
		chaosOn    = flag.Bool("chaos", false, "inject seeded fabric faults (enables the virtual-time model: fault windows are vtime-keyed)")
		chaosSeed  = flag.Int64("chaos-seed", 1, "fault plan seed for -chaos")
		txBurst    = flag.Int("tx-burst", 0, "work requests per doorbell in the Tx thread (0 default, 1 or -1 disables batching); a ceiling when congestion control is on")
		pipeDepth  = flag.Int("pipeline", 0, "outstanding chunk fetches per bulk range (0 default, 1 or -1 serial); a ceiling when congestion control is on")
		prefetch   = flag.Int("prefetch", 0, "chunks prefetched on a sequential miss (0 default, -1 disables prefetch and the detector)")
		noCoalesce = flag.Bool("no-coalesce", false, "disable destination coalescing of coherence commands")
		noPool     = flag.Bool("no-pool", false, "disable the zero-copy buffer pool (allocate-per-message ablation)")
		noCC       = flag.Bool("no-cc", false, "disable congestion control: -pipeline and -tx-burst become fixed settings instead of ceilings")
		ship       = flag.String("ship", "auto", "function-shipping mode: auto (per-chunk contention estimator), on, off")
		traceOut   = flag.String("trace-out", "", "record causal spans and write a Perfetto-loadable Chrome trace to this file (enables the virtual-time model)")
		traceEvery = flag.Int("trace-sample", 1, "with -trace-out, sample every Nth public op as a trace root")
	)
	flag.Parse()

	g := loadGraph(*input, *scale)
	fmt.Printf("graph: %d vertices, %d edges | engine=%s app=%s nodes=%d threads=%d\n",
		g.N, g.Edges(), *eng, *app, *nodes, *threads)

	cfg := cluster.Config{
		Nodes:           *nodes,
		Metrics:         *metrics,
		MsgKindName:     core.KindName,
		TxBurst:         *txBurst,
		PipelineDepth:   *pipeDepth,
		PrefetchAhead:   *prefetch,
		DisableCoalesce: *noCoalesce,
		NoPool:          *noPool,
		NoCC:            *noCC,
		Ship:            *ship,
	}
	var plan *fault.Plan
	if *chaosOn {
		plan = fault.New(chaos.DefaultFaults(*chaosSeed, *nodes))
		cfg.Faults = plan
		cfg.Model = vtime.Default()
		fmt.Printf("chaos: fault injection on, seed=%d\n", *chaosSeed)
	}
	var trc *trace.Tracer
	if *traceOut != "" {
		trc = trace.New(0)
		trc.Enable(*traceEvery)
		cfg.Tracer = trc
		if cfg.Model == nil {
			cfg.Model = vtime.Default() // spans need virtual time
		}
	}
	c := cluster.New(cfg)
	defer c.Close()

	start := time.Now()
	summary := make(chan string, 1)
	c.Run(func(n *cluster.Node) {
		switch *eng {
		case "darray", "darray-pin":
			runDArray(c, n, g, *app, *eng == "darray-pin", *threads, *iters, *root, summary)
		case "gemini":
			runGemini(c, n, g, *app, *iters, summary)
		default:
			fmt.Fprintf(os.Stderr, "unknown engine %q\n", *eng)
			os.Exit(2)
		}
	})
	fmt.Printf("%s\nwall time: %v\n", <-summary, time.Since(start).Round(time.Millisecond))
	if *metrics {
		fmt.Print(c.MetricsReport())
	}
	if trc != nil {
		if err := trc.WriteFile(*traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
			os.Exit(1)
		}
		spans := trc.Spans()
		fmt.Printf("# trace\nwrote %s (%d spans; load in https://ui.perfetto.dev)\n%s\n",
			*traceOut, len(spans), trace.Summarize(spans))
		fmt.Println(trc.StageReport())
	}
	if plan != nil {
		fmt.Printf("chaos: seed=%d %s\n", *chaosSeed, plan.Stats())
		if err := c.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "chaos: cluster degraded (seed=%d): %v\n", *chaosSeed, err)
			os.Exit(1)
		}
	}
}

func loadGraph(path string, scale int) *graph.CSR {
	if path == "" {
		return graph.RMAT(graph.DefaultRMAT(scale))
	}
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	g, err := graph.ReadEdgeList(f, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return g
}

func runDArray(c *cluster.Cluster, n *cluster.Node, g *graph.CSR, app string, pin bool, threads, iters int, root int64, summary chan<- string) {
	eg := engine.NewGraph(n, g)
	ctx := n.NewCtx(0)
	switch app {
	case "pagerank":
		var local []float64
		if threads > 1 {
			local = eg.PageRankMT(n, iters, threads, pin)
		} else {
			local = eg.PageRank(ctx, iters, pin)
		}
		mass := 0.0
		for _, r := range local {
			mass += r
		}
		total := c.AllReduceSum(ctx, mass)
		if n.ID() == 0 {
			summary <- fmt.Sprintf("pagerank: %d iterations, rank mass %.6f", iters, total)
		}
	case "cc":
		var labels []uint64
		var rounds int
		if threads > 1 {
			labels, rounds = eg.ConnectedComponentsMT(n, threads)
		} else {
			labels, rounds = eg.ConnectedComponents(ctx, pin)
		}
		roots := 0.0
		lo, _ := eg.LocalRange()
		for i, l := range labels {
			if l == uint64(lo)+uint64(i) {
				roots++
			}
		}
		comps := c.AllReduceSum(ctx, roots)
		if n.ID() == 0 {
			summary <- fmt.Sprintf("cc: %d components in %d rounds", int(comps), rounds)
		}
	case "bfs":
		dist := eg.BFS(ctx, root)
		reach := 0.0
		for _, d := range dist {
			if d != ^uint64(0) {
				reach++
			}
		}
		total := c.AllReduceSum(ctx, reach)
		if n.ID() == 0 {
			summary <- fmt.Sprintf("bfs: %d vertices reachable from %d", int(total), root)
		}
	case "sssp":
		w := graph.RandomWeights(g, 1, 10, 42)
		dist := eg.SSSP(ctx, w, root)
		reach := 0.0
		for _, d := range dist {
			if d < 1e300 {
				reach++
			}
		}
		total := c.AllReduceSum(ctx, reach)
		if n.ID() == 0 {
			summary <- fmt.Sprintf("sssp: %d vertices reachable from %d (weights U[1,10))", int(total), root)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown app %q\n", app)
		os.Exit(2)
	}
}

func runGemini(c *cluster.Cluster, n *cluster.Node, g *graph.CSR, app string, iters int, summary chan<- string) {
	e := gemini.New(n, g)
	ctx := n.NewCtx(0)
	switch app {
	case "pagerank":
		local := e.PageRank(ctx, iters)
		mass := 0.0
		for _, r := range local {
			mass += r
		}
		total := c.AllReduceSum(ctx, mass)
		if n.ID() == 0 {
			summary <- fmt.Sprintf("pagerank (gemini): %d iterations, rank mass %.6f", iters, total)
		}
	case "cc":
		labels, rounds := e.ConnectedComponents(ctx)
		lo, _ := e.LocalRange()
		roots := 0.0
		for i, l := range labels {
			if l == uint64(lo)+uint64(i) {
				roots++
			}
		}
		comps := c.AllReduceSum(ctx, roots)
		if n.ID() == 0 {
			summary <- fmt.Sprintf("cc (gemini): %d components in %d rounds", int(comps), rounds)
		}
	default:
		fmt.Fprintf(os.Stderr, "gemini engine supports pagerank and cc\n")
		os.Exit(2)
	}
}
