// Command darray-kv runs a scripted workload against the DArray-based
// distributed key-value store (paper §5.2) and reports per-phase
// statistics. It is a driver for kicking the tires on the KVS outside
// the benchmark harness:
//
//	darray-kv -nodes 4 -records 100000 -ops 50000 -get-ratio 0.9
//	darray-kv -backend gam ...     # same workload on the GAM-based KVS
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"darray/internal/chaos"
	"darray/internal/cluster"
	"darray/internal/core"
	"darray/internal/fault"
	"darray/internal/gamkvs"
	"darray/internal/kvs"
	"darray/internal/stats"
	"darray/internal/trace"
	"darray/internal/vtime"
	"darray/internal/ycsb"
)

func main() {
	var (
		nodes      = flag.Int("nodes", 3, "simulated cluster nodes")
		threads    = flag.Int("threads", 2, "application threads per node")
		records    = flag.Int64("records", 50000, "distinct keys")
		ops        = flag.Int("ops", 20000, "operations per thread")
		getRatio   = flag.Float64("get-ratio", 0.95, "fraction of gets")
		rmwRatio   = flag.Float64("rmw-ratio", 0, "fraction of read-modify-writes (YCSB-F style; read the record, bump its counter via Operate)")
		theta      = flag.Float64("theta", 0.99, "zipfian skew")
		backend    = flag.String("backend", "darray", "darray or gam")
		valueLen   = flag.Int("value-len", 100, "value size in bytes")
		metrics    = flag.Bool("metrics", false, "print the cluster telemetry report after the run")
		chaosOn    = flag.Bool("chaos", false, "inject seeded fabric faults (enables the virtual-time model: fault windows are vtime-keyed)")
		chaosSeed  = flag.Int64("chaos-seed", 1, "fault plan seed for -chaos")
		txBurst    = flag.Int("tx-burst", 0, "work requests per doorbell in the Tx thread (0 default, 1 or -1 disables batching); a ceiling when congestion control is on")
		pipeDepth  = flag.Int("pipeline", 0, "outstanding chunk fetches per bulk range (0 default, 1 or -1 serial); a ceiling when congestion control is on")
		prefetch   = flag.Int("prefetch", 0, "chunks prefetched on a sequential miss (0 default, -1 disables prefetch and the detector)")
		noCoalesce = flag.Bool("no-coalesce", false, "disable destination coalescing of coherence commands")
		noPool     = flag.Bool("no-pool", false, "disable the zero-copy buffer pool (allocate-per-message ablation)")
		noCC       = flag.Bool("no-cc", false, "disable congestion control: -pipeline and -tx-burst become fixed settings instead of ceilings")
		ship       = flag.String("ship", "auto", "function-shipping mode: auto (per-chunk contention estimator), on, off")
		traceOut   = flag.String("trace-out", "", "record causal spans and write a Perfetto-loadable Chrome trace to this file (enables the virtual-time model)")
		traceEvery = flag.Int("trace-sample", 1, "with -trace-out, sample every Nth public op as a trace root")
	)
	flag.Parse()

	clcfg := cluster.Config{
		Nodes:           *nodes,
		Metrics:         *metrics,
		MsgKindName:     core.KindName,
		TxBurst:         *txBurst,
		PipelineDepth:   *pipeDepth,
		PrefetchAhead:   *prefetch,
		DisableCoalesce: *noCoalesce,
		NoPool:          *noPool,
		NoCC:            *noCC,
		Ship:            *ship,
	}
	var plan *fault.Plan
	if *chaosOn {
		plan = fault.New(chaos.DefaultFaults(*chaosSeed, *nodes))
		clcfg.Faults = plan
		clcfg.Model = vtime.Default()
		fmt.Printf("chaos: fault injection on, seed=%d\n", *chaosSeed)
	}
	var trc *trace.Tracer
	if *traceOut != "" {
		trc = trace.New(0)
		trc.Enable(*traceEvery)
		clcfg.Tracer = trc
		if clcfg.Model == nil {
			clcfg.Model = vtime.Default() // spans need virtual time
		}
	}
	c := cluster.New(clcfg)
	defer c.Close()

	cfg := kvs.Config{
		Buckets:   *records / 8,
		ByteWords: int64(*nodes) * *records * int64(*valueLen/8+8),
	}

	var mu sync.Mutex
	var gets, puts, rmws, notFound int64
	var lat stats.Histogram
	start := time.Now()

	c.Run(func(n *cluster.Node) {
		var store *kvs.Store
		switch *backend {
		case "darray":
			store = kvs.NewDArray(n, cfg)
		case "gam":
			store = gamkvs.New(n, cfg)
		default:
			fmt.Fprintf(os.Stderr, "unknown backend %q\n", *backend)
			os.Exit(2)
		}
		var counters *core.Array
		var bump core.OpID
		if *rmwRatio > 0 {
			// One update counter per record: an RMW reads the record from
			// the store and bumps its counter with a commutative Operate
			// add — the op the function-shipping path accelerates.
			counters = core.New(n, *records)
			bump = counters.RegisterOp(core.OpAddU64)
		}
		root := n.NewCtx(0)
		gen := ycsb.NewGenerator(ycsb.Config{Records: *records, ValueLen: *valueLen, Seed: 7})
		per := *records / int64(c.Nodes())
		lo := int64(n.ID()) * per
		hi := lo + per
		if n.ID() == c.Nodes()-1 {
			hi = *records
		}
		for r := lo; r < hi; r++ {
			if err := store.Put(root, ycsb.Key(r), gen.LoadValue(r)); err != nil {
				panic(err)
			}
		}
		c.Barrier(root)

		n.RunThreads(*threads, func(ctx *cluster.Ctx) {
			g := ycsb.NewGenerator(ycsb.Config{
				Records: *records, GetRatio: *getRatio, RMWRatio: *rmwRatio, Theta: *theta,
				ValueLen: *valueLen, Seed: int64(n.ID()*100 + ctx.TID),
			})
			var lg, lp, lr, lnf int64
			for k := 0; k < *ops; k++ {
				op := g.Next()
				opStart := time.Now()
				switch op.Kind {
				case ycsb.OpGet:
					lg++
					if _, err := store.Get(ctx, op.Key); err == kvs.ErrNotFound {
						lnf++
					}
				case ycsb.OpPut:
					lp++
					if err := store.Put(ctx, op.Key, op.Val); err != nil {
						panic(err)
					}
				case ycsb.OpRMW:
					lr++
					if _, err := store.Get(ctx, op.Key); err == kvs.ErrNotFound {
						lnf++
					}
					counters.Apply(ctx, bump, op.ID, 1)
				}
				if k%64 == 0 {
					mu.Lock()
					lat.Add(time.Since(opStart).Nanoseconds())
					mu.Unlock()
				}
			}
			mu.Lock()
			gets += lg
			puts += lp
			rmws += lr
			notFound += lnf
			mu.Unlock()
		})
		c.Barrier(root)
	})

	wall := time.Since(start)
	total := gets + puts + rmws
	fmt.Printf("backend=%s nodes=%d threads=%d records=%d ship=%s\n", *backend, *nodes, *threads, *records, *ship)
	fmt.Printf("ops: %d total (%d gets, %d puts, %d rmws, %d not-found)\n", total, gets, puts, rmws, notFound)
	fmt.Printf("wall: %v  (%.0f ops/s host throughput)\n", wall.Round(time.Millisecond),
		float64(total)/wall.Seconds())
	fmt.Printf("sampled host latency: p50=%v p99=%v max=%v\n",
		time.Duration(lat.Percentile(50)), time.Duration(lat.Percentile(99)),
		time.Duration(lat.Max()))
	if *metrics {
		fmt.Print(c.MetricsReport())
	}
	if trc != nil {
		if err := trc.WriteFile(*traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
			os.Exit(1)
		}
		spans := trc.Spans()
		fmt.Printf("# trace\nwrote %s (%d spans; load in https://ui.perfetto.dev)\n%s\n",
			*traceOut, len(spans), trace.Summarize(spans))
		fmt.Println(trc.StageReport())
	}
	if plan != nil {
		fmt.Printf("chaos: seed=%d %s\n", *chaosSeed, plan.Stats())
		if err := c.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "chaos: cluster degraded (seed=%d): %v\n", *chaosSeed, err)
			os.Exit(1)
		}
	}
}
