package queue

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestMPSCFIFOSingleProducer(t *testing.T) {
	q := NewMPSC[int]()
	for i := 0; i < 100; i++ {
		q.Push(i)
	}
	for i := 0; i < 100; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d = (%d,%v), want (%d,true)", i, v, ok, i)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("queue should be empty")
	}
}

func TestMPSCEmpty(t *testing.T) {
	q := NewMPSC[string]()
	if !q.Empty() {
		t.Fatal("new queue not empty")
	}
	q.Push("x")
	if q.Empty() {
		t.Fatal("queue with element reports empty")
	}
	q.Pop()
	if !q.Empty() {
		t.Fatal("drained queue not empty")
	}
}

func TestMPSCMultiProducerNoLoss(t *testing.T) {
	const producers, per = 8, 1000
	q := NewMPSC[int]()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.Push(p*per + i)
			}
		}(p)
	}
	done := make(chan struct{})
	seen := make(map[int]bool, producers*per)
	go func() {
		defer close(done)
		lastPer := make([]int, producers) // per-producer FIFO check
		for i := range lastPer {
			lastPer[i] = -1
		}
		for len(seen) < producers*per {
			v, ok := q.Pop()
			if !ok {
				runtime.Gosched()
				continue
			}
			if seen[v] {
				t.Errorf("duplicate value %d", v)
				return
			}
			seen[v] = true
			p, i := v/per, v%per
			if i <= lastPer[p] {
				t.Errorf("producer %d out of order: %d after %d", p, i, lastPer[p])
				return
			}
			lastPer[p] = i
		}
	}()
	wg.Wait()
	<-done
	if len(seen) != producers*per {
		t.Fatalf("received %d values, want %d", len(seen), producers*per)
	}
}

func TestMPSCPopWaitDeliversAfterPark(t *testing.T) {
	q := NewMPSC[int]()
	stop := make(chan struct{})
	got := make(chan int, 1)
	go func() {
		v, ok := q.PopWait(stop)
		if ok {
			got <- v
		}
	}()
	q.Push(42)
	if v := <-got; v != 42 {
		t.Fatalf("PopWait = %d, want 42", v)
	}
}

func TestMPSCPopWaitStop(t *testing.T) {
	q := NewMPSC[int]()
	stop := make(chan struct{})
	done := make(chan bool, 1)
	go func() {
		_, ok := q.PopWait(stop)
		done <- ok
	}()
	close(stop)
	if ok := <-done; ok {
		t.Fatal("PopWait should report !ok on stop with empty queue")
	}
}

func TestMPSCPopWaitManyRounds(t *testing.T) {
	q := NewMPSC[int]()
	stop := make(chan struct{})
	const rounds = 2000
	done := make(chan int)
	go func() {
		sum := 0
		for i := 0; i < rounds; i++ {
			v, ok := q.PopWait(stop)
			if !ok {
				break
			}
			sum += v
		}
		done <- sum
	}()
	want := 0
	for i := 1; i <= rounds; i++ {
		q.Push(i)
		want += i
	}
	if got := <-done; got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

func TestSPSCBasic(t *testing.T) {
	q := NewSPSC[int](8)
	for i := 0; i < 8; i++ {
		if !q.TryPush(i) {
			t.Fatalf("push %d failed on non-full ring", i)
		}
	}
	if q.TryPush(99) {
		t.Fatal("push succeeded on full ring")
	}
	if q.Len() != 8 {
		t.Fatalf("Len = %d, want 8", q.Len())
	}
	for i := 0; i < 8; i++ {
		v, ok := q.TryPop()
		if !ok || v != i {
			t.Fatalf("pop = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("pop succeeded on empty ring")
	}
}

func TestSPSCBadCapacityPanics(t *testing.T) {
	for _, c := range []int{0, -4, 3, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("capacity %d: no panic", c)
				}
			}()
			NewSPSC[int](c)
		}()
	}
}

func TestSPSCConcurrentTransfer(t *testing.T) {
	q := NewSPSC[uint64](64)
	const n = 20000
	var sum uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for got := 0; got < n; {
			if v, ok := q.TryPop(); ok {
				sum += v
				got++
			} else {
				runtime.Gosched()
			}
		}
	}()
	var want uint64
	for i := uint64(1); i <= n; i++ {
		for !q.TryPush(i) {
			runtime.Gosched()
		}
		want += i
	}
	<-done
	if sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}

// Property: any sequence of pushes followed by pops returns the same
// sequence (FIFO) for the single-producer case.
func TestMPSCQuickFIFO(t *testing.T) {
	f := func(vals []int64) bool {
		q := NewMPSC[int64]()
		for _, v := range vals {
			q.Push(v)
		}
		for _, v := range vals {
			got, ok := q.Pop()
			if !ok || got != v {
				return false
			}
		}
		_, ok := q.Pop()
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: SPSC preserves FIFO order and capacity bounds.
func TestSPSCQuickFIFO(t *testing.T) {
	f := func(vals []uint32) bool {
		q := NewSPSC[uint32](16)
		i := 0
		for i < len(vals) {
			pushed := 0
			for i < len(vals) && q.TryPush(vals[i]) {
				i++
				pushed++
			}
			if pushed == 0 && q.Len() != 16 {
				return false // push failed on non-full ring
			}
			for j := i - pushed; j < i; j++ {
				got, ok := q.TryPop()
				if !ok || got != vals[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// spscNoPad replicates SPSC without the cache-line padding, so the
// contended benchmarks below measure the padding's effect directly
// (run both and compare: go test -bench 'SPSCContended' ./internal/queue).
type spscNoPad struct {
	buf  []uint64
	mask uint64
	head atomic.Uint64
	tail atomic.Uint64
}

func (q *spscNoPad) TryPush(v uint64) bool {
	t := q.tail.Load()
	if t-q.head.Load() == uint64(len(q.buf)) {
		return false
	}
	q.buf[t&q.mask] = v
	q.tail.Store(t + 1)
	return true
}

func (q *spscNoPad) TryPop() (uint64, bool) {
	h := q.head.Load()
	if h == q.tail.Load() {
		return 0, false
	}
	v := q.buf[h&q.mask]
	q.head.Store(h + 1)
	return v, true
}

// benchSPSCContended streams b.N values through the ring with producer
// and consumer on separate goroutines — the layout where false sharing
// of head/tail shows up.
func benchSPSCContended(b *testing.B, push func(uint64) bool, pop func() (uint64, bool)) {
	done := make(chan uint64, 1)
	n := uint64(b.N)
	b.ResetTimer()
	go func() {
		var sum uint64
		for got := uint64(0); got < n; {
			if v, ok := pop(); ok {
				sum += v
				got++
			}
		}
		done <- sum
	}()
	for i := uint64(0); i < n; i++ {
		for !push(i) {
		}
	}
	<-done
}

func BenchmarkSPSCContendedPadded(b *testing.B) {
	q := NewSPSC[uint64](1024)
	benchSPSCContended(b, q.TryPush, q.TryPop)
}

func BenchmarkSPSCContendedNoPad(b *testing.B) {
	q := &spscNoPad{buf: make([]uint64, 1024), mask: 1023}
	benchSPSCContended(b, q.TryPush, q.TryPop)
}

func BenchmarkMPSCPush(b *testing.B) {
	q := NewMPSC[int]()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Push(i)
		if i&1023 == 0 {
			for {
				if _, ok := q.Pop(); !ok {
					break
				}
			}
		}
	}
}

func BenchmarkSPSCPingPong(b *testing.B) {
	q := NewSPSC[int](1024)
	for i := 0; i < b.N; i++ {
		for !q.TryPush(i) {
		}
		if _, ok := q.TryPop(); !ok {
			b.Fatal("lost element")
		}
	}
}
