// Package queue implements the lock-free queues that connect DArray's
// layers (paper §3.1): the local-request queue from application threads
// to the runtime, the RPC-message queue from the comm layer to the
// runtime, and the RDMA-request queue from the runtime to the comm
// layer. All three are multi-producer single-consumer, so we use the
// intrusive Vyukov MPSC algorithm: producers link nodes with one atomic
// exchange, the single consumer pops without atomics on the hot path.
package queue

import (
	"sync"
	"sync/atomic"
)

type node[T any] struct {
	next atomic.Pointer[node[T]]
	val  T
}

// MPSC is an unbounded multi-producer single-consumer queue. Push is
// lock-free and safe from any goroutine; Pop must only be called by one
// consumer goroutine at a time.
// head (hammered by producer Swaps) and tail (advanced by the consumer
// every Pop) live on separate cache lines so producer bursts do not
// steal the consumer's line and vice versa; parked/wake are shared by
// design and stay with the consumer fields.
type MPSC[T any] struct {
	head atomic.Pointer[node[T]] // producers swap here
	_    pad
	tail *node[T] // consumer-owned
	stub node[T]

	// parked is 1 while the consumer is blocked in PopWait; producers
	// that observe the transition signal wake.
	parked atomic.Int32
	wake   chan struct{}

	// nodes, when non-nil, recycles dequeued link nodes instead of
	// leaving them to the GC (see NewMPSCPooled).
	nodes *sync.Pool
}

// NewMPSC returns an empty queue ready for use.
func NewMPSC[T any]() *MPSC[T] {
	q := &MPSC[T]{wake: make(chan struct{}, 1)}
	q.head.Store(&q.stub)
	q.tail = &q.stub
	return q
}

// NewMPSCPooled returns an empty queue that recycles its link nodes
// through a sync.Pool, avoiding one heap allocation per Push. Safe
// because a vacated node is recycled only by the single consumer, after
// it has observed the node's published successor — at that point the
// producer that swapped the node out of head has finished its only
// write to it, and Push re-initialises next before re-publishing.
func NewMPSCPooled[T any]() *MPSC[T] {
	q := NewMPSC[T]()
	q.nodes = &sync.Pool{New: func() any { return new(node[T]) }}
	return q
}

// Push enqueues v. It never blocks.
func (q *MPSC[T]) Push(v T) {
	var n *node[T]
	if q.nodes != nil {
		n = q.nodes.Get().(*node[T])
		n.next.Store(nil)
	} else {
		n = new(node[T])
	}
	n.val = v
	prev := q.head.Swap(n)
	prev.next.Store(n)
	if q.parked.Load() == 1 && q.parked.CompareAndSwap(1, 0) {
		q.wake <- struct{}{}
	}
}

// Pop dequeues one value without blocking. ok is false when the queue
// is (momentarily) empty.
func (q *MPSC[T]) Pop() (v T, ok bool) {
	tail := q.tail
	next := tail.next.Load()
	if next == nil {
		return v, false
	}
	q.tail = next
	v = next.val
	var zero T
	next.val = zero // drop reference for GC
	if q.nodes != nil && tail != &q.stub {
		q.nodes.Put(tail)
	}
	return v, true
}

// Empty reports whether the queue appears empty to the consumer.
func (q *MPSC[T]) Empty() bool { return q.tail.next.Load() == nil }

// PopWait dequeues one value, parking the consumer goroutine until a
// producer pushes. The stop channel aborts the wait; ok is false only
// when stop fired while the queue stayed empty.
func (q *MPSC[T]) PopWait(stop <-chan struct{}) (v T, ok bool) {
	for {
		if v, ok = q.Pop(); ok {
			return v, true
		}
		q.parked.Store(1)
		// Re-check: a producer may have pushed before seeing parked=1.
		if v, ok = q.Pop(); ok {
			if q.parked.CompareAndSwap(1, 0) {
				return v, true
			}
			// A producer already consumed our parked flag and will
			// signal; drain it so the next PopWait doesn't wake early.
			<-q.wake
			return v, true
		}
		select {
		case <-q.wake:
		case <-stop:
			if q.parked.CompareAndSwap(1, 0) {
				return v, false
			}
			<-q.wake // producer signaled concurrently; drain
			continue // it pushed something: deliver it
		}
	}
}
