package queue

import "sync/atomic"

// SPSC is a bounded single-producer single-consumer ring buffer, used
// for per-queue-pair send rings in the simulated fabric (one producer:
// the Tx thread; one consumer: the peer's Rx thread). Capacity must be
// a power of two.
//
// head and tail sit on separate cache lines: the consumer writes head
// every pop and the producer writes tail every push, so co-locating
// them makes each side's store invalidate the other's line (false
// sharing). The pads cost 128 bytes per ring — there is one ring per
// queue pair, so the overhead is negligible next to the buffer.
type SPSC[T any] struct {
	buf  []T
	mask uint64
	_    pad           // keep head off the read-mostly buf/mask line
	head atomic.Uint64 // next slot to pop (consumer)
	_    pad
	tail atomic.Uint64 // next slot to push (producer)
	_    pad
}

// pad is one cache line of spacing. 64 bytes covers x86-64 and most
// arm64 parts; adjacent-line prefetch pairs are not worth doubling it
// here.
type pad [64]byte

// NewSPSC returns a ring with the given power-of-two capacity.
func NewSPSC[T any](capacity int) *SPSC[T] {
	if capacity <= 0 || capacity&(capacity-1) != 0 {
		panic("queue: SPSC capacity must be a positive power of two")
	}
	return &SPSC[T]{buf: make([]T, capacity), mask: uint64(capacity - 1)}
}

// TryPush appends v; it reports false when the ring is full.
func (q *SPSC[T]) TryPush(v T) bool {
	t := q.tail.Load()
	if t-q.head.Load() == uint64(len(q.buf)) {
		return false
	}
	q.buf[t&q.mask] = v
	q.tail.Store(t + 1)
	return true
}

// TryPop removes the oldest value; ok is false when the ring is empty.
func (q *SPSC[T]) TryPop() (v T, ok bool) {
	h := q.head.Load()
	if h == q.tail.Load() {
		return v, false
	}
	v = q.buf[h&q.mask]
	var zero T
	q.buf[h&q.mask] = zero
	q.head.Store(h + 1)
	return v, true
}

// Len returns the number of buffered elements (approximate under
// concurrency, exact when quiesced).
func (q *SPSC[T]) Len() int { return int(q.tail.Load() - q.head.Load()) }
