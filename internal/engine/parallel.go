package engine

import (
	"sync"

	"darray/internal/cluster"
	"darray/internal/core"
)

// Multithreaded variants: the paper's Figure 16 runs the engines with
// all available cores per node. Each node's local vertex range is split
// across t application threads; DArray's lock-free access path and the
// Operated state's CAS combining are what let them share chunks without
// engine-level locking.

// PageRankMT runs PageRank with t application threads per node.
func (eg *Graph) PageRankMT(node *cluster.Node, iters, t int, usePin bool) []float64 {
	c := node.Cluster()
	curr := eg.newStateArray().AsF64()
	next := eg.newStateArray().AsF64()
	add := curr.RegisterOp(core.OpAddF64)
	_ = next.RegisterOp(core.OpAddF64)
	n := eg.csr.N

	root := node.NewCtx(0)
	curr.FillF64(root, 1.0/float64(n))
	next.FillF64(root, 0)
	c.Barrier(root)

	for it := 0; it < iters; it++ {
		eg.parallelRange(node, t, func(ctx *cluster.Ctx, lo, hi int64) {
			for u := lo; u < hi; u++ {
				deg := eg.csr.OutDegree(u)
				if deg == 0 {
					continue
				}
				contrib := curr.Get(ctx, u) / float64(deg)
				for _, v := range eg.csr.Neighbors(u) {
					next.Apply(ctx, add, v, contrib)
				}
			}
		})
		c.Barrier(root)
		base := (1 - prDamping) / float64(n)
		eg.parallelRange(node, t, func(ctx *cluster.Ctx, lo, hi int64) {
			for u := lo; u < hi; u++ {
				curr.Set(ctx, u, base+prDamping*next.Get(ctx, u))
				next.Array.Set(ctx, u, 0)
			}
		})
		c.Barrier(root)
	}
	out := make([]float64, eg.hi-eg.lo)
	for u := eg.lo; u < eg.hi; u++ {
		out[u-eg.lo] = curr.Get(root, u)
	}
	c.Barrier(root)
	return out
}

// ConnectedComponentsMT runs CC with t application threads per node.
func (eg *Graph) ConnectedComponentsMT(node *cluster.Node, t int) ([]uint64, int) {
	c := node.Cluster()
	rev := eg.reverse()
	curr := eg.newStateArray()
	next := eg.newStateArray()
	min := curr.RegisterOp(core.OpMinU64)
	_ = next.RegisterOp(core.OpMinU64)

	root := node.NewCtx(0)
	for u := eg.lo; u < eg.hi; u++ {
		curr.Set(root, u, uint64(u))
		next.Set(root, u, ^uint64(0))
	}
	c.Barrier(root)
	iters := 0
	for {
		iters++
		eg.parallelRange(node, t, func(ctx *cluster.Ctx, lo, hi int64) {
			for u := lo; u < hi; u++ {
				label := curr.Get(ctx, u)
				for _, v := range eg.csr.Neighbors(u) {
					next.Apply(ctx, min, v, label)
				}
				for _, v := range rev.Neighbors(u) {
					next.Apply(ctx, min, v, label)
				}
			}
		})
		c.Barrier(root)
		var changed atomicFloat
		eg.parallelRange(node, t, func(ctx *cluster.Ctx, lo, hi int64) {
			for u := lo; u < hi; u++ {
				cl := curr.Get(ctx, u)
				if nl := next.Get(ctx, u); nl < cl {
					curr.Set(ctx, u, nl)
					changed.set()
				}
				next.Set(ctx, u, ^uint64(0))
			}
		})
		if c.AllReduceSum(root, changed.get()) == 0 {
			break
		}
		c.Barrier(root)
	}
	out := make([]uint64, eg.hi-eg.lo)
	for u := eg.lo; u < eg.hi; u++ {
		out[u-eg.lo] = curr.Get(root, u)
	}
	c.Barrier(root)
	return out, iters
}

// parallelRange splits this node's vertex range across t threads.
func (eg *Graph) parallelRange(node *cluster.Node, t int, fn func(ctx *cluster.Ctx, lo, hi int64)) {
	if t <= 1 {
		fn(node.NewCtx(0), eg.lo, eg.hi)
		return
	}
	span := eg.hi - eg.lo
	var wg sync.WaitGroup
	for i := 0; i < t; i++ {
		lo := eg.lo + span*int64(i)/int64(t)
		hi := eg.lo + span*int64(i+1)/int64(t)
		wg.Add(1)
		go func(tid int, lo, hi int64) {
			defer wg.Done()
			fn(node.NewCtx(tid), lo, hi)
		}(i, lo, hi)
	}
	wg.Wait()
}

// atomicFloat is a tiny sticky changed-flag usable from many threads.
type atomicFloat struct {
	mu  sync.Mutex
	val float64
}

func (a *atomicFloat) set() {
	a.mu.Lock()
	a.val = 1
	a.mu.Unlock()
}

func (a *atomicFloat) get() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.val
}
