package engine

import (
	"math"
	"testing"

	"darray/internal/cluster"
	"darray/internal/graph"
)

// refPageRank is a sequential reference implementation.
func refPageRank(g *graph.CSR, iters int) []float64 {
	n := g.N
	curr := make([]float64, n)
	next := make([]float64, n)
	for i := range curr {
		curr[i] = 1.0 / float64(n)
	}
	for it := 0; it < iters; it++ {
		for i := range next {
			next[i] = 0
		}
		for u := int64(0); u < n; u++ {
			deg := g.OutDegree(u)
			if deg == 0 {
				continue
			}
			c := curr[u] / float64(deg)
			for _, v := range g.Neighbors(u) {
				next[v] += c
			}
		}
		base := (1 - 0.85) / float64(n)
		for i := range curr {
			curr[i] = base + 0.85*next[i]
		}
	}
	return curr
}

// refCC is a sequential union-find reference for undirected components.
func refCC(g *graph.CSR) []uint64 {
	parent := make([]int64, g.N)
	for i := range parent {
		parent[i] = int64(i)
	}
	var find func(int64) int64
	find = func(x int64) int64 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int64) {
		ra, rb := find(a), find(b)
		if ra < rb {
			parent[rb] = ra
		} else if rb < ra {
			parent[ra] = rb
		}
	}
	for u := int64(0); u < g.N; u++ {
		for _, v := range g.Neighbors(u) {
			union(u, v)
		}
	}
	out := make([]uint64, g.N)
	for i := range out {
		out[i] = uint64(find(int64(i)))
	}
	// Min-label propagation converges to the minimum vertex id in each
	// component; normalize union-find roots to component minima.
	minOf := map[uint64]uint64{}
	for i, r := range out {
		if m, ok := minOf[r]; !ok || uint64(i) < m {
			minOf[r] = uint64(i)
		}
	}
	for i, r := range out {
		out[i] = minOf[r]
	}
	return out
}

func tc(t *testing.T, nodes int) *cluster.Cluster {
	t.Helper()
	c := cluster.New(cluster.Config{Nodes: nodes, ChunkWords: 64, CacheChunks: 256})
	t.Cleanup(c.Close)
	return c
}

func testGraph() *graph.CSR {
	return graph.RMAT(graph.RMATConfig{Scale: 9, EdgeFactor: 4, A: 0.57, B: 0.19, C: 0.19, Seed: 3})
}

func gatherF64(c *cluster.Cluster, bounds []int64, locals [][]float64) []float64 {
	out := make([]float64, bounds[len(bounds)-1])
	for p, l := range locals {
		copy(out[bounds[p]:], l)
	}
	return out
}

func TestPageRankMatchesReference(t *testing.T) {
	for _, usePin := range []bool{false, true} {
		g := testGraph()
		want := refPageRank(g, 5)
		c := tc(t, 3)
		locals := make([][]float64, 3)
		var bounds []int64
		c.Run(func(n *cluster.Node) {
			eg := NewGraph(n, g)
			if n.ID() == 0 {
				bounds = eg.Bounds()
			}
			locals[n.ID()] = eg.PageRank(n.NewCtx(0), 5, usePin)
		})
		got := gatherF64(c, bounds, locals)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("pin=%v: rank[%d] = %g, want %g", usePin, i, got[i], want[i])
			}
		}
	}
}

func TestPageRankRanksSumToOne(t *testing.T) {
	g := testGraph()
	c := tc(t, 2)
	var sum float64
	c.Run(func(n *cluster.Node) {
		eg := NewGraph(n, g)
		local := eg.PageRank(n.NewCtx(0), 3, false)
		s := 0.0
		for _, r := range local {
			s += r
		}
		_ = c.AllReduceSum(n.NewCtx(0), s)
		if n.ID() == 0 {
			sum = c.AllReduceSum(n.NewCtx(0), s)
		} else {
			c.AllReduceSum(n.NewCtx(0), s)
		}
	})
	// Dangling vertices leak rank mass, so the sum is <= 1 but must stay
	// in a sane band.
	if sum < 0.2 || sum > 1.0001 {
		t.Fatalf("rank mass = %v, want (0.2, 1]", sum)
	}
}

func TestConnectedComponentsMatchesReference(t *testing.T) {
	g := testGraph()
	want := refCC(g)
	for _, usePin := range []bool{false, true} {
		c := tc(t, 3)
		locals := make([][]uint64, 3)
		var bounds []int64
		c.Run(func(n *cluster.Node) {
			eg := NewGraph(n, g)
			if n.ID() == 0 {
				bounds = eg.Bounds()
			}
			labels, iters := eg.ConnectedComponents(n.NewCtx(0), usePin)
			if iters < 1 {
				t.Errorf("CC reported %d iterations", iters)
			}
			locals[n.ID()] = labels
		})
		got := make([]uint64, g.N)
		for p, l := range locals {
			copy(got[bounds[p]:], l)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("pin=%v: label[%d] = %d, want %d", usePin, i, got[i], want[i])
			}
		}
	}
}

func TestBFSOnPath(t *testing.T) {
	g := graph.Path(200)
	c := tc(t, 2)
	locals := make([][]uint64, 2)
	var bounds []int64
	c.Run(func(n *cluster.Node) {
		eg := NewGraph(n, g)
		if n.ID() == 0 {
			bounds = eg.Bounds()
		}
		locals[n.ID()] = eg.BFS(n.NewCtx(0), 0)
	})
	got := make([]uint64, g.N)
	for p, l := range locals {
		copy(got[bounds[p]:], l)
	}
	for i := range got {
		if got[i] != uint64(i) {
			t.Fatalf("dist[%d] = %d, want %d", i, got[i], i)
		}
	}
}

func TestGamPageRankMatchesReference(t *testing.T) {
	g := graph.RMAT(graph.RMATConfig{Scale: 7, EdgeFactor: 4, A: 0.57, B: 0.19, C: 0.19, Seed: 5})
	want := refPageRank(g, 3)
	c := tc(t, 2)
	locals := make([][]float64, 2)
	var bounds []int64
	c.Run(func(n *cluster.Node) {
		eg := NewGamGraph(n, g)
		lo, hi := eg.LocalRange()
		if n.ID() == 0 {
			bounds = []int64{0, hi, g.N}
			_ = lo
		}
		locals[n.ID()] = eg.PageRank(n.NewCtx(0), 3)
	})
	got := gatherF64(c, bounds, locals)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("gam rank[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestGamCCMatchesReference(t *testing.T) {
	g := graph.RMAT(graph.RMATConfig{Scale: 7, EdgeFactor: 4, A: 0.57, B: 0.19, C: 0.19, Seed: 5})
	want := refCC(g)
	c := tc(t, 2)
	locals := make([][]uint64, 2)
	var split int64
	c.Run(func(n *cluster.Node) {
		eg := NewGamGraph(n, g)
		_, hi := eg.LocalRange()
		if n.ID() == 0 {
			split = hi
		}
		labels, _ := eg.ConnectedComponents(n.NewCtx(0))
		locals[n.ID()] = labels
	})
	got := make([]uint64, g.N)
	copy(got, locals[0])
	copy(got[split:], locals[1])
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("gam label[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}
