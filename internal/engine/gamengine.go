package engine

import (
	"math"

	"darray/internal/cluster"
	"darray/internal/gam"
	"darray/internal/graph"
)

// GAM-ported engine: the same push-style algorithms with vertex state in
// GAM arrays. Every access pays the lock-based path and every neighbor
// update is an exclusive Atomic, so chunks ping-pong between updating
// nodes — the two properties behind GAM's two-orders-of-magnitude gap in
// the paper's Figure 16.

// GamGraph is one node's handle to the GAM-based engine.
type GamGraph struct {
	node   *cluster.Node
	csr    *graph.CSR
	rev    *graph.CSR
	bounds []int64
	lo, hi int64
}

// NewGamGraph collectively wraps csr for the GAM engine.
func NewGamGraph(node *cluster.Node, csr *graph.CSR) *GamGraph {
	boundsAny := node.Collective(func() any {
		return csr.Partition(node.Cluster().Nodes())
	})
	bounds := boundsAny.([]int64)
	return &GamGraph{
		node:   node,
		csr:    csr,
		bounds: bounds,
		lo:     bounds[node.ID()],
		hi:     bounds[node.ID()+1],
	}
}

// LocalRange returns this node's vertex range.
func (eg *GamGraph) LocalRange() (int64, int64) { return eg.lo, eg.hi }

func (eg *GamGraph) reverse() *graph.CSR {
	if eg.rev == nil {
		eg.rev = eg.node.Collective(func() any { return eg.csr.Reverse() }).(*graph.CSR)
	}
	return eg.rev
}

// PageRank runs iters rounds of synchronous PageRank over GAM arrays.
func (eg *GamGraph) PageRank(ctx *cluster.Ctx, iters int) []float64 {
	c := eg.node.Cluster()
	curr := gam.New(eg.node, eg.csr.N)
	next := gam.New(eg.node, eg.csr.N)
	n := eg.csr.N
	init := math.Float64bits(1.0 / float64(n))
	for u := eg.lo; u < eg.hi; u++ {
		curr.Set(ctx, u, init)
		next.Set(ctx, u, 0)
	}
	c.Barrier(ctx)
	for it := 0; it < iters; it++ {
		for u := eg.lo; u < eg.hi; u++ {
			deg := eg.csr.OutDegree(u)
			if deg == 0 {
				continue
			}
			contrib := math.Float64frombits(curr.Get(ctx, u)) / float64(deg)
			for _, v := range eg.csr.Neighbors(u) {
				// GAM has no combining Operate: the addition is an
				// exclusive atomic on the destination chunk.
				next.Atomic(ctx, v, func(old uint64) uint64 {
					return math.Float64bits(math.Float64frombits(old) + contrib)
				})
			}
		}
		c.Barrier(ctx)
		base := (1 - prDamping) / float64(n)
		for u := eg.lo; u < eg.hi; u++ {
			r := base + prDamping*math.Float64frombits(next.Get(ctx, u))
			curr.Set(ctx, u, math.Float64bits(r))
			next.Set(ctx, u, 0)
		}
		c.Barrier(ctx)
	}
	out := make([]float64, eg.hi-eg.lo)
	for u := eg.lo; u < eg.hi; u++ {
		out[u-eg.lo] = math.Float64frombits(curr.Get(ctx, u))
	}
	c.Barrier(ctx)
	return out
}

// ConnectedComponents runs min-label propagation over GAM arrays.
func (eg *GamGraph) ConnectedComponents(ctx *cluster.Ctx) ([]uint64, int) {
	c := eg.node.Cluster()
	rev := eg.reverse()
	curr := gam.New(eg.node, eg.csr.N)
	next := gam.New(eg.node, eg.csr.N)
	inf := ^uint64(0)
	for u := eg.lo; u < eg.hi; u++ {
		curr.Set(ctx, u, uint64(u))
		next.Set(ctx, u, inf)
	}
	c.Barrier(ctx)
	minOp := func(label uint64) func(uint64) uint64 {
		return func(old uint64) uint64 {
			if label < old {
				return label
			}
			return old
		}
	}
	iters := 0
	for {
		iters++
		for u := eg.lo; u < eg.hi; u++ {
			label := curr.Get(ctx, u)
			for _, v := range eg.csr.Neighbors(u) {
				next.Atomic(ctx, v, minOp(label))
			}
			for _, v := range rev.Neighbors(u) {
				next.Atomic(ctx, v, minOp(label))
			}
		}
		c.Barrier(ctx)
		changed := 0.0
		for u := eg.lo; u < eg.hi; u++ {
			cl := curr.Get(ctx, u)
			if nl := next.Get(ctx, u); nl < cl {
				curr.Set(ctx, u, nl)
				changed = 1
			}
			next.Set(ctx, u, inf)
		}
		if c.AllReduceSum(ctx, changed) == 0 {
			break
		}
		c.Barrier(ctx)
	}
	out := make([]uint64, eg.hi-eg.lo)
	for u := eg.lo; u < eg.hi; u++ {
		out[u-eg.lo] = curr.Get(ctx, u)
	}
	c.Barrier(ctx)
	return out, iters
}
