package engine

import (
	"math"
	"testing"

	"darray/internal/cluster"
)

func TestPageRankMTMatchesSingleThread(t *testing.T) {
	g := testGraph()
	want := refPageRank(g, 4)
	c := tc(t, 2)
	locals := make([][]float64, 2)
	var bounds []int64
	c.Run(func(n *cluster.Node) {
		eg := NewGraph(n, g)
		if n.ID() == 0 {
			bounds = eg.Bounds()
		}
		locals[n.ID()] = eg.PageRankMT(n, 4, 3, false)
	})
	got := gatherF64(c, bounds, locals)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("mt rank[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestConnectedComponentsMTMatchesReference(t *testing.T) {
	g := testGraph()
	want := refCC(g)
	c := tc(t, 2)
	locals := make([][]uint64, 2)
	var bounds []int64
	c.Run(func(n *cluster.Node) {
		eg := NewGraph(n, g)
		if n.ID() == 0 {
			bounds = eg.Bounds()
		}
		labels, iters := eg.ConnectedComponentsMT(n, 3)
		if iters < 1 {
			t.Errorf("iters = %d", iters)
		}
		locals[n.ID()] = labels
	})
	got := make([]uint64, g.N)
	for p, l := range locals {
		copy(got[bounds[p]:], l)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mt label[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestParallelRangeCoversExactly(t *testing.T) {
	g := testGraph()
	c := tc(t, 2)
	c.Run(func(n *cluster.Node) {
		eg := NewGraph(n, g)
		seen := make([]int32, eg.hi-eg.lo)
		var mu chan struct{} = make(chan struct{}, 1)
		mu <- struct{}{}
		eg.parallelRange(n, 4, func(_ *cluster.Ctx, lo, hi int64) {
			<-mu
			for u := lo; u < hi; u++ {
				seen[u-eg.lo]++
			}
			mu <- struct{}{}
		})
		for i, v := range seen {
			if v != 1 {
				t.Errorf("vertex %d covered %d times", eg.lo+int64(i), v)
				return
			}
		}
	})
}
