package engine

import (
	"math"

	"darray/internal/cluster"
	"darray/internal/core"
	"darray/internal/graph"
)

// SSSP computes single-source shortest paths over a weighted graph with
// Bellman-Ford-style rounds of min-combining (an extension beyond the
// paper's two applications, exercising OpMinF64 through the Operated
// state). Unreachable vertices get +Inf. All nodes must pass the same
// weighted view of the engine's topology.
func (eg *Graph) SSSP(ctx *cluster.Ctx, w *graph.WCSR, root int64) []float64 {
	if w.N != eg.csr.N {
		panic("engine: weighted view does not match the engine's graph")
	}
	c := eg.node.Cluster()
	dist := eg.newStateArray().AsF64()
	next := eg.newStateArray().AsF64()
	min := dist.RegisterOp(core.OpMinF64)
	_ = next.RegisterOp(core.OpMinF64)

	inf := math.Inf(1)
	for u := eg.lo; u < eg.hi; u++ {
		dist.Set(ctx, u, inf)
		next.Set(ctx, u, inf)
	}
	c.Barrier(ctx)
	if root >= eg.lo && root < eg.hi {
		dist.Set(ctx, root, 0)
	}
	c.Barrier(ctx)

	for {
		// Relax every local vertex's out-edges into next.
		for u := eg.lo; u < eg.hi; u++ {
			du := dist.Get(ctx, u)
			if math.IsInf(du, 1) {
				continue
			}
			ws := w.EdgeWeights(u)
			for k, v := range w.Neighbors(u) {
				next.Apply(ctx, min, v, du+ws[k])
			}
		}
		c.Barrier(ctx)
		changed := 0.0
		for u := eg.lo; u < eg.hi; u++ {
			du := dist.Get(ctx, u)
			if nu := next.Get(ctx, u); nu < du {
				dist.Set(ctx, u, nu)
				changed = 1
			}
			next.Set(ctx, u, inf)
		}
		if c.AllReduceSum(ctx, changed) == 0 {
			break
		}
		c.Barrier(ctx)
	}
	out := make([]float64, eg.hi-eg.lo)
	for u := eg.lo; u < eg.hi; u++ {
		out[u-eg.lo] = dist.Get(ctx, u)
	}
	c.Barrier(ctx)
	return out
}
