// Package engine is the distributed graph analytics engine built on
// DArray (paper §5.1): a Polymer-style single-machine engine ported to
// the cluster by replacing its shared-memory arrays with DArrays. Vertex
// state lives in distributed arrays partitioned like the vertices; each
// node walks its local vertices' out-edges and pushes contributions to
// neighbor state through the Operate interface, which combines remote
// updates locally and merges them at the home node.
//
// The same algorithms are also provided over the GAM baseline (lock-based
// access path, exclusive atomics) for the Figure 16 comparison.
package engine

import (
	"math"

	"darray/internal/cluster"
	"darray/internal/core"
	"darray/internal/graph"
)

// Graph is one node's handle to a partitioned graph: the engine's
// topology is edge-balanced across nodes, with partition boundaries
// aligned to DArray chunks so vertex state arrays partition identically.
type Graph struct {
	node   *cluster.Node
	csr    *graph.CSR
	rev    *graph.CSR // transpose, built lazily for undirected traversals
	bounds []int64
	lo, hi int64 // local vertex range

	arrays []*core.Array // state arrays created by this handle
}

// NewGraph collectively wraps csr for the cluster.
func NewGraph(node *cluster.Node, csr *graph.CSR) *Graph {
	c := node.Cluster()
	cw := int64(c.Config().ChunkWords)
	boundsAny := node.Collective(func() any {
		b := csr.Partition(c.Nodes())
		// Align to chunk boundaries so a DArray with PartitionOffset=b
		// homes vertex v's state exactly on v's owner.
		for i := 1; i < len(b)-1; i++ {
			b[i] = (b[i] + cw - 1) / cw * cw
			if b[i] > csr.N {
				b[i] = csr.N
			}
			if b[i] < b[i-1] {
				b[i] = b[i-1]
			}
		}
		return b
	})
	bounds := boundsAny.([]int64)
	return &Graph{
		node:   node,
		csr:    csr,
		bounds: bounds,
		lo:     bounds[node.ID()],
		hi:     bounds[node.ID()+1],
	}
}

// Bounds returns the vertex partition boundaries.
func (eg *Graph) Bounds() []int64 { return eg.bounds }

// LocalRange returns this node's vertex range [lo, hi).
func (eg *Graph) LocalRange() (int64, int64) { return eg.lo, eg.hi }

// CSR returns the topology.
func (eg *Graph) CSR() *graph.CSR { return eg.csr }

func (eg *Graph) newStateArray() *core.Array {
	starts := eg.bounds[:len(eg.bounds)-1] // per-node start offsets
	a := core.New(eg.node, eg.csr.N, core.Options{PartitionOffset: starts})
	eg.arrays = append(eg.arrays, a)
	return a
}

// StateArrays returns the vertex-state arrays this handle has created,
// so harnesses (chaos testing) can run core.ValidateQuiesced on them
// after an algorithm completes.
func (eg *Graph) StateArrays() []*core.Array { return eg.arrays }

const (
	prDamping = 0.85
)

// PageRank runs iters rounds of synchronous PageRank and returns this
// node's local slice of the final ranks. usePin selects the DArray-Pin
// variant (paper Figure 16's DArray-Pin series): local sequential reads
// and remote combining both run through pinned chunks.
func (eg *Graph) PageRank(ctx *cluster.Ctx, iters int, usePin bool) []float64 {
	c := eg.node.Cluster()
	curr := eg.newStateArray().AsF64()
	next := eg.newStateArray().AsF64()
	add := curr.RegisterOp(core.OpAddF64)
	_ = next.RegisterOp(core.OpAddF64) // same id on the other array
	n := eg.csr.N

	init := 1.0 / float64(n)
	curr.FillF64(ctx, init)
	next.FillF64(ctx, 0)
	c.Barrier(ctx)

	for it := 0; it < iters; it++ {
		eg.scatterAdd(ctx, curr, next, add, usePin)
		c.Barrier(ctx)
		// Gather: fold damping; reuse curr as the next iteration's input.
		base := (1 - prDamping) / float64(n)
		for u := eg.lo; u < eg.hi; u++ {
			r := base + prDamping*next.Get(ctx, u)
			curr.Set(ctx, u, r)
			next.Array.Set(ctx, u, 0)
		}
		c.Barrier(ctx)
	}
	out := make([]float64, eg.hi-eg.lo)
	for u := eg.lo; u < eg.hi; u++ {
		out[u-eg.lo] = curr.Get(ctx, u)
	}
	c.Barrier(ctx)
	return out
}

// scatterAdd pushes curr[u]/deg(u) to every out-neighbor through the
// Operate interface. With usePin, the reads of curr walk pinned chunks.
func (eg *Graph) scatterAdd(ctx *cluster.Ctx, curr, next core.F64, add core.OpID, usePin bool) {
	if !usePin {
		for u := eg.lo; u < eg.hi; u++ {
			deg := eg.csr.OutDegree(u)
			if deg == 0 {
				continue
			}
			contrib := curr.Get(ctx, u) / float64(deg)
			for _, v := range eg.csr.Neighbors(u) {
				next.Apply(ctx, add, v, contrib)
			}
		}
		return
	}
	cw := curr.ChunkWords()
	for base := eg.lo; base < eg.hi; {
		p := curr.PinRead(ctx, base)
		limit := p.Limit()
		if limit > eg.hi {
			limit = eg.hi
		}
		for u := base; u < limit; u++ {
			deg := eg.csr.OutDegree(u)
			if deg == 0 {
				continue
			}
			contrib := math.Float64frombits(p.Get(ctx, u)) / float64(deg)
			for _, v := range eg.csr.Neighbors(u) {
				next.Apply(ctx, add, v, contrib)
			}
		}
		p.Unpin(ctx)
		base = (base/cw + 1) * cw
	}
}

// reverse returns the transpose graph, built once per cluster and
// shared read-only by every node.
func (eg *Graph) reverse() *graph.CSR {
	if eg.rev == nil {
		eg.rev = eg.node.Collective(func() any { return eg.csr.Reverse() }).(*graph.CSR)
	}
	return eg.rev
}

// ConnectedComponents runs min-label propagation over the undirected
// view of the graph until a fixed point, returning this node's labels
// and the number of iterations.
func (eg *Graph) ConnectedComponents(ctx *cluster.Ctx, usePin bool) ([]uint64, int) {
	c := eg.node.Cluster()
	eg.reverse() // materialize before timing-sensitive loops
	curr := eg.newStateArray()
	next := eg.newStateArray()
	min := curr.RegisterOp(core.OpMinU64)
	_ = next.RegisterOp(core.OpMinU64)

	for u := eg.lo; u < eg.hi; u++ {
		curr.Set(ctx, u, uint64(u))
		next.Set(ctx, u, ^uint64(0))
	}
	c.Barrier(ctx)

	iters := 0
	for {
		iters++
		eg.scatterMin(ctx, curr, next, min, usePin)
		c.Barrier(ctx)
		changed := 0.0
		for u := eg.lo; u < eg.hi; u++ {
			cl := curr.Get(ctx, u)
			if nl := next.Get(ctx, u); nl < cl {
				curr.Set(ctx, u, nl)
				changed = 1
			}
			next.Set(ctx, u, ^uint64(0))
		}
		if c.AllReduceSum(ctx, changed) == 0 {
			break
		}
		c.Barrier(ctx)
	}
	out := make([]uint64, eg.hi-eg.lo)
	for u := eg.lo; u < eg.hi; u++ {
		out[u-eg.lo] = curr.Get(ctx, u)
	}
	c.Barrier(ctx)
	return out, iters
}

func (eg *Graph) scatterMin(ctx *cluster.Ctx, curr, next *core.Array, min core.OpID, usePin bool) {
	rev := eg.reverse()
	// Undirected view: push the label along out-edges and in-edges.
	push := func(u int64, label uint64) {
		for _, v := range eg.csr.Neighbors(u) {
			next.Apply(ctx, min, v, label)
		}
		for _, v := range rev.Neighbors(u) {
			next.Apply(ctx, min, v, label)
		}
	}
	if !usePin {
		for u := eg.lo; u < eg.hi; u++ {
			push(u, curr.Get(ctx, u))
		}
		return
	}
	cw := curr.ChunkWords()
	for base := eg.lo; base < eg.hi; {
		p := curr.PinRead(ctx, base)
		limit := p.Limit()
		if limit > eg.hi {
			limit = eg.hi
		}
		for u := base; u < limit; u++ {
			push(u, p.Get(ctx, u))
		}
		p.Unpin(ctx)
		base = (base/cw + 1) * cw
	}
}

// BFS computes hop distances from root with level-synchronous
// min-propagation (an extension beyond the paper's two applications).
// Unreachable vertices get ^uint64(0).
func (eg *Graph) BFS(ctx *cluster.Ctx, root int64) []uint64 {
	c := eg.node.Cluster()
	dist := eg.newStateArray()
	min := dist.RegisterOp(core.OpMinU64)
	inf := ^uint64(0)
	for u := eg.lo; u < eg.hi; u++ {
		dist.Set(ctx, u, inf)
	}
	c.Barrier(ctx)
	if root >= eg.lo && root < eg.hi {
		dist.Set(ctx, root, 0)
	}
	c.Barrier(ctx)
	for level := uint64(0); ; level++ {
		advanced := 0.0
		for u := eg.lo; u < eg.hi; u++ {
			if dist.Get(ctx, u) != level {
				continue
			}
			for _, v := range eg.csr.Neighbors(u) {
				dist.Apply(ctx, min, v, level+1)
				advanced = 1
			}
		}
		if c.AllReduceSum(ctx, advanced) == 0 {
			break
		}
	}
	out := make([]uint64, eg.hi-eg.lo)
	for u := eg.lo; u < eg.hi; u++ {
		out[u-eg.lo] = dist.Get(ctx, u)
	}
	c.Barrier(ctx)
	return out
}
