package engine

import (
	"container/heap"
	"math"
	"testing"

	"darray/internal/cluster"
	"darray/internal/graph"
)

// refDijkstra is the sequential reference.
func refDijkstra(g *graph.WCSR, root int64) []float64 {
	dist := make([]float64, g.N)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[root] = 0
	pq := &distHeap{{root, 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if it.d > dist[it.v] {
			continue
		}
		ws := g.EdgeWeights(it.v)
		for k, u := range g.Neighbors(it.v) {
			if nd := it.d + ws[k]; nd < dist[u] {
				dist[u] = nd
				heap.Push(pq, distItem{u, nd})
			}
		}
	}
	return dist
}

type distItem struct {
	v int64
	d float64
}
type distHeap []distItem

func (h distHeap) Len() int           { return len(h) }
func (h distHeap) Less(i, j int) bool { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x any)        { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() (x any)      { old := *h; n := len(old); x = old[n-1]; *h = old[:n-1]; return }

func TestSSSPMatchesDijkstra(t *testing.T) {
	base := graph.RMAT(graph.RMATConfig{Scale: 8, EdgeFactor: 6, A: 0.57, B: 0.19, C: 0.19, Seed: 11})
	w := graph.RandomWeights(base, 1, 10, 5)
	want := refDijkstra(w, 0)
	c := tc(t, 3)
	locals := make([][]float64, 3)
	var bounds []int64
	c.Run(func(n *cluster.Node) {
		eg := NewGraph(n, base)
		if n.ID() == 0 {
			bounds = eg.Bounds()
		}
		locals[n.ID()] = eg.SSSP(n.NewCtx(0), w, 0)
	})
	got := make([]float64, base.N)
	for p, l := range locals {
		copy(got[bounds[p]:], l)
	}
	for i := range want {
		if math.IsInf(want[i], 1) != math.IsInf(got[i], 1) {
			t.Fatalf("reachability mismatch at %d: %v vs %v", i, got[i], want[i])
		}
		if !math.IsInf(want[i], 1) && math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("dist[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSSSPOnWeightedPath(t *testing.T) {
	const n = 100
	srcs := make([]int64, n-1)
	dsts := make([]int64, n-1)
	ws := make([]float64, n-1)
	for i := int64(0); i < n-1; i++ {
		srcs[i], dsts[i], ws[i] = i, i+1, float64(i+1)
	}
	w := graph.FromWeightedEdgeList(n, srcs, dsts, ws)
	c := tc(t, 2)
	locals := make([][]float64, 2)
	var bounds []int64
	c.Run(func(nd *cluster.Node) {
		eg := NewGraph(nd, &w.CSR)
		if nd.ID() == 0 {
			bounds = eg.Bounds()
		}
		locals[nd.ID()] = eg.SSSP(nd.NewCtx(0), w, 0)
	})
	got := make([]float64, n)
	for p, l := range locals {
		copy(got[bounds[p]:], l)
	}
	acc := 0.0
	for i := int64(0); i < n; i++ {
		if math.Abs(got[i]-acc) > 1e-9 {
			t.Fatalf("dist[%d] = %v, want %v", i, got[i], acc)
		}
		acc += float64(i + 1)
	}
}

func TestSSSPMismatchedGraphPanics(t *testing.T) {
	g1 := graph.Path(64)
	g2 := graph.RandomWeights(graph.Path(128), 1, 2, 1)
	c := tc(t, 1)
	c.Run(func(n *cluster.Node) {
		eg := NewGraph(n, g1)
		defer func() {
			if recover() == nil {
				t.Error("expected panic for mismatched weighted view")
			}
		}()
		eg.SSSP(n.NewCtx(0), g2, 0)
	})
}
