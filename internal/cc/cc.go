// Package cc implements the congestion control behind adaptive bulk
// streaming: a per-(stream, destination) controller that turns the
// fixed PipelineDepth/TxBurst knobs into ceilings and picks the actual
// window at runtime from observed virtual-time round trips.
//
// The controller is TCP-CUBIC shaped with delay-based steering. An RFC
// 6298 estimator tracks the smoothed round-trip time (srtt) and its
// variance (rttvar) over per-chunk token completions, stamped in
// virtual time by the fabric. The window slow-starts until the first
// congestion signal, then grows along the cubic W(t) = Wmax + C*(t-K)^3
// curve. Two signal families shrink it:
//
//   - retransmission (loss): the completion's grant crossed a lossy
//     wire and the fabric's go-back-N machinery had to resend it
//     (Resp.RetransNs > 0) — the signal a real RC NIC surfaces as retry
//     counters. A plain retransmit backs the window off
//     multiplicatively (beta = 0.7); one whose recovery delay dominated
//     the whole round trip is timeout-grade and collapses the window to
//     one chunk, re-entering slow start.
//   - delay (contention): on the simulator's fault-free fabric nothing
//     is ever dropped — competing streams only queue virtual time — so
//     the controller steers on the Vegas estimate of its own standing
//     queue, queued = cwnd * (1 - minRTT/srtt) chunks. Above
//     vegasBeta the window steps down one chunk per srtt; between
//     vegasAlpha and vegasBeta it holds; growth (slow start or cubic)
//     only happens below vegasAlpha. Additive stepping keeps N
//     competing streams at a small bounded queue each instead of
//     oscillating between full depth and the floor the way a
//     multiplicative delay reaction does.
//
// All arithmetic is integer fixed point (<<fpShift), matching the
// repository's estimator idiom, and the hot read path (Window) is a
// single atomic load so runtime goroutines — the prefetcher capping
// speculative issues by spare window — can consult a controller owned
// by an application thread without locks. OnAck must only be called by
// the owning stream's thread.
package cc

import "sync/atomic"

// Fixed-point scale for window arithmetic.
const (
	fpShift = 10
	fpOne   = 1 << fpShift
)

const (
	// minWindow/initWindow/maxWindow bound the congestion window in
	// chunks (fixed point). initWindow keeps single-stream slow start
	// short enough that adaptive throughput stays within a few percent
	// of a hand-tuned fixed depth; maxWindow only bounds the fixed-point
	// math — callers clamp to their own Pipeline ceiling via Window.
	minWindow  = 1 * fpOne
	initWindow = 4 * fpOne
	maxWindow  = 256 * fpOne

	// CUBIC constants: multiplicative backoff beta = 0.7, curve scale
	// C = 0.4 (cubicC is 0.4 in fixed point).
	betaNum = 7
	betaDen = 10
	cubicC  = (4 * fpOne) / 10

	// Vegas steering budget: the window aims to keep between
	// vegasAlpha and vegasBeta of its own chunks queued on the wire
	// (fixed point). Small values trade a little single-stream
	// throughput headroom for short queues — the whole point of the
	// contention experiment.
	vegasAlpha = 2 * fpOne
	vegasBeta  = 3 * fpOne

	// After a loss signal the next few round trips carry the go-back-N
	// recovery burst: their inflated delay is the recovery draining, not
	// new congestion, and the delay-based step-down is suspended for
	// this many srtt so the window is not double-penalized.
	lossQuietRtts = 4
)

// Event classifies what an RTT sample did to the window.
type Event uint8

const (
	// EvGrow: no congestion signal; the window grew (or held its clamp).
	EvGrow Event = iota
	// EvBackoff: a retransmit or delay signal shrank the window by beta.
	EvBackoff
	// EvReset: a timeout-grade sample collapsed the window to minimum
	// and re-entered slow start.
	EvReset
)

// Controller is one stream's congestion state toward one destination.
// The owning application thread calls OnAck; any goroutine may call the
// atomic readers (Window, SrttNs).
type Controller struct {
	cwnd atomic.Int64 // congestion window, chunks << fpShift
	srtt atomic.Int64 // smoothed RTT, virtual ns

	// Estimator state (owner-thread only).
	rttvar int64 // RTT variance, virtual ns (RFC 6298)
	minRTT int64 // observed RTT floor; 0 until the first sample

	// CUBIC state (owner-thread only).
	ssthresh    int64 // slow start ends here (fixed point)
	wmax        int64 // window at the last backoff (fixed point)
	k10         int64 // cubic K: srtt units << fpShift
	epoch       int64 // virtual time the current cubic epoch began
	lastBackoff int64 // virtual time of the last backoff (hysteresis)
	lastGrow    int64 // virtual time of the last applied growth (pacing)
	lastLoss    int64 // virtual time of the last retransmit-carrying sample

	acks     int64
	backoffs atomic.Int64
	resets   atomic.Int64
}

// New returns a controller in slow start at the initial window.
func New() *Controller {
	c := &Controller{ssthresh: maxWindow, lastBackoff: -1 << 62, lastLoss: -1 << 62}
	c.cwnd.Store(initWindow)
	return c
}

// Window returns the current window in whole chunks, clamped to
// [1, cap]. cap is the stream's static knob (PipelineDepth): the knob
// survives as a ceiling, never a setting.
func (c *Controller) Window(cap int) int {
	w := int(c.cwnd.Load() >> fpShift)
	if w < 1 {
		w = 1
	}
	if cap >= 1 && w > cap {
		w = cap
	}
	return w
}

// OnAck feeds one completed round trip: now is the completion's virtual
// time, rtt the request-to-grant virtual duration, and retransNs the
// share of it the fabric's go-back-N recovery added (0 on a clean
// wire). Must be called only by the stream's owning thread.
func (c *Controller) OnAck(now, rtt, retransNs int64) Event {
	if rtt <= 0 {
		rtt = 1
	}
	c.acks++
	// Karn's algorithm: samples that carried go-back-N recovery are
	// excluded from the estimator — they measure the retransmission
	// machinery, not the path, and would poison srtt (gating
	// post-recovery growth on a phantom standing queue).
	srtt := c.srtt.Load()
	if retransNs == 0 {
		if c.minRTT == 0 || rtt < c.minRTT {
			c.minRTT = rtt
		}
		if srtt == 0 {
			srtt = rtt
			c.rttvar = rtt / 2
		} else {
			dev := rtt - srtt
			if dev < 0 {
				dev = -dev
			}
			c.rttvar += (dev - c.rttvar) / 4
			srtt += (rtt - srtt) / 8
		}
		c.srtt.Store(srtt)
	} else if srtt == 0 {
		srtt = rtt
	}

	cwnd := c.cwnd.Load()
	// queued is the Vegas estimate of this stream's own standing queue:
	// the share of the window that is buffering rather than propagating.
	var queued int64
	if c.minRTT > 0 && srtt > c.minRTT {
		queued = cwnd - cwnd*c.minRTT/srtt
	}
	// Congestion signals, rate-limited to one reaction per srtt: every
	// chunk of the in-flight window that completes after a backoff still
	// carries the pre-backoff queueing delay, and reacting to each would
	// collapse the window to the floor on a single event.
	if retransNs > 0 {
		c.lastLoss = now
	}
	if now-c.lastBackoff >= srtt {
		if retransNs > 0 {
			c.wmax = cwnd
			if retransNs >= rtt/2 && rtt >= 4*srtt {
				// Go-back-N recovery dominated a round trip that was
				// itself anomalous against the smoothed estimate:
				// timeout-grade, collapse and probe from scratch. (A
				// retrans-heavy but otherwise ordinary round trip is
				// random loss, not collapse-worthy congestion — that
				// takes the multiplicative branch below.)
				c.ssthresh = maxi(cwnd*betaNum/betaDen, 2*fpOne)
				c.noteBackoff(now, minWindow)
				c.resets.Add(1)
				return EvReset
			}
			next := maxi(cwnd*betaNum/betaDen, minWindow)
			c.ssthresh = next
			c.noteBackoff(now, next)
			return EvBackoff
		}
		if queued > vegasBeta && now-c.lastLoss >= lossQuietRtts*srtt {
			// Standing queue above budget: step down one chunk. The
			// additive step also ends slow start — the queue is the
			// proof the pipe is already full. Suppressed inside the
			// post-loss quiet window: delay measured while go-back-N
			// recovery drains is the recovery, not fresh congestion.
			c.wmax = cwnd
			next := maxi(cwnd-fpOne, minWindow)
			c.ssthresh = next
			c.noteBackoff(now, next)
			return EvBackoff
		}
	}

	if queued >= vegasAlpha {
		if cwnd < c.ssthresh {
			// Vegas slow-start exit: the first standing-queue signal ends
			// exponential growth right here, before the overshoot that a
			// loss-triggered exit would need.
			c.ssthresh = cwnd
		}
		return EvGrow // inside the budget: hold
	}
	// Growth is paced to one chunk per srtt: the Vegas estimate lags the
	// wire by the EWMA horizon, and un-paced growth jumps past the
	// equilibrium faster than the one-chunk-per-srtt step-down can
	// correct — the window (and everyone's queue) would oscillate
	// instead of settling.
	if now-c.lastGrow < srtt {
		return EvGrow
	}
	var inc int64
	if cwnd < c.ssthresh {
		inc = fpOne // slow start
	} else {
		inc = c.cubicIncrement(now, cwnd, srtt)
		if inc > fpOne {
			inc = fpOne
		}
	}
	cwnd += inc
	if cwnd > maxWindow {
		cwnd = maxWindow
	}
	c.lastGrow = now
	c.cwnd.Store(cwnd)
	return EvGrow
}

// noteBackoff installs the post-backoff window and starts a new cubic
// epoch. K solves Wmax - C*K^3 = newWnd, i.e. the curve re-reaches Wmax
// K srtt-units into the epoch; with newWnd = beta*Wmax that is
// K = cbrt(Wmax*(1-beta)/C) = cbrt(3/4 * Wmax).
func (c *Controller) noteBackoff(now, newWnd int64) {
	c.cwnd.Store(newWnd)
	c.epoch = now
	c.lastBackoff = now
	c.k10 = icbrt(((c.wmax - newWnd) << (3 * fpShift)) / cubicC)
	c.backoffs.Add(1)
}

// cubicIncrement returns this ack's window growth in the concave/convex
// cubic region: the per-ack share (target-cwnd)/cwnd of the distance to
// the curve point W(t) = Wmax + C*(t-K)^3, floored at the
// Reno-friendly 1/cwnd so the window never stalls below the curve.
func (c *Controller) cubicIncrement(now, cwnd, srtt int64) int64 {
	var t10 int64
	if srtt > 0 {
		t10 = ((now - c.epoch) << fpShift) / srtt
	}
	d := t10 - c.k10
	// |d| is clamped so d^3 stays in range; past the clamp the target
	// exceeds maxWindow anyway.
	if d > 1<<14 {
		d = 1 << 14
	} else if d < -(1 << 14) {
		d = -(1 << 14)
	}
	cube := (((d * d) >> fpShift) * d) >> fpShift // d^3, still << fpShift
	target := c.wmax + (cubicC*cube)>>fpShift
	if target > maxWindow {
		target = maxWindow
	}
	inc := int64(0)
	if target > cwnd {
		inc = ((target - cwnd) << fpShift) / cwnd
	}
	if reno := (fpOne << fpShift) / cwnd; inc < reno {
		inc = reno
	}
	return inc
}

// SrttNs returns the smoothed RTT estimate in virtual nanoseconds
// (0 before the first sample). Safe from any goroutine.
func (c *Controller) SrttNs() int64 { return c.srtt.Load() }

// RttvarNs returns the RTT variance estimate (owner thread only).
func (c *Controller) RttvarNs() int64 { return c.rttvar }

// MinRttNs returns the observed RTT floor (owner thread only).
func (c *Controller) MinRttNs() int64 { return c.minRTT }

// Acks returns how many samples were fed (owner thread only).
func (c *Controller) Acks() int64 { return c.acks }

// Backoffs returns how many multiplicative backoffs fired (including
// timeout-grade resets). Safe from any goroutine.
func (c *Controller) Backoffs() int64 { return c.backoffs.Load() }

// Resets returns how many timeout-grade collapses fired. Safe from any
// goroutine.
func (c *Controller) Resets() int64 { return c.resets.Load() }

// InSlowStart reports whether the window is still below ssthresh
// (owner thread only).
func (c *Controller) InSlowStart() bool { return c.cwnd.Load() < c.ssthresh }

func maxi(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// icbrt returns the integer cube root of x (the hardware shift-and-
// subtract method), used to place the cubic inflection point K.
func icbrt(x int64) int64 {
	if x <= 0 {
		return 0
	}
	u := uint64(x)
	var y uint64
	for s := 63; s >= 0; s -= 3 {
		y <<= 1
		b := 3*y*(y+1) + 1
		if u>>uint(s) >= b {
			u -= b << uint(s)
			y++
		}
	}
	return int64(y)
}

// Burst is the transmit-side half of the same idea: an AIMD budget for
// the Tx thread's doorbell batch. The configured TxBurst is the
// ceiling; a burst whose posts needed go-back-N retransmission shrinks
// the next batch multiplicatively (same beta as the window controller),
// and every clean burst grows it back by one. Owned by the single Tx
// goroutine — no atomics needed.
type Burst struct {
	budget int
	max    int
}

// NewBurst returns a budget starting at (and capped by) max.
func NewBurst(max int) *Burst {
	if max < 1 {
		max = 1
	}
	return &Burst{budget: max, max: max}
}

// Limit returns the current batch budget (>= 1).
func (b *Burst) Limit() int { return b.budget }

// OnBurst feeds the outcome of one posted batch: whether any of its
// messages needed retransmission.
func (b *Burst) OnBurst(retransmitted bool) {
	if retransmitted {
		b.budget = b.budget * betaNum / betaDen
		if b.budget < 1 {
			b.budget = 1
		}
		return
	}
	if b.budget < b.max {
		b.budget++
	}
}
