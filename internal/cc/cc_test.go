package cc

import "testing"

// feed advances virtual time by one rtt per ack and feeds n clean
// samples, returning the final virtual time.
func feed(c *Controller, now int64, n int, rtt int64) int64 {
	for i := 0; i < n; i++ {
		now += rtt
		c.OnAck(now, rtt, 0)
	}
	return now
}

func TestSlowStartRamp(t *testing.T) {
	c := New()
	if w := c.Window(64); w != initWindow>>fpShift {
		t.Fatalf("initial window = %d, want %d", w, initWindow>>fpShift)
	}
	// Slow start grows exactly one chunk per ack until the ceiling.
	now := int64(0)
	const rtt = 2000
	for i := 1; i <= 20; i++ {
		now += rtt
		if ev := c.OnAck(now, rtt, 0); ev != EvGrow {
			t.Fatalf("ack %d: event %v, want EvGrow", i, ev)
		}
		want := initWindow>>fpShift + i
		if w := c.Window(64); w != want {
			t.Fatalf("after %d acks: window = %d, want %d", i, w, want)
		}
		if !c.InSlowStart() {
			t.Fatalf("after %d acks: left slow start without a signal", i)
		}
	}
	// The static knob stays a ceiling.
	if w := c.Window(8); w != 8 {
		t.Fatalf("Window(8) = %d, want clamp to 8", w)
	}
}

func TestBackoffThenCubicRegrowth(t *testing.T) {
	c := New()
	now := feed(c, 0, 60, 2000) // well past 32 chunks
	w0 := c.Window(256)
	if w0 < 32 {
		t.Fatalf("ramp failed: window %d", w0)
	}
	// A retransmitted completion is a loss signal: multiplicative backoff.
	now += 2000
	if ev := c.OnAck(now, 2000, 500); ev != EvBackoff {
		t.Fatalf("retransmit sample: event %v, want EvBackoff", ev)
	}
	w1 := c.Window(256)
	if want := w0 * 7 / 10; w1 < want-1 || w1 > want+1 {
		t.Fatalf("backoff window %d, want ~0.7*%d = %d", w1, w0, want)
	}
	if c.Backoffs() != 1 {
		t.Fatalf("backoffs = %d, want 1", c.Backoffs())
	}
	if c.InSlowStart() {
		t.Fatal("still in slow start after backoff")
	}
	// Clean acks re-grow the window along the cubic curve back to (and
	// past) the pre-backoff Wmax.
	prev := w1
	regrew := -1
	for i := 0; i < 400; i++ {
		now += 2000
		if ev := c.OnAck(now, 2000, 0); ev != EvGrow {
			t.Fatalf("clean ack %d: event %v, want EvGrow", i, ev)
		}
		w := c.Window(256)
		if w < prev {
			t.Fatalf("cubic region shrank without a signal: %d -> %d", prev, w)
		}
		prev = w
		if regrew < 0 && w >= w0 {
			regrew = i
		}
	}
	if regrew < 0 {
		t.Fatalf("window never re-reached Wmax %d (stuck at %d)", w0, prev)
	}
	// Cubic growth is concave below Wmax: slower than slow start's
	// 1/ack, so re-reaching Wmax must take more acks than the ~0.3*w0
	// slow start would.
	if regrew < (w0-w1)/2 {
		t.Fatalf("re-grew in %d acks — faster than additive, not cubic", regrew)
	}
}

func TestBackoffHysteresis(t *testing.T) {
	c := New()
	now := feed(c, 0, 40, 2000)
	now += 2000
	c.OnAck(now, 2000, 300)
	// The rest of the old in-flight window completes within one srtt,
	// all still carrying the loss signal: only the first may react.
	for i := 0; i < 8; i++ {
		c.OnAck(now+int64(i), 2000, 300)
	}
	if got := c.Backoffs(); got != 1 {
		t.Fatalf("backoffs = %d, want 1 (one reaction per srtt)", got)
	}
	// A signal a full srtt later is a fresh congestion event.
	c.OnAck(now+4000, 2000, 300)
	if got := c.Backoffs(); got != 2 {
		t.Fatalf("backoffs = %d, want 2", got)
	}
}

func TestTimeoutGradeReset(t *testing.T) {
	c := New()
	now := feed(c, 0, 40, 2000)
	if c.Window(256) < 20 {
		t.Fatalf("ramp failed: %d", c.Window(256))
	}
	// A completion whose go-back-N recovery delay dominated the round
	// trip is timeout grade: collapse to one chunk and slow-start again.
	now += 30000
	if ev := c.OnAck(now, 30000, 20000); ev != EvReset {
		t.Fatalf("timeout-grade sample: event %v, want EvReset", ev)
	}
	if w := c.Window(256); w != 1 {
		t.Fatalf("post-reset window = %d, want 1", w)
	}
	if c.Resets() != 1 {
		t.Fatalf("resets = %d, want 1", c.Resets())
	}
	if !c.InSlowStart() {
		t.Fatal("reset must re-enter slow start")
	}
	// Recovery: clean base-RTT acks regrow the window as the polluted
	// srtt estimate converges back down (Vegas holds growth while the
	// timeout sample still inflates the standing-queue estimate).
	w1 := c.Window(256)
	feed(c, now+100000, 40, 2000) // skip far ahead: hysteresis satisfied
	if w := c.Window(256); w <= w1 || w < 10 {
		t.Fatalf("post-reset recovery: window %d (from %d), want substantial regrowth", w, w1)
	}
}

// TestRttvarConvergence drives the estimator with the fault plan's
// latency-spike shape: a constant base RTT with rare 10x spikes. The
// smoothed estimate must stay anchored near the base while the variance
// tracks the spike magnitude — and with spikes removed both converge.
func TestRttvarConvergence(t *testing.T) {
	const base, spike = 2000, 20000
	c := New()
	now := int64(0)
	for i := 1; i <= 500; i++ {
		now += base
		rtt := int64(base)
		if i%32 == 0 {
			rtt = spike
		}
		c.OnAck(now, rtt, 0)
	}
	if s := c.SrttNs(); s < base || s > 2*base {
		t.Fatalf("srtt %d strayed from base %d under rare spikes", s, base)
	}
	if v := c.RttvarNs(); v < (spike-base)/64 {
		t.Fatalf("rttvar %d too small to reflect %dns spikes", v, spike-base)
	}
	// Spike-free tail: both estimates converge to the constant signal.
	for i := 0; i < 512; i++ {
		now += base
		c.OnAck(now, base, 0)
	}
	if s := c.SrttNs(); s < base-base/32 || s > base+base/32 {
		t.Fatalf("srtt %d did not converge to %d", s, base)
	}
	if v := c.RttvarNs(); v > base/16 {
		t.Fatalf("rttvar %d did not decay on a constant signal", v)
	}
	if got := c.MinRttNs(); got != base {
		t.Fatalf("minRTT = %d, want %d", got, base)
	}
}

func TestDelaySignalBacksOff(t *testing.T) {
	c := New()
	now := feed(c, 0, 30, 2000)
	// Queueing delay (no retransmission) inflating the Vegas standing-
	// queue estimate past its budget is a congestion signal on its own —
	// the fault-free contention lever.
	now += 7000
	if ev := c.OnAck(now, 7000, 0); ev != EvBackoff {
		t.Fatalf("delay sample: event %v, want EvBackoff", ev)
	}
	// Persistent queueing steps the window down additively (one chunk
	// per srtt), settling at a small window — never collapsing to a
	// reset the way loss does, and never dropping below one chunk.
	w := c.Window(256)
	for i := 0; i < 300; i++ {
		now += 7000
		c.OnAck(now, 7000, 0)
		nw := c.Window(256)
		if nw < w-1 {
			t.Fatalf("delay step shrank window %d -> %d: more than additive", w, nw)
		}
		w = nw
	}
	// Equilibrium: the largest window whose Vegas standing-queue estimate
	// w*(1 - minRTT/srtt) stays inside the [alpha, beta] budget.
	if w < 1 || w > int(vegasBeta>>fpShift)+2 {
		t.Fatalf("persistent-delay window = %d, want a small positive equilibrium", w)
	}
	if c.Resets() != 0 {
		t.Fatalf("pure delay caused %d resets, want 0", c.Resets())
	}
}

func TestIcbrt(t *testing.T) {
	for _, x := range []int64{0, 1, 2, 3, 7, 8, 27, 1000, 1 << 20, 5859} {
		got := icbrt(x * x * x)
		if got != x {
			t.Fatalf("icbrt(%d^3) = %d", x, got)
		}
	}
	if got := icbrt(26); got != 2 {
		t.Fatalf("icbrt(26) = %d, want 2 (floor)", got)
	}
}

func TestBurstAIMD(t *testing.T) {
	b := NewBurst(16)
	if b.Limit() != 16 {
		t.Fatalf("initial limit %d", b.Limit())
	}
	b.OnBurst(true)
	if b.Limit() != 11 {
		t.Fatalf("post-retransmit limit %d, want 11", b.Limit())
	}
	for i := 0; i < 10; i++ {
		b.OnBurst(true)
	}
	if b.Limit() != 1 {
		t.Fatalf("floor limit %d, want 1", b.Limit())
	}
	for i := 0; i < 100; i++ {
		b.OnBurst(false)
	}
	if b.Limit() != 16 {
		t.Fatalf("recovered limit %d, want ceiling 16", b.Limit())
	}
}
