// Package cluster provides the SPMD harness the distributed systems in
// this repository run on: N simulated nodes, each with private memory,
// per-node runtime goroutines (the paper's runtime layer), dedicated
// Tx/Rx comm goroutines (the paper's communication layer, §4.5), cyclic
// barriers, collectives, and per-application-thread contexts carrying a
// virtual clock and event statistics.
//
// On the paper's testbed each node is a separate machine; here nodes are
// goroutine groups inside one process, connected by internal/fabric. The
// code paths are the real ones — lock-free queues between layers, a
// single Tx goroutine per node (which is what reduces queue pairs from
// n^2*t to n^2*c), Rx routing into per-runtime RPC queues — only the
// wire is simulated.
package cluster

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"darray/internal/buf"
	"darray/internal/cc"
	"darray/internal/fabric"
	"darray/internal/fault"
	"darray/internal/telemetry"
	"darray/internal/trace"
	"darray/internal/vtime"
)

// Config describes a cluster.
type Config struct {
	Nodes          int
	RuntimeThreads int          // runtime goroutines per node (default 2)
	Model          *vtime.Model // nil disables virtual-time accounting
	Faults         *fault.Plan  // nil means a perfect fabric (chaos testing injects one)

	// Cache geometry defaults used by systems built on the cluster.
	ChunkWords    int     // elements (8-byte words) per chunk; default 512
	CacheChunks   int     // cache capacity per runtime thread, in chunks; default 1024
	LowWatermark  float64 // eviction trigger, fraction of free lines; default 0.30
	HighWatermark float64 // eviction target, fraction of free lines; default 0.50
	PrefetchAhead int     // chunks prefetched on a sequential miss; default 2, -1 disables

	// Transmit-path batching (paper §4.5, BCL-style aggregation). The Tx
	// thread drains up to TxBurst queued work requests per doorbell; the
	// burst leader pays the full doorbell cost, followers pay only the
	// chained-WQE cost (vtime.Model.ChainCost). 1 disables batching and
	// reproduces the one-doorbell-per-message behaviour exactly; default
	// 16.
	TxBurst int
	// DisableCoalesce turns off destination coalescing of payload-free
	// coherence commands within a Tx burst (for apples-to-apples
	// ablations; see Node.coalesce).
	DisableCoalesce bool
	// PipelineDepth is the default number of outstanding chunk fetches a
	// bulk range operation keeps in flight (core.GetRange and friends).
	// 1 or -1 restores the serial chunk-at-a-time slow path; default 8.
	// With congestion control active (the default) this is a ceiling:
	// the per-(thread, destination) controller picks the actual window.
	PipelineDepth int

	// NoCC disables congestion control cluster-wide: bulk pipelines run
	// at the fixed PipelineDepth and the Tx thread always batches up to
	// TxBurst, reproducing the static-knob behaviour bit-for-bit (the
	// ablation baseline; see internal/cc).
	NoCC bool

	// Ship selects the default function-shipping mode for arrays built on
	// this cluster: "auto" (per-chunk contention estimator; the default),
	// "on" (every remote Apply ships to the chunk's home), or "off"
	// (cached combining only, reproducing the pre-shipping protocol
	// bit-for-bit).
	Ship string

	// NoPool disables the zero-copy buffer pool (internal/buf) and every
	// recycling discipline built on it — payloads, protocol messages,
	// queue link nodes, waiters, completion tokens — reproducing the
	// allocate-per-message behaviour bit-for-bit as the ablation
	// baseline. Virtual-time results are identical either way; only real
	// allocator traffic differs.
	NoPool bool

	// Telemetry optionally shares one metrics registry across clusters
	// (the benchmark harness builds one cluster per data point); nil
	// gives this cluster a private registry.
	Telemetry *telemetry.Registry
	// Tracer, when non-nil, receives causal spans from the systems built
	// on this cluster (internal/trace). It starts disabled unless the
	// caller has Enabled it; attached-but-disabled costs one atomic load
	// per public op.
	Tracer *trace.Tracer
	// Metrics enables telemetry collection from startup. When false the
	// instrumented fast paths pay only an atomic-load guard.
	Metrics bool
	// MsgKindName labels protocol message kinds in fabric metrics and
	// reports (e.g. core.KindName); nil falls back to "kind-N".
	MsgKindName func(uint8) string
}

func (c *Config) fill() {
	if c.Nodes <= 0 {
		panic("cluster: Nodes must be positive")
	}
	if c.RuntimeThreads <= 0 {
		c.RuntimeThreads = 2
	}
	if c.ChunkWords <= 0 {
		c.ChunkWords = 512
	}
	if c.CacheChunks <= 0 {
		c.CacheChunks = 1024
	}
	if c.LowWatermark <= 0 {
		c.LowWatermark = 0.30
	}
	if c.HighWatermark <= 0 {
		c.HighWatermark = 0.50
	}
	if c.PrefetchAhead < 0 {
		c.PrefetchAhead = 0
	} else if c.PrefetchAhead == 0 {
		c.PrefetchAhead = 2
	}
	if c.TxBurst <= 0 {
		if c.TxBurst < 0 {
			c.TxBurst = 1
		} else {
			c.TxBurst = 16
		}
	}
	if c.PipelineDepth <= 0 {
		if c.PipelineDepth < 0 {
			c.PipelineDepth = 1
		} else {
			c.PipelineDepth = 8
		}
	}
	switch c.Ship {
	case "":
		c.Ship = "auto"
	case "auto", "on", "off":
	default:
		panic("cluster: Ship must be auto, on, or off: " + c.Ship)
	}
}

// Cluster is a set of simulated nodes over one fabric.
type Cluster struct {
	cfg   Config
	fab   *fabric.Fabric
	nodes []*Node
	pool  *buf.Pool // nil when cfg.NoPool

	bar barrier

	collMu   sync.Mutex
	collSeq  map[uint64]*collSlot
	arraySeq uint32

	reduceMu  sync.Mutex
	reduceAcc float64
	reduceN   int

	tel        *telemetry.Registry
	telMu      sync.Mutex
	telHandles []*telemetry.Collector

	// First fatal fabric error (e.g. retry budget exhausted on an async
	// send). failCh closes once so every blocked WaitResp unblocks and
	// applications degrade instead of deadlocking.
	failOnce sync.Once
	failErr  error
	failCh   chan struct{}

	closeOnce sync.Once
}

// New builds and starts a cluster: fabric, Rx/Tx comm goroutines, and
// runtime goroutines on every node.
func New(cfg Config) *Cluster {
	cfg.fill()
	c := &Cluster{
		cfg:     cfg,
		fab:     fabric.New(fabric.Config{Nodes: cfg.Nodes, Model: cfg.Model, Faults: cfg.Faults, Pooled: !cfg.NoPool}),
		collSeq: make(map[uint64]*collSlot),
		tel:     cfg.Telemetry,
		failCh:  make(chan struct{}),
	}
	if !cfg.NoPool {
		c.pool = buf.NewPool()
	}
	if c.tel == nil {
		c.tel = telemetry.New()
	}
	if cfg.Metrics {
		c.tel.Enable()
	}
	c.AddMetricsCollector(c.collectFabric)
	if cfg.Tracer != nil {
		c.AddMetricsCollector(cfg.Tracer.Collector())
	}
	c.bar.parties = cfg.Nodes
	c.nodes = make([]*Node, cfg.Nodes)
	for i := range c.nodes {
		c.nodes[i] = newNode(c, i)
	}
	for _, n := range c.nodes {
		n.start()
	}
	return c
}

// Config returns the cluster's (filled-in) configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Model returns the virtual-time model (may be nil).
func (c *Cluster) Model() *vtime.Model { return c.cfg.Model }

// Nodes returns the node count.
func (c *Cluster) Nodes() int { return c.cfg.Nodes }

// Node returns node i.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Fabric exposes the underlying fabric (for stats and baselines).
func (c *Cluster) Fabric() *fabric.Fabric { return c.fab }

// BufPool returns the cluster's shared payload buffer pool, or nil when
// the NoPool ablation is active. Systems built on the cluster lease
// their outbound payloads here.
func (c *Cluster) BufPool() *buf.Pool { return c.pool }

// Detacher lets per-runtime attachments (Runtime.Attach values) release
// pooled resources at cluster teardown: Close calls Detach on every
// attachment implementing it, after all goroutines have stopped.
type Detacher interface{ Detach() }

// fail records the first fatal fabric error and unblocks every waiter.
func (c *Cluster) fail(err error) {
	c.failOnce.Do(func() {
		c.failErr = err
		close(c.failCh)
	})
}

// Err returns the first fatal fabric error, or nil while the cluster is
// healthy. Once non-nil the cluster is degraded: outstanding and future
// slow-path waits complete with this error instead of blocking.
func (c *Cluster) Err() error {
	select {
	case <-c.failCh:
		return c.failErr
	default:
		return nil
	}
}

// Failed reports whether the cluster has hit a fatal fabric error.
func (c *Cluster) Failed() bool { return c.Err() != nil }

// Run executes fn once per node, SPMD style, and returns when every
// node's function has returned.
func (c *Cluster) Run(fn func(n *Node)) {
	var wg sync.WaitGroup
	for _, n := range c.nodes {
		wg.Add(1)
		go func(n *Node) {
			defer wg.Done()
			fn(n)
		}(n)
	}
	wg.Wait()
}

// Close stops all comm and runtime goroutines. The cluster must be
// quiescent (no Run in flight). Metrics collectors registered through
// this cluster are folded into the registry's retained store, so a
// shared registry keeps cluster-wide totals after the cluster dies.
func (c *Cluster) Close() {
	c.closeOnce.Do(func() {
		c.fab.Close()
		for _, n := range c.nodes {
			n.stopAll()
		}
		if c.pool != nil {
			// All goroutines are stopped: return in-flight payloads and
			// cached lines to the pool so Outstanding()==0 after a clean
			// shutdown (the chaos leak check relies on this).
			for _, n := range c.nodes {
				n.drainResidual()
			}
		}
		c.telMu.Lock()
		handles := c.telHandles
		c.telHandles = nil
		c.telMu.Unlock()
		for _, h := range handles {
			c.tel.RemoveCollector(h)
		}
	})
}

// Telemetry returns the cluster's metrics registry.
func (c *Cluster) Telemetry() *telemetry.Registry { return c.tel }

// Tracer returns the cluster's causal tracer, or nil when none is
// attached.
func (c *Cluster) Tracer() *trace.Tracer { return c.cfg.Tracer }

// AddMetricsCollector registers a snapshot-time metrics source whose
// lifetime is bound to this cluster: Close folds its final values into
// the registry so nothing references the dead cluster afterwards.
func (c *Cluster) AddMetricsCollector(fn telemetry.CollectorFunc) {
	h := c.tel.AddCollector(fn)
	c.telMu.Lock()
	c.telHandles = append(c.telHandles, h)
	c.telMu.Unlock()
}

// MetricsReport renders the current metrics snapshot as aligned text.
func (c *Cluster) MetricsReport() string { return c.tel.Snapshot().NonZero().Report() }

// MetricsJSON renders the current metrics snapshot as JSON.
func (c *Cluster) MetricsJSON() string { return c.tel.Snapshot().NonZero().JSON() }

// collectFabric contributes per-endpoint traffic counters and per-link
// byte histograms to metrics snapshots.
func (c *Cluster) collectFabric(emit telemetry.Emit) {
	perNode := func(name string, node int, v int64) {
		if v == 0 {
			return
		}
		per := make([]int64, node+1)
		per[node] = v
		emit(telemetry.Metric{Name: name, Kind: telemetry.KindCounter, PerNode: per})
	}
	if p := c.pool; p != nil {
		// The pool is cluster-wide, not per node; report under node 0.
		perNode("buf/pool/hit", 0, p.Hits())
		perNode("buf/pool/miss", 0, p.Misses())
		perNode("buf/pool/retained", 0, p.Retained())
		perNode("buf/pool/outstanding", 0, p.Outstanding())
	}
	for i := 0; i < c.cfg.Nodes; i++ {
		st := c.fab.Endpoint(i).Stats()
		perNode("fabric/coalesced_cmds", i, c.nodes[i].coalesced.Load())
		if h := c.nodes[i].dbHist.Data(); h.Count > 0 {
			per := make([]int64, i+1)
			per[i] = h.Count
			emit(telemetry.Metric{
				Name:    "fabric/doorbell_batch",
				Kind:    telemetry.KindHistogram,
				PerNode: per,
				Hist:    h,
			})
		}
		perNode("fabric/msgs_sent", i, st.MsgsSent.Load())
		perNode("fabric/bytes_sent", i, st.BytesSent.Load())
		perNode("fabric/onesided_ops", i, st.OneSidedOps.Load())
		perNode("fabric/onesided_bytes", i, st.OneSidedByte.Load())
		perNode("fabric/onesided_reads", i, st.Reads.Load())
		perNode("fabric/onesided_writes", i, st.Writes.Load())
		perNode("fabric/onesided_cas", i, st.CASs.Load())
		perNode("fabric/retransmits", i, st.Retransmits.Load())
		perNode("fabric/timeouts", i, st.Timeouts.Load())
		perNode("fabric/faults_injected", i, st.FaultsInjected.Load())
		perNode("fabric/dups_suppressed", i, st.DupsSuppressed.Load())
		kindName := func(k int) string {
			if k >= fabric.MaxMsgKinds {
				return "one-sided"
			}
			name := ""
			if c.cfg.MsgKindName != nil {
				name = c.cfg.MsgKindName(uint8(k))
			}
			if name == "" {
				name = fmt.Sprintf("kind-%d", k)
			}
			return name
		}
		for k := 0; k < fabric.MaxMsgKinds; k++ {
			n := st.KindCount(uint8(k))
			if n == 0 {
				continue
			}
			perNode("fabric/msgs/"+kindName(k), i, n)
		}
		for k := 0; k <= fabric.MaxMsgKinds; k++ {
			h := st.RetryHist(uint8(k)).Data()
			if h.Count == 0 {
				continue
			}
			per := make([]int64, i+1)
			per[i] = h.Count
			emit(telemetry.Metric{
				Name:    "fabric/retries/" + kindName(k),
				Kind:    telemetry.KindHistogram,
				PerNode: per,
				Hist:    h,
			})
		}
		for j := 0; j < c.cfg.Nodes; j++ {
			h := c.fab.Endpoint(i).LinkBytes(j).Data()
			if h.Count == 0 {
				continue
			}
			per := make([]int64, i+1)
			per[i] = h.Count
			emit(telemetry.Metric{
				Name:    fmt.Sprintf("fabric/link_bytes/%d->%d", i, j),
				Kind:    telemetry.KindHistogram,
				PerNode: per,
				Hist:    h,
			})
		}
	}
}

// NextArrayID allocates a cluster-unique id for a distributed object.
func (c *Cluster) NextArrayID() uint32 {
	c.collMu.Lock()
	defer c.collMu.Unlock()
	c.arraySeq++
	return c.arraySeq
}

type collSlot struct {
	once  sync.Once
	value any
	wg    sync.WaitGroup
	refs  int
}

// Collective runs factory exactly once across the cluster for the given
// per-node sequence number and returns its value on every node. All
// nodes must call Collective in the same order with matching seq values
// (each Node maintains the counter via Node.NextCollective).
func (c *Cluster) Collective(seq uint64, factory func() any) any {
	c.collMu.Lock()
	slot, ok := c.collSeq[seq]
	if !ok {
		slot = &collSlot{}
		slot.wg.Add(1)
		c.collSeq[seq] = slot
	}
	slot.refs++
	last := slot.refs == c.cfg.Nodes
	c.collMu.Unlock()

	slot.once.Do(func() {
		slot.value = factory()
		slot.wg.Done()
	})
	slot.wg.Wait()
	v := slot.value
	if last {
		c.collMu.Lock()
		delete(c.collSeq, seq)
		c.collMu.Unlock()
	}
	return v
}

// barrier is a cyclic sense-reversing barrier that also merges virtual
// clocks: every participant leaves at max(entry clocks) plus the
// modelled barrier latency.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	count   int
	gen     uint64
	maxVT   [2]int64
}

// Barrier blocks until every node has arrived. ctx may be nil (no
// virtual-time merge).
func (c *Cluster) Barrier(ctx *Ctx) {
	b := &c.bar
	b.mu.Lock()
	if b.cond == nil {
		b.cond = sync.NewCond(&b.mu)
	}
	slot := b.gen & 1
	if ctx != nil && ctx.Clock.Now() > b.maxVT[slot] {
		b.maxVT[slot] = ctx.Clock.Now()
	}
	b.count++
	if b.count == b.parties {
		b.count = 0
		b.maxVT[1-slot] = 0 // reset the next generation's slot
		b.gen++
		b.cond.Broadcast()
	} else {
		gen := b.gen
		for gen == b.gen {
			b.cond.Wait()
		}
	}
	exit := b.maxVT[slot]
	b.mu.Unlock()
	if ctx != nil {
		ctx.Clock.AdvanceTo(exit)
		if m := c.cfg.Model; m != nil {
			// Dissemination barrier: ceil(log2(n)) message rounds.
			rounds := int64(0)
			for p := 1; p < c.cfg.Nodes; p *= 2 {
				rounds++
			}
			ctx.Clock.Advance(rounds * m.Wire)
		}
	}
}

// AllReduceSum performs a sum all-reduce of v across nodes (one call per
// node per round) and returns the global sum to every caller.
func (c *Cluster) AllReduceSum(ctx *Ctx, v float64) float64 {
	c.reduceMu.Lock()
	c.reduceAcc += v
	c.reduceN++
	c.reduceMu.Unlock()
	c.Barrier(ctx)
	c.reduceMu.Lock()
	sum := c.reduceAcc
	c.reduceN--
	if c.reduceN == 0 {
		c.reduceAcc = 0
	}
	c.reduceMu.Unlock()
	c.Barrier(ctx)
	return sum
}

// Ctx is an application-thread context: the unit the interface layer is
// called from. It carries the thread's virtual clock, its deterministic
// RNG, and thread-local event statistics.
type Ctx struct {
	Node  *Node
	TID   int
	Clock vtime.Clock
	Rng   *rand.Rand
	Stats Stats

	resp chan Resp // reusable completion channel for slow-path waits
	err  error     // first completion error observed by this thread
	toks []*Token  // recycled completion tokens (pooled clusters only)

	// ccs[dst] is this thread's congestion controller toward node dst
	// (nil slice under Config.NoCC). Built eagerly at NewCtx so runtime
	// goroutines — the prefetcher capping speculative issues by spare
	// window — can read controllers without racing lazy construction.
	ccs []*cc.Controller

	// demand counts this thread's in-flight slow-path chunk requests
	// (pipeline tokens plus the single synchronous request). Atomic:
	// runtime goroutines read it to cap speculative prefetch issue by
	// the thread's spare window credit.
	demand atomic.Int64
}

// Resp is the completion record a runtime goroutine sends back to a
// blocked application thread: the virtual time the request finished at,
// plus an optional value. RetransNs is the share of the grant's
// delivery latency the fabric's go-back-N recovery added (0 on a clean
// wire or a local grant) — the congestion controller's loss signal.
type Resp struct {
	VT        int64
	Val       uint64
	RetransNs int64
	Err       error
}

// CC returns this thread's congestion controller toward node dst, or
// nil when the cluster runs with congestion control disabled.
func (ctx *Ctx) CC(dst int) *cc.Controller {
	if ctx.ccs == nil {
		return nil
	}
	return ctx.ccs[dst]
}

// CCOn reports whether congestion control is active for this thread.
func (ctx *Ctx) CCOn() bool { return ctx.ccs != nil }

// DemandStart records one slow-path chunk request entering flight.
func (ctx *Ctx) DemandStart() { ctx.demand.Add(1) }

// DemandEnd records its completion.
func (ctx *Ctx) DemandEnd() { ctx.demand.Add(-1) }

// DemandInflight returns the thread's in-flight slow-path request
// count. Safe from any goroutine.
func (ctx *Ctx) DemandInflight() int64 { return ctx.demand.Load() }

// WaitResp blocks until the thread's outstanding slow-path request
// completes. A Ctx may have at most one outstanding request.
//
// If the cluster hits a fatal fabric error (a message the retransmission
// budget could not deliver) the completion may never arrive; WaitResp
// then returns a Resp carrying the cluster error so the thread degrades
// instead of deadlocking.
func (ctx *Ctx) WaitResp() Resp {
	select {
	case r := <-ctx.resp:
		if r.Err != nil {
			ctx.Fail(r.Err)
		}
		return r
	case <-ctx.Node.c.failCh:
		err := ctx.Node.c.failErr
		ctx.Fail(err)
		return Resp{Err: err}
	}
}

// Complete delivers the completion for ctx's outstanding request; called
// by runtime goroutines.
func (ctx *Ctx) Complete(r Resp) { ctx.resp <- r }

// Token is a completion slot for one asynchronous slow-path request. A
// Ctx's built-in response channel admits a single outstanding request at
// a time; tokens let one application thread keep several requests in
// flight — the bulk-transfer pipeline issues one per chunk — each with
// its own completion.
type Token struct {
	node *Node
	ch   chan Resp
}

// NewToken allocates a completion token bound to this node's cluster.
func (n *Node) NewToken() *Token { return &Token{node: n, ch: make(chan Resp, 1)} }

// Complete delivers the token's completion; called by runtime goroutines.
func (t *Token) Complete(r Resp) { t.ch <- r }

// Wait blocks until the token completes, degrading with the cluster's
// fatal fabric error exactly like Ctx.WaitResp.
func (t *Token) Wait() Resp {
	select {
	case r := <-t.ch:
		return r
	case <-t.node.c.failCh:
		return Resp{Err: t.node.c.failErr}
	}
}

// AcquireToken returns a completion token, reusing one this thread
// recycled earlier when possible.
func (ctx *Ctx) AcquireToken() *Token {
	if k := len(ctx.toks); k > 0 {
		t := ctx.toks[k-1]
		ctx.toks = ctx.toks[:k-1]
		return t
	}
	return ctx.Node.NewToken()
}

// RecycleToken returns t to this thread's freelist for AcquireToken to
// reuse. Only tokens whose Wait returned a real completion may be
// recycled: after a cluster-failure Wait a runtime may still deliver
// into the token's channel, and that stale completion must not be
// mistaken for a future request's. No-op on NoPool clusters.
func (ctx *Ctx) RecycleToken(t *Token) {
	if ctx.Node.c.pool == nil {
		return
	}
	ctx.toks = append(ctx.toks, t)
}

// Fail records the first error observed on this thread (completion
// errors from one-sided verbs or slow-path requests).
func (ctx *Ctx) Fail(err error) {
	if ctx.err == nil && err != nil {
		ctx.err = err
	}
}

// Err returns the first error observed on this thread, or the cluster's
// fatal error if any; nil while healthy. After a non-nil Err the array
// APIs return zero values rather than blocking.
func (ctx *Ctx) Err() error {
	if ctx.err != nil {
		return ctx.err
	}
	return ctx.Node.c.Err()
}

// Stats counts the events a thread generated; the benchmark harness
// aggregates these per figure.
type Stats struct {
	Hits       int64 // fast-path accesses
	Misses     int64 // slow-path requests to the runtime
	Remote     int64 // protocol round trips initiated on this thread's behalf
	LockOps    int64
	Combines   int64 // Operate combines into a local buffer
	Ops        int64 // total API operations
	Prefetches int64
}

// NewCtx creates a thread context on node n.
func (n *Node) NewCtx(tid int) *Ctx {
	ctx := &Ctx{
		Node: n,
		TID:  tid,
		Rng:  rand.New(rand.NewSource(int64(n.id)*1_000_003 + int64(tid)*7919 + 1)),
		resp: make(chan Resp, 1),
	}
	if !n.c.cfg.NoCC {
		ctx.ccs = make([]*cc.Controller, n.c.cfg.Nodes)
		for i := range ctx.ccs {
			ctx.ccs[i] = cc.New()
		}
	}
	return ctx
}

// RunThreads runs fn on t application threads of this node and waits.
func (n *Node) RunThreads(t int, fn func(ctx *Ctx)) {
	var wg sync.WaitGroup
	for i := 0; i < t; i++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			fn(n.NewCtx(tid))
		}(i)
	}
	wg.Wait()
}

func (c *Cluster) String() string {
	return fmt.Sprintf("cluster{nodes:%d, runtimes:%d}", c.cfg.Nodes, c.cfg.RuntimeThreads)
}
