package cluster

import (
	"runtime"
	"testing"
	"time"

	"darray/internal/fabric"
	"darray/internal/vtime"
)

// Satellite regression: Close must drain and join every Tx/Rx and
// runtime goroutine. Opening and closing 50 clusters has to bring the
// process back to its goroutine baseline — a single leaked loop per
// cluster would show up 50-fold.
func TestNoGoroutineLeakAcross50Clusters(t *testing.T) {
	runtime.GC()
	baseline := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		c := New(Config{Nodes: 3, RuntimeThreads: 2, Model: vtime.Default()})
		// Exercise all three goroutine families: app threads send a
		// message through Tx, Rx routes it to a runtime.
		c.Node(0).RegisterRoute(1, Route{
			RuntimeOf: func(m *fabric.Message) int { return 0 },
			Handle:    func(rt *Runtime, m *fabric.Message) {},
		})
		c.Run(func(n *Node) {
			ctx := n.NewCtx(0)
			c.Barrier(ctx)
			if n.ID() == 1 {
				n.Send(&fabric.Message{To: 0, Array: 1})
			}
			c.Barrier(ctx)
		})
		c.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Close is idempotent and joins deterministically even when messages are
// still queued at shutdown.
func TestCloseWithQueuedTraffic(t *testing.T) {
	c := New(Config{Nodes: 2})
	c.Node(1).RegisterRoute(1, Route{
		RuntimeOf: func(m *fabric.Message) int { return 0 },
		Handle:    func(rt *Runtime, m *fabric.Message) {},
	})
	for i := 0; i < 100; i++ {
		c.Node(0).Send(&fabric.Message{To: 1, Array: 1})
	}
	c.Close()
	c.Close()
}
