package cluster

import (
	"sync"
	"sync/atomic"
	"testing"

	"darray/internal/fabric"
	"darray/internal/vtime"
)

func TestRunSPMD(t *testing.T) {
	c := New(Config{Nodes: 4})
	defer c.Close()
	var visited [4]atomic.Int32
	c.Run(func(n *Node) { visited[n.ID()].Add(1) })
	for i := range visited {
		if visited[i].Load() != 1 {
			t.Fatalf("node %d visited %d times", i, visited[i].Load())
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := New(Config{Nodes: 2})
	defer c.Close()
	cfg := c.Config()
	if cfg.RuntimeThreads != 2 || cfg.ChunkWords != 512 ||
		cfg.CacheChunks != 1024 || cfg.PrefetchAhead != 2 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if cfg.LowWatermark != 0.30 || cfg.HighWatermark != 0.50 {
		t.Fatalf("watermark defaults wrong: %+v", cfg)
	}
}

func TestPrefetchDisable(t *testing.T) {
	c := New(Config{Nodes: 1, PrefetchAhead: -1})
	defer c.Close()
	if c.Config().PrefetchAhead != 0 {
		t.Fatalf("PrefetchAhead=-1 should mean disabled, got %d", c.Config().PrefetchAhead)
	}
}

func TestBarrierRendezvous(t *testing.T) {
	c := New(Config{Nodes: 3})
	defer c.Close()
	var phase atomic.Int32
	var maxSeen [3]int32
	var bad atomic.Int32
	c.Run(func(n *Node) {
		ctx := n.NewCtx(0)
		for p := int32(1); p <= 5; p++ {
			phase.Add(1)
			c.Barrier(ctx)
			maxSeen[n.ID()] = phase.Load()
			c.Barrier(ctx)
			if got := phase.Load(); got != 3*p {
				bad.Add(1)
			}
			// Third barrier so no node can race ahead into the next
			// phase increment before everyone has checked.
			c.Barrier(ctx)
		}
	})
	if bad.Load() != 0 {
		t.Fatalf("%d barrier-phase violations", bad.Load())
	}
	for i, v := range maxSeen {
		if v != 15 {
			t.Fatalf("node %d saw %d, want 15", i, v)
		}
	}
}

func TestBarrierMergesClocks(t *testing.T) {
	m := vtime.Default()
	c := New(Config{Nodes: 2, Model: m})
	defer c.Close()
	var exits [2]int64
	c.Run(func(n *Node) {
		ctx := n.NewCtx(0)
		ctx.Clock.Advance(int64(1000 * (n.ID() + 1))) // node0=1000, node1=2000
		c.Barrier(ctx)
		exits[n.ID()] = ctx.Clock.Now()
	})
	for i, e := range exits {
		if e < 2000+m.Wire {
			t.Fatalf("node %d exited barrier at %d, want >= %d", i, e, 2000+m.Wire)
		}
	}
}

func TestAllReduceSum(t *testing.T) {
	c := New(Config{Nodes: 4})
	defer c.Close()
	var got [4]float64
	for round := 0; round < 3; round++ {
		c.Run(func(n *Node) {
			got[n.ID()] = c.AllReduceSum(n.NewCtx(0), float64(n.ID()+1))
		})
		for i, v := range got {
			if v != 10 {
				t.Fatalf("round %d node %d: sum = %v, want 10", round, i, v)
			}
		}
	}
}

func TestCollectiveOnce(t *testing.T) {
	c := New(Config{Nodes: 4})
	defer c.Close()
	var created atomic.Int32
	vals := make([]any, 4)
	c.Run(func(n *Node) {
		vals[n.ID()] = n.Collective(func() any {
			created.Add(1)
			return "shared"
		})
	})
	if created.Load() != 1 {
		t.Fatalf("factory ran %d times, want 1", created.Load())
	}
	for i, v := range vals {
		if v != "shared" {
			t.Fatalf("node %d got %v", i, v)
		}
	}
	// A second collective must get a fresh slot.
	var second atomic.Int32
	c.Run(func(n *Node) {
		n.Collective(func() any { second.Add(1); return 2 })
	})
	if second.Load() != 1 {
		t.Fatalf("second factory ran %d times", second.Load())
	}
}

func TestRuntimeSubmit(t *testing.T) {
	c := New(Config{Nodes: 1})
	defer c.Close()
	rt := c.Node(0).Runtime(0)
	done := make(chan int, 10)
	for i := 0; i < 10; i++ {
		i := i
		rt.Submit(func(*Runtime) { done <- i })
	}
	for i := 0; i < 10; i++ {
		if got := <-done; got != i {
			t.Fatalf("runtime executed out of order: %d before %d", got, i)
		}
	}
}

func TestRuntimeStall(t *testing.T) {
	c := New(Config{Nodes: 1})
	defer c.Close()
	rt := c.Node(0).Runtime(0)
	var gate atomic.Bool
	done := make(chan struct{})
	rt.Submit(func(rt *Runtime) {
		tries := 0
		rt.Stall(func(*Runtime) bool {
			tries++
			if gate.Load() {
				close(done)
				return true
			}
			return false
		})
	})
	// Other work keeps flowing while the continuation is stalled.
	ok := make(chan struct{})
	rt.Submit(func(*Runtime) { close(ok) })
	<-ok
	select {
	case <-done:
		t.Fatal("stalled continuation completed before gate opened")
	default:
	}
	gate.Store(true)
	<-done
}

func TestSendRouting(t *testing.T) {
	c := New(Config{Nodes: 2, RuntimeThreads: 2})
	defer c.Close()
	recv := make(chan *fabric.Message, 4)
	route := Route{
		RuntimeOf: func(m *fabric.Message) int { return int(m.Chunk) % 2 },
		Handle:    func(rt *Runtime, m *fabric.Message) { m.Val = uint64(rt.Index()); recv <- m },
	}
	c.Node(0).RegisterRoute(7, route)
	c.Node(1).RegisterRoute(7, route)
	c.Node(0).Send(&fabric.Message{To: 1, Array: 7, Chunk: 3})
	c.Node(0).Send(&fabric.Message{To: 1, Array: 7, Chunk: 4})
	seen := map[int64]uint64{}
	for i := 0; i < 2; i++ {
		m := <-recv
		seen[m.Chunk] = m.Val
	}
	if seen[3] != 1 || seen[4] != 0 {
		t.Fatalf("messages routed to wrong runtimes: %v", seen)
	}
}

func TestCtxDeterministicRng(t *testing.T) {
	c := New(Config{Nodes: 2})
	defer c.Close()
	a := c.Node(0).NewCtx(0).Rng.Uint64()
	b := c.Node(0).NewCtx(0).Rng.Uint64()
	if a != b {
		t.Fatal("same (node,tid) must seed identically")
	}
	d := c.Node(1).NewCtx(0).Rng.Uint64()
	if a == d {
		t.Fatal("different nodes must seed differently")
	}
}

func TestRunThreads(t *testing.T) {
	c := New(Config{Nodes: 1})
	defer c.Close()
	var mu sync.Mutex
	tids := map[int]bool{}
	c.Node(0).RunThreads(8, func(ctx *Ctx) {
		mu.Lock()
		tids[ctx.TID] = true
		mu.Unlock()
	})
	if len(tids) != 8 {
		t.Fatalf("saw %d thread ids, want 8", len(tids))
	}
}

func TestNextArrayIDUnique(t *testing.T) {
	c := New(Config{Nodes: 1})
	defer c.Close()
	a, b := c.NextArrayID(), c.NextArrayID()
	if a == b || a == 0 || b == 0 {
		t.Fatalf("array ids not unique/nonzero: %d %d", a, b)
	}
}

func TestTxChargesSendCost(t *testing.T) {
	m := vtime.Default()
	c := New(Config{Nodes: 2, Model: m})
	defer c.Close()
	recv := make(chan *fabric.Message, 1)
	route := Route{
		RuntimeOf: func(*fabric.Message) int { return 0 },
		Handle:    func(_ *Runtime, msg *fabric.Message) { recv <- msg },
	}
	c.Node(1).RegisterRoute(1, route)
	c.Node(0).Send(&fabric.Message{To: 1, Array: 1, SendVT: 500})
	got := <-recv
	if got.VT < 500+m.SendCost()+m.Wire {
		t.Fatalf("arrival VT %d too early (send 500)", got.VT)
	}
}
