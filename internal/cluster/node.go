package cluster

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"darray/internal/cc"
	"darray/internal/fabric"
	"darray/internal/queue"
	"darray/internal/telemetry"
	"darray/internal/vtime"
)

// Node is one simulated machine: local memory, runtime goroutines, and a
// Tx/Rx comm pair over the fabric endpoint.
type Node struct {
	id  int
	c   *Cluster
	ep  *fabric.Endpoint
	rts []*Runtime

	txq  *queue.MPSC[*fabric.Message]
	stop chan struct{}
	wg   sync.WaitGroup

	routeMu sync.RWMutex
	routes  map[uint32]Route

	// Tx-path batching telemetry: work requests per doorbell, and how
	// many protocol commands destination coalescing absorbed.
	dbHist    telemetry.Histogram
	coalesced atomic.Int64

	collSeq atomic.Uint64
}

// Route decides which runtime thread handles a received protocol message
// and returns a handler to run on that runtime. Registered per array id.
type Route struct {
	// RuntimeOf maps a message to the index of the runtime goroutine
	// that owns its chunk (must match the sender's placement).
	RuntimeOf func(m *fabric.Message) int
	// Handle processes the message on its runtime goroutine.
	Handle func(rt *Runtime, m *fabric.Message)
	// Coalescible reports which payload-free protocol kinds the Tx
	// thread may destination-coalesce (nil: none). Only kinds whose
	// messages carry no Data and whose handling depends solely on
	// (From, Chunk, VT) are safe to mark.
	Coalescible func(kind uint8) bool
}

func newNode(c *Cluster, id int) *Node {
	newTxq := queue.NewMPSC[*fabric.Message]
	if c.pool != nil {
		newTxq = queue.NewMPSCPooled[*fabric.Message]
	}
	n := &Node{
		id:     id,
		c:      c,
		ep:     c.fab.Endpoint(id),
		txq:    newTxq(),
		stop:   make(chan struct{}),
		routes: make(map[uint32]Route),
	}
	n.rts = make([]*Runtime, c.cfg.RuntimeThreads)
	for i := range n.rts {
		n.rts[i] = newRuntime(n, i)
	}
	return n
}

// ID returns the node id.
func (n *Node) ID() int { return n.id }

// Cluster returns the owning cluster.
func (n *Node) Cluster() *Cluster { return n.c }

// Endpoint returns the node's fabric endpoint.
func (n *Node) Endpoint() *fabric.Endpoint { return n.ep }

// Runtime returns runtime goroutine i of this node.
func (n *Node) Runtime(i int) *Runtime { return n.rts[i] }

// Runtimes returns the number of runtime goroutines.
func (n *Node) Runtimes() int { return len(n.rts) }

// NextCollective returns this node's next collective sequence number;
// combined with Cluster.Collective it implements collective creation.
func (n *Node) NextCollective() uint64 { return n.collSeq.Add(1) }

// Collective runs factory once cluster-wide, in program order.
func (n *Node) Collective(factory func() any) any {
	return n.c.Collective(n.NextCollective(), factory)
}

// RegisterRoute installs the message route for an array id. Must be
// called on every node before any message with that id can arrive
// (collective creation guarantees this).
func (n *Node) RegisterRoute(array uint32, r Route) {
	n.routeMu.Lock()
	defer n.routeMu.Unlock()
	n.routes[array] = r
}

// Send queues m for transmission by this node's Tx goroutine. m.SendVT
// must carry the producer's virtual ready time.
func (n *Node) Send(m *fabric.Message) {
	m.From = n.id
	n.txq.Push(m)
}

func (n *Node) start() {
	n.wg.Add(2)
	go n.txLoop()
	go n.rxLoop()
	for _, rt := range n.rts {
		rt.start()
	}
}

func (n *Node) stopAll() {
	close(n.stop)
	for _, rt := range n.rts {
		rt.stopRt()
	}
	n.wg.Wait()
}

// drainResidual returns pooled resources still sitting in the node's
// queues to their pools and detaches per-runtime attachments. Only
// valid after stopAll: it pops from queues whose consumers must be
// dead. Without it, a message in flight at Close would count as a
// leaked buffer.
func (n *Node) drainResidual() {
	for {
		m, ok := n.txq.Pop()
		if !ok {
			break
		}
		m.Payload.Release()
		fabric.FreeMessage(m)
	}
	n.ep.DrainRx()
	for _, rt := range n.rts {
		for {
			it, ok := rt.rpcq.Pop()
			if !ok {
				break
			}
			it.msg.Payload.Release()
			fabric.FreeMessage(it.msg)
		}
		for _, v := range rt.Attach {
			if d, ok := v.(Detacher); ok {
				d.Detach()
			}
		}
	}
}

// txLoop is the dedicated transmit thread (paper §4.5): it drains the
// RDMA-request queue and posts work requests, applying selective
// signaling accounting via the model's SendCost, charged as the Tx
// thread's own serial resource.
//
// Bursting: when the queue holds more than one message the loop drains
// up to TxBurst of them, optionally destination-coalesces adjacent
// payload-free commands, and posts the burst behind a single doorbell —
// the leader pays the full SendCost, followers only the chained-WQE
// cost. TxBurst=1 reproduces the unbatched per-message charging.
//
// With congestion control active (Config.NoCC unset) TxBurst is only a
// ceiling: an AIMD budget shrinks the batch when posts needed go-back-N
// recovery — a big doorbell behind a lossy link turns one drop into a
// burst-wide resend — and grows it back one WQE per clean burst.
func (n *Node) txLoop() {
	defer n.wg.Done()
	var txRes vtime.Resource
	mdl := n.c.cfg.Model
	var bud *cc.Burst
	if !n.c.cfg.NoCC {
		bud = cc.NewBurst(n.c.cfg.TxBurst)
	}
	burst := make([]*fabric.Message, 0, n.c.cfg.TxBurst)
	for {
		m, ok := n.txq.PopWait(n.stop)
		if !ok {
			return
		}
		limit := n.c.cfg.TxBurst
		if bud != nil {
			limit = bud.Limit()
		}
		burst = append(burst[:0], m)
		for len(burst) < limit {
			m2, ok := n.txq.Pop()
			if !ok {
				break
			}
			burst = append(burst, m2)
		}
		if !n.c.cfg.DisableCoalesce && len(burst) > 1 {
			burst = n.coalesce(burst)
		}
		n.dbHist.Observe(int64(len(burst)))
		for i, m := range burst {
			if mdl != nil {
				_, end := txRes.Acquire(m.SendVT, mdl.PostCost(i == 0))
				m.SendVT = end
			}
			if err := n.ep.Post(m); err != nil {
				// The peer stayed unreachable past the retransmission
				// budget. There is no caller to hand the completion to (the
				// Tx thread is asynchronous), so mark the whole cluster
				// failed: every blocked WaitResp unblocks with this error.
				// The message was not delivered; its payload reference is
				// ours to release.
				if n.c.pool != nil {
					m.Payload.Release()
					fabric.FreeMessage(m)
				}
				n.c.fail(fmt.Errorf("node %d tx: %w", n.id, err))
			}
		}
		if bud != nil {
			bud.OnBurst(n.ep.TakeRetransSignal())
		}
	}
}

// coalesce merges adjacent burst entries that carry the same payload-free
// protocol command to the same (destination, array): the survivor keeps
// its own chunk and accumulates the absorbed chunks in Data, and the Rx
// thread fans them back out. Only strictly adjacent runs are merged so
// per-destination FIFO order is preserved even with interleaved traffic.
func (n *Node) coalesce(burst []*fabric.Message) []*fabric.Message {
	out := burst[:0]
	var lead *fabric.Message
	var lr Route
	for _, m := range burst {
		if lead != nil && m.To == lead.To && m.Array == lead.Array &&
			m.Kind == lead.Kind && len(m.Data) == 0 && !m.Coal &&
			lr.Coalescible != nil && lr.Coalescible(m.Kind) {
			lead.Coal = true
			if n.c.pool != nil && lead.Payload == nil {
				// Lease the absorbed-chunk index list at full burst
				// capacity so the appends below stay inside the buffer.
				lead.Payload = n.c.pool.Get(n.c.cfg.TxBurst)
				lead.Data = lead.Payload.Words()[:0]
			}
			lead.Data = append(lead.Data, uint64(m.Chunk))
			if m.Trace != 0 || lead.CoalTC != nil {
				// Keep CoalTC parallel to Data: backfill zero triples for
				// earlier untraced absorbed commands on first use.
				for len(lead.CoalTC) < 3*(len(lead.Data)-1) {
					lead.CoalTC = append(lead.CoalTC, 0)
				}
				lead.CoalTC = append(lead.CoalTC, m.Trace, m.PSpan, uint64(m.QueuedVT))
			}
			if m.SendVT > lead.SendVT {
				lead.SendVT = m.SendVT
			}
			n.coalesced.Add(1)
			if n.c.pool != nil {
				fabric.FreeMessage(m) // absorbed; only its chunk index survives
			}
			continue
		}
		lead = m
		n.routeMu.RLock()
		lr = n.routes[m.Array]
		n.routeMu.RUnlock()
		if len(m.Data) != 0 || m.Coal || lr.Coalescible == nil || !lr.Coalescible(m.Kind) {
			lead = nil // not a merge candidate; never absorb into it
		}
		out = append(out, m)
	}
	return out
}

// rxLoop is the dedicated receive thread: it polls the endpoint and
// delivers RPC messages to the runtime that owns the target chunk.
// Coalesced commands are fanned back out here: the wire carried one
// message, but each absorbed chunk is delivered to its owning runtime
// as if it had arrived alone.
func (n *Node) rxLoop() {
	defer n.wg.Done()
	for {
		m, ok := n.ep.PollWait()
		if !ok {
			return
		}
		n.routeMu.RLock()
		r, ok := n.routes[m.Array]
		n.routeMu.RUnlock()
		if !ok {
			// A message for an array this node hasn't registered is a
			// programming error; drop loudly in tests via panic.
			panic("cluster: message for unregistered array")
		}
		if m.Coal {
			// Never mutate m itself: the sender's endpoint may still hold
			// the same pointer for retransmission. Deliver copies, built
			// from a template taken before the first delivery — once a
			// copy is delivered a pooled runtime may free it concurrently.
			tpl := *m
			tpl.Coal, tpl.Data, tpl.Payload, tpl.CoalTC = false, nil, nil, nil
			// Only the lead command owns the message's own trace context;
			// each absorbed command's context rides in CoalTC and is
			// restored onto its fan-out copy here (a copy without an
			// entry is untraced — it must not inherit the lead's, which
			// belongs to an unrelated op).
			ctpl := tpl
			ctpl.Trace, ctpl.PSpan = 0, 0
			restore := func(cm *fabric.Message, i int) {
				if tcs := m.CoalTC; len(tcs) >= 3*(i+1) {
					cm.Trace, cm.PSpan = tcs[3*i], tcs[3*i+1]
					cm.QueuedVT = int64(tcs[3*i+2])
				}
			}
			if n.c.pool != nil {
				lead := fabric.NewMessage()
				*lead = tpl
				n.deliver(r, lead)
				for i, ci := range m.Data {
					cm := fabric.NewMessage()
					*cm = ctpl
					cm.Chunk = int64(ci)
					restore(cm, i)
					n.deliver(r, cm)
				}
				m.Payload.Release() // the absorbed-chunk index list
				fabric.FreeMessage(m)
			} else {
				lead := tpl
				n.deliver(r, &lead)
				for i, ci := range m.Data {
					cm := ctpl
					cm.Chunk = int64(ci)
					restore(&cm, i)
					n.deliver(r, &cm)
				}
			}
			continue
		}
		n.deliver(r, m)
	}
}

func (n *Node) deliver(r Route, m *fabric.Message) {
	rt := n.rts[r.RuntimeOf(m)]
	rt.rpcq.Push(rpcItem{route: r, msg: m})
	rt.notify()
}

type rpcItem struct {
	route Route
	msg   *fabric.Message
}

// Runtime is one runtime-layer goroutine. It consumes the local-request
// queue (closures submitted by application threads on this node) and the
// RPC-message queue (protocol messages from remote nodes), and retries
// stalled protocol transitions as continuations so a blocked chunk never
// wedges the queue.
type Runtime struct {
	node *Node
	idx  int

	localq *queue.MPSC[func(rt *Runtime)]
	rpcq   *queue.MPSC[rpcItem]

	stalled []func(rt *Runtime) bool // retried until they report done

	// Res serializes this runtime's virtual service time.
	Res vtime.Resource

	// Attach holds per-array runtime-local state (e.g. the DArray cache
	// region owned by this runtime thread), keyed by array id.
	Attach map[uint32]any

	parked atomic.Int32
	wake   chan struct{}
	stop   chan struct{}
	done   chan struct{}
}

func newRuntime(n *Node, idx int) *Runtime {
	newLocalq := queue.NewMPSC[func(rt *Runtime)]
	newRpcq := queue.NewMPSC[rpcItem]
	if n.c.pool != nil {
		newLocalq = queue.NewMPSCPooled[func(rt *Runtime)]
		newRpcq = queue.NewMPSCPooled[rpcItem]
	}
	return &Runtime{
		node:   n,
		idx:    idx,
		localq: newLocalq(),
		rpcq:   newRpcq(),
		Attach: make(map[uint32]any),
		wake:   make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// Node returns the owning node.
func (rt *Runtime) Node() *Node { return rt.node }

// Index returns this runtime's index within its node.
func (rt *Runtime) Index() int { return rt.idx }

// Submit enqueues a local request for this runtime (the paper's
// local-request queue) and wakes it.
func (rt *Runtime) Submit(fn func(rt *Runtime)) {
	rt.localq.Push(fn)
	rt.notify()
}

// Stall registers a continuation to be retried by the runtime loop until
// it returns true. Must only be called from this runtime's goroutine.
func (rt *Runtime) Stall(fn func(rt *Runtime) bool) {
	rt.stalled = append(rt.stalled, fn)
}

func (rt *Runtime) notify() {
	if rt.parked.Load() == 1 && rt.parked.CompareAndSwap(1, 0) {
		rt.wake <- struct{}{}
	}
}

func (rt *Runtime) start() { go rt.loop() }

func (rt *Runtime) stopRt() {
	close(rt.stop)
	rt.notify()
	<-rt.done
}

func (rt *Runtime) loop() {
	defer close(rt.done)
	for {
		progress := false
		for i := 0; i < 64; i++ {
			fn, ok := rt.localq.Pop()
			if !ok {
				break
			}
			fn(rt)
			progress = true
		}
		for i := 0; i < 64; i++ {
			it, ok := rt.rpcq.Pop()
			if !ok {
				break
			}
			it.route.Handle(rt, it.msg)
			progress = true
		}
		if len(rt.stalled) > 0 {
			kept := rt.stalled[:0]
			for _, fn := range rt.stalled {
				if !fn(rt) {
					kept = append(kept, fn)
				} else {
					progress = true
				}
			}
			rt.stalled = kept
		}
		if progress {
			continue
		}
		select {
		case <-rt.stop:
			return
		default:
		}
		if len(rt.stalled) > 0 {
			// Stalled continuations wait on app-thread refcounts; yield
			// so those threads can run on this core.
			runtime.Gosched()
			continue
		}
		rt.parked.Store(1)
		if !rt.localq.Empty() || !rt.rpcq.Empty() {
			if !rt.parked.CompareAndSwap(1, 0) {
				<-rt.wake
			}
			continue
		}
		select {
		case <-rt.wake:
		case <-rt.stop:
			return
		}
	}
}
