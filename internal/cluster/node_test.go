package cluster

import (
	"sync/atomic"
	"testing"
)

func TestClusterReusableAcrossRuns(t *testing.T) {
	c := New(Config{Nodes: 2})
	defer c.Close()
	var total atomic.Int32
	for round := 0; round < 5; round++ {
		c.Run(func(n *Node) {
			ctx := n.NewCtx(0)
			c.Barrier(ctx)
			total.Add(1)
			c.Barrier(ctx)
		})
	}
	if total.Load() != 10 {
		t.Fatalf("runs executed %d node-functions, want 10", total.Load())
	}
}

func TestRuntimeAttachPerArray(t *testing.T) {
	c := New(Config{Nodes: 1})
	defer c.Close()
	rt := c.Node(0).Runtime(0)
	done := make(chan struct{})
	rt.Submit(func(rt *Runtime) {
		rt.Attach[1] = "first"
		rt.Attach[2] = "second"
		close(done)
	})
	<-done
	check := make(chan bool, 1)
	rt.Submit(func(rt *Runtime) {
		check <- rt.Attach[1] == "first" && rt.Attach[2] == "second"
	})
	if !<-check {
		t.Fatal("Attach state not preserved across submissions")
	}
}

func TestRuntimeIndexAndNode(t *testing.T) {
	c := New(Config{Nodes: 2, RuntimeThreads: 3})
	defer c.Close()
	n := c.Node(1)
	if n.Runtimes() != 3 {
		t.Fatalf("Runtimes = %d, want 3", n.Runtimes())
	}
	for i := 0; i < 3; i++ {
		rt := n.Runtime(i)
		if rt.Index() != i || rt.Node() != n {
			t.Fatalf("runtime %d misreports identity", i)
		}
	}
	if n.Cluster() != c || n.ID() != 1 {
		t.Fatal("node identity wrong")
	}
}

func TestStallManyContinuations(t *testing.T) {
	c := New(Config{Nodes: 1})
	defer c.Close()
	rt := c.Node(0).Runtime(0)
	const n = 50
	var fired atomic.Int32
	var gate atomic.Bool
	for i := 0; i < n; i++ {
		rt.Submit(func(rt *Runtime) {
			rt.Stall(func(*Runtime) bool {
				if !gate.Load() {
					return false
				}
				fired.Add(1)
				return true
			})
		})
	}
	// Interleaved work proceeds while n continuations are stalled.
	ok := make(chan struct{})
	rt.Submit(func(*Runtime) { close(ok) })
	<-ok
	gate.Store(true)
	deadline := make(chan struct{})
	rt.Submit(func(rt *Runtime) {
		rt.Stall(func(*Runtime) bool {
			if fired.Load() == n {
				close(deadline)
				return true
			}
			return false
		})
	})
	<-deadline
}

func TestBarrierNilCtx(t *testing.T) {
	c := New(Config{Nodes: 2})
	defer c.Close()
	c.Run(func(n *Node) {
		c.Barrier(nil) // must not panic without a clock
	})
}

func TestStringer(t *testing.T) {
	c := New(Config{Nodes: 2})
	defer c.Close()
	if s := c.String(); s == "" {
		t.Fatal("empty String()")
	}
}
