package bench

import (
	"sort"

	"darray/internal/cluster"
	"darray/internal/core"
	"darray/internal/fault"
	"darray/internal/stats"
)

// Multi-stream contention experiment: the congestion-control headline.
// N application threads on one node each stream a disjoint slice of the
// peer node's partition through GetRange, so every stream's pipeline
// crosses the same link at once. The streams are deliberately
// heterogeneous — even threads are bulk streams issuing deep 16-chunk
// slabs, odd threads are interactive streams issuing shallow 2-chunk
// slabs — because that is where static windows fail: every bulk stream
// keeps its full configured depth outstanding, the shared wire builds a
// standing queue, and the shallow streams' few outstanding chunks drown
// behind it (bufferbloat). The adaptive controller sees the inflating
// round trips and shrinks the bulk windows until queueing subsides, so
// shallow slabs stop paying for depth they never posted.
//
// Observables, all in virtual time: per-chunk-normalized slab latency
// (mean and p99, pooled across streams), Jain's fairness index over
// per-stream delivery rates, aggregate throughput, and — under a seeded
// loss plan — the fabric's go-back-N retransmission count. Fairness and
// latency are evaluated over the common contention window [start, T*]
// where T* is the first stream's completion, so every sample was taken
// while all N streams were still competing.

// contentionResult is one (streams, mode) contention measurement.
type contentionResult struct {
	streams int
	meanNs  float64 // mean per-chunk slab latency inside the contention window
	p99Ns   float64 // p99 per-chunk slab latency inside the contention window
	jain    float64 // Jain's fairness index over per-stream delivery rates
	mwords  float64 // aggregate Mwords/s over the contention window
	retrans int64   // fabric go-back-N retransmissions (faulted runs)
}

// Slab granularities. Bulk slabs are larger than the default pipeline
// depth, so the window (fixed or adaptive) is what actually limits a
// bulk stream's outstanding fetches; interactive slabs are latency
// bound and never fill a window.
const (
	contBulkChunks        = 16
	contInteractiveChunks = 2
)

// slabRec is one completed slab: when it finished and what it carried.
type slabRec struct {
	endVT  int64
	chunks int64
	ns     int64 // slab duration
}

// runContention measures `streams` concurrent remote GetRange streams
// between two nodes. noCC pins the fixed-depth knobs; faulted runs the
// same traffic over a seeded 2% loss + 1% duplication plan and reports
// the retransmission bill.
func runContention(p Params, streams int, noCC, faulted bool) contentionResult {
	const nodes = 2
	const chunkWords = 512  // cluster default chunk geometry
	sWords := p.WordsPerNode // per-stream volume, constant across N
	words := int64(nodes) * int64(streams) * sWords
	var plan *fault.Plan
	if faulted {
		plan = fault.New(fault.Config{Seed: 42, Nodes: nodes, DropProb: 0.02, DupProb: 0.01})
	}
	c := cluster.New(cluster.Config{
		Nodes:           nodes,
		Model:           p.Model,
		CacheChunks:     256,
		Telemetry:       p.Telemetry,
		MsgKindName:     core.KindName,
		Faults:          plan,
		TxBurst:         p.TxBurst,
		PipelineDepth:   p.PipelineDepth,
		PrefetchAhead:   p.PrefetchAhead,
		DisableCoalesce: p.DisableCoalesce,
		NoPool:          p.NoPool,
		NoCC:            noCC,
	})
	defer c.Close()

	recs := make([][]slabRec, streams)
	starts := make([]int64, streams)
	c.Run(func(n *cluster.Node) {
		a := core.New(n, words)
		ctx0 := n.NewCtx(0)
		c.Barrier(ctx0)
		if n.ID() == 1 {
			n.RunThreads(streams, func(ctx *cluster.Ctx) {
				// Stream TID owns slice TID of node 0's partition: all
				// streams contend for the same 0<->1 link and home runtimes.
				lo := int64(ctx.TID) * sWords
				slabWords := int64(contBulkChunks * chunkWords)
				if ctx.TID%2 == 1 {
					slabWords = contInteractiveChunks * chunkWords
				}
				if slabWords > sWords {
					slabWords = sWords
				}
				buf := make([]uint64, slabWords)
				log := make([]slabRec, 0, sWords/slabWords)
				starts[ctx.TID] = ctx.Clock.Now()
				for off := int64(0); off+slabWords <= sWords; off += slabWords {
					t0 := ctx.Clock.Now()
					a.GetRange(ctx, lo+off, buf)
					end := ctx.Clock.Now()
					log = append(log, slabRec{endVT: end, chunks: slabWords / chunkWords, ns: end - t0})
				}
				recs[ctx.TID] = log
			})
		}
		c.Barrier(ctx0)
	})

	// T*: the first completion — until then every stream was competing.
	tStar := int64(1) << 62
	minStart := int64(1) << 62
	for s, log := range recs {
		if n := len(log); n > 0 && log[n-1].endVT < tStar {
			tStar = log[n-1].endVT
		}
		if len(log) > 0 && starts[s] < minStart {
			minStart = starts[s]
		}
	}
	// Latency samples skip a quarter-window warmup: slow start (and the
	// fixed mode's initial burst pile-up) is a startup transient, and the
	// experiment compares steady-state contention behaviour. Rates and
	// throughput still cover the whole window.
	warmVT := minStart + (tStar-minStart)/4
	r := contentionResult{streams: streams}
	var all []float64
	var rates []float64
	var sumChunks int64
	for s, log := range recs {
		var chunks int64
		for _, rec := range log {
			if rec.endVT > tStar {
				break // past the contention window
			}
			chunks += rec.chunks
			if rec.endVT > warmVT {
				all = append(all, float64(rec.ns)/float64(rec.chunks))
			}
		}
		if win := tStar - starts[s]; win > 0 && chunks > 0 {
			rates = append(rates, float64(chunks)/float64(win))
		}
		sumChunks += chunks
	}
	sort.Float64s(all)
	if len(all) > 0 {
		var sum float64
		for _, v := range all {
			sum += v
		}
		r.meanNs = sum / float64(len(all))
		r.p99Ns = all[len(all)*99/100]
	}
	r.jain = jainIndex(rates)
	r.mwords = stats.Throughput(sumChunks*chunkWords, tStar-minStart) / 1e6
	if plan != nil {
		r.retrans = plan.Stats().Retransmits
	}
	return r
}

// jainIndex returns Jain's fairness index (sum x)^2 / (n * sum x^2):
// 1.0 when every stream got an equal share, 1/n when one stream got
// everything.
func jainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// contStreams is the stream-count sweep, clipped to keep tiny CI
// configs meaningful (each stream still needs a few slabs).
var contStreams = []int{1, 2, 4, 8}

// Contention is the multi-stream contention experiment: adaptive
// congestion windows vs the fixed-depth knobs as concurrent bulk
// streams share one link, plus the retransmission bill under a seeded
// loss plan.
func Contention(p Params) []stats.Table {
	p99 := stats.Table{
		Title:  "Contention: p99 per-slab GetRange latency (virtual ns) vs concurrent streams",
		XLabel: "streams",
		YFmt:   "%.0f",
	}
	fair := stats.Table{
		Title:  "Contention: Jain's fairness index over per-stream throughput",
		XLabel: "streams",
		YFmt:   "%.4f",
	}
	tput := stats.Table{
		Title:  "Contention: aggregate throughput (Mwords/s, virtual) vs concurrent streams",
		XLabel: "streams",
		YFmt:   "%.2f",
	}
	var aP99, fP99, aJain, fJain, aTput, fTput []float64
	for _, n := range contStreams {
		adaptive := runContention(p, n, false, false)
		fixed := runContention(p, n, true, false)
		p99.Xs = append(p99.Xs, itoa(n))
		fair.Xs = append(fair.Xs, itoa(n))
		tput.Xs = append(tput.Xs, itoa(n))
		aP99 = append(aP99, adaptive.p99Ns)
		fP99 = append(fP99, fixed.p99Ns)
		aJain = append(aJain, adaptive.jain)
		fJain = append(fJain, fixed.jain)
		aTput = append(aTput, adaptive.mwords)
		fTput = append(fTput, fixed.mwords)
	}
	p99.Series = []stats.Series{{Label: "adaptive", Ys: aP99}, {Label: "fixed", Ys: fP99}}
	fair.Series = []stats.Series{{Label: "adaptive", Ys: aJain}, {Label: "fixed", Ys: fJain}}
	tput.Series = []stats.Series{{Label: "adaptive", Ys: aTput}, {Label: "fixed", Ys: fTput}}

	aLoss := runContention(p, 4, false, true)
	fLoss := runContention(p, 4, true, true)
	loss := stats.Table{
		Title:  "Contention under 2% loss: go-back-N retransmissions, 4 streams",
		XLabel: "mode",
		Xs:     []string{"retransmits", "p99-ns"},
		YFmt:   "%.0f",
		Series: []stats.Series{
			{Label: "adaptive", Ys: []float64{float64(aLoss.retrans), aLoss.p99Ns}},
			{Label: "fixed", Ys: []float64{float64(fLoss.retrans), fLoss.p99Ns}},
		},
	}
	return []stats.Table{p99, fair, tput, loss}
}
