package bench

import (
	"fmt"
	"io"
)

// MicroDiff runs the micro suite twice — with the zero-copy buffer pool
// on (as shipped) and with the NoPool ablation — and prints a
// per-benchmark comparison of virtual ns/op and real allocs/op. The
// ns/op columns should match (the vtime model charges identical costs
// either way); the allocs/op column is the pool's payoff.
func MicroDiff(w io.Writer, p Params) {
	pooled := p
	pooled.NoPool = false
	ablated := p
	ablated.NoPool = true

	a := MicroJSON(pooled)
	b := MicroJSON(ablated)

	byName := make(map[string]MicroResult, len(b.Results))
	for _, r := range b.Results {
		byName[r.Name] = r
	}

	fmt.Fprintf(w, "%-28s %12s %12s %8s %12s %12s %8s\n",
		"benchmark", "ns/op", "ns/op", "Δ%", "allocs/op", "allocs/op", "Δ%")
	fmt.Fprintf(w, "%-28s %12s %12s %8s %12s %12s %8s\n",
		"", "(pooled)", "(no pool)", "", "(pooled)", "(no pool)", "")
	for _, pr := range a.Results {
		nr, ok := byName[pr.Name]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "%-28s %12.2f %12.2f %7.1f%% %12.3f %12.3f %7.1f%%\n",
			pr.Name,
			pr.NsPerOp, nr.NsPerOp, pctDelta(pr.NsPerOp, nr.NsPerOp),
			pr.AllocsPerOp, nr.AllocsPerOp, pctDelta(pr.AllocsPerOp, nr.AllocsPerOp))
	}
}

// pctDelta returns how much `got` deviates from `base`, in percent.
func pctDelta(got, base float64) float64 {
	if base == 0 {
		return 0
	}
	return (got - base) / base * 100
}
