package bench

import (
	"sync"

	"darray/internal/cluster"
	"darray/internal/engine"
	"darray/internal/gemini"
	"darray/internal/graph"
	"darray/internal/stats"
)

// Fig16 reproduces Figure 16: running time of PageRank and Connected
// Components on an R-MAT graph for GAM, DArray, DArray-Pin and Gemini
// with increasing nodes. Paper input is rMat24; Params.GraphScale picks
// a container-friendly scale with the same generator and skew.
func Fig16(p Params) []stats.Table {
	g := graph.RMAT(graph.DefaultRMAT(p.GraphScale))
	nodesXs := nodeSweep(p.MaxNodes)
	apps := []string{"pagerank", "cc"}
	systems := []string{"gam", "darray", "darray-pin", "gemini"}
	var out []stats.Table
	for _, app := range apps {
		tbl := stats.Table{
			Title:  "Figure 16 (" + app + "): running time (ms) vs nodes, rmat" + itoa(p.GraphScale),
			XLabel: "nodes",
			YFmt:   "%.2f",
		}
		for _, n := range nodesXs {
			tbl.Xs = append(tbl.Xs, itoa(n))
		}
		for _, sys := range systems {
			var ys []float64
			for _, n := range nodesXs {
				ys = append(ys, runGraphApp(p, g, sys, app, n)/1e6)
			}
			tbl.Series = append(tbl.Series, stats.Series{Label: sys, Ys: ys})
		}
		out = append(out, tbl)
	}
	return out
}

// runGraphApp returns the virtual running time (ns) of one application
// on one system configuration: the max finishing time across nodes.
func runGraphApp(p Params, g *graph.CSR, system, app string, nodes int) float64 {
	c := p.cluster(nodes)
	defer c.Close()
	var mu sync.Mutex
	var maxVT int64
	c.Run(func(n *cluster.Node) {
		ctx := n.NewCtx(0)
		switch system {
		case "gam":
			eg := engine.NewGamGraph(n, g)
			switch app {
			case "pagerank":
				eg.PageRank(ctx, p.PRIters)
			case "cc":
				eg.ConnectedComponents(ctx)
			}
		case "darray", "darray-pin":
			eg := engine.NewGraph(n, g)
			pin := system == "darray-pin"
			switch app {
			case "pagerank":
				eg.PageRank(ctx, p.PRIters, pin)
			case "cc":
				eg.ConnectedComponents(ctx, pin)
			}
		case "gemini":
			e := gemini.New(n, g)
			switch app {
			case "pagerank":
				e.PageRank(ctx, p.PRIters)
			case "cc":
				e.ConnectedComponents(ctx)
			}
		}
		mu.Lock()
		if ctx.Clock.Now() > maxVT {
			maxVT = ctx.Clock.Now()
		}
		mu.Unlock()
	})
	return float64(maxVT)
}

var _ = cluster.Config{} // keep the import stable across edits
