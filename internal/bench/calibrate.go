// Package bench is the experiment harness: one runner per table/figure
// of the paper's evaluation (§6), each printing the same rows/series the
// paper reports. Workloads execute on the real implementation; timing
// comes from the virtual-time model (see internal/vtime and DESIGN.md),
// whose CPU path costs Calibrate measures from this very code base.
package bench

import (
	"time"

	"darray/internal/bcl"
	"darray/internal/cluster"
	"darray/internal/core"
	"darray/internal/gam"
	"darray/internal/graph"
	"darray/internal/vtime"
)

// Calibrate fills the model's CPU path costs by timing the real fast
// paths single-threaded on the host. Network and memory constants stay
// at their testbed defaults.
func Calibrate(m *vtime.Model) {
	const n = 1 << 15 // one node, all accesses local and resident
	c := cluster.New(cluster.Config{Nodes: 1, CacheChunks: 256})
	defer c.Close()
	c.Run(func(node *cluster.Node) {
		ctx := node.NewCtx(0)
		arr := core.New(node, n)
		add := arr.RegisterOp(core.OpAddU64)
		g := gam.New(node, n)
		b := bcl.New(node, n)

		native := make([]uint64, n)
		var sink uint64
		m.NativeAccess = measure(func(i int64) { sink += native[i&(n-1)] })
		// Gemini's per-edge work: partition-owner lookup plus a combine
		// into a dense per-partition buffer (the real push inner loop).
		// The buffer is sized beyond the last-level caches because at the
		// paper's scale (rMat24) Gemini's per-partition vertex buffers are
		// DRAM-resident, and the random per-edge write pays that latency.
		const gn = int64(1) << 20
		bounds := make([]int64, 9)
		for v := int64(0); v <= 8; v++ {
			bounds[v] = v * gn / 8
		}
		bufs := make([][]uint64, 8)
		for v := range bufs {
			bufs[v] = make([]uint64, gn/8)
		}
		m.GeminiEdge = measure(func(i int64) {
			dst := (i * 2654435761) & (gn - 1) // scramble like a real edge list
			p := graph.OwnerOf(bounds, dst)
			bufs[p][dst-bounds[p]] += 1
		})
		m.GetHit = measure(func(i int64) { sink += arr.Get(ctx, i&(n-1)) })
		m.SetHit = measure(func(i int64) { arr.Set(ctx, i&(n-1), uint64(i)) })
		m.ApplyHit = measure(func(i int64) { arr.Apply(ctx, add, i&(n-1), 1) })
		p := arr.PinRead(ctx, 0)
		lim := p.Limit()
		m.PinAccess = measure(func(i int64) { sink += p.Get(ctx, i%lim) })
		p.Unpin(ctx)
		m.GamAccess = measure(func(i int64) { sink += g.Get(ctx, i&(n-1)) })
		if m.GamAccess > m.GetHit {
			m.GamAccess -= m.GetHit // gam charges on top of the inner hit
		}
		m.BclLocal = measure(func(i int64) { sink += b.Get(ctx, i&(n-1)) })
		m.SlowFixed = 4 * m.GetHit // enqueue + wake + retry bookkeeping
		_ = sink
	})
	clampMin(&m.NativeAccess, 1)
	clampMin(&m.GeminiEdge, 2)
	clampMin(&m.GetHit, 2)
	clampMin(&m.SetHit, 2)
	clampMin(&m.ApplyHit, 3)
	clampMin(&m.PinAccess, 1)
	clampMin(&m.GamAccess, 10)
	clampMin(&m.BclLocal, 2)
	clampMin(&m.SlowFixed, 50)
}

func clampMin(v *int64, min int64) {
	if *v < min {
		*v = min
	}
}

// measure times fn per call over enough iterations to smooth noise.
func measure(fn func(i int64)) int64 {
	const warm, iters = 2000, 60000
	for i := int64(0); i < warm; i++ {
		fn(i)
	}
	start := time.Now()
	for i := int64(0); i < iters; i++ {
		fn(i)
	}
	ns := time.Since(start).Nanoseconds() / iters
	if ns < 1 {
		ns = 1
	}
	return ns
}

// DefaultModel returns a calibrated paper-testbed model.
func DefaultModel() *vtime.Model {
	m := vtime.Default()
	Calibrate(m)
	return m
}
