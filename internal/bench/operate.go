package bench

import (
	"sync"

	"darray/internal/cluster"
	"darray/internal/core"
	"darray/internal/stats"
	"darray/internal/ycsb"
)

// Fig14 reproduces Figure 14: zipfian(0.99) write_add over a global
// array, comparing the Operate interface against the equivalent
// WLock+Read+Write composition — the experiment that shows why the
// Operated state's non-exclusive combining matters under contention.
func Fig14(p Params) []stats.Table {
	nodesXs := nodeSweep(p.MaxNodes)
	tput := stats.Table{
		Title:  "Figure 14a: zipfian write_add throughput (Mops/s) vs nodes",
		XLabel: "nodes",
	}
	lat := stats.Table{
		Title:  "Figure 14b: zipfian write_add mean latency (ns) vs nodes",
		XLabel: "nodes",
		YFmt:   "%.0f",
	}
	tail := stats.Table{
		Title:  "Figure 14b': zipfian write_add p99 latency (ns) vs nodes",
		XLabel: "nodes",
		YFmt:   "%.0f",
	}
	for _, n := range nodesXs {
		tput.Xs = append(tput.Xs, itoa(n))
		lat.Xs = append(lat.Xs, itoa(n))
		tail.Xs = append(tail.Xs, itoa(n))
	}
	for _, mode := range []string{"operate", "lock-rw"} {
		var tputYs, latYs, tailYs []float64
		for _, n := range nodesXs {
			r := runZipfAdd(p, mode, n)
			tputYs = append(tputYs, r.tput/1e6)
			latYs = append(latYs, r.mean)
			tailYs = append(tailYs, float64(r.p99))
		}
		tput.Series = append(tput.Series, stats.Series{Label: mode, Ys: tputYs})
		lat.Series = append(lat.Series, stats.Series{Label: mode, Ys: latYs})
		tail.Series = append(tail.Series, stats.Series{Label: mode, Ys: tailYs})
	}
	return []stats.Table{tput, lat, tail}
}

type zipfResult struct {
	tput float64
	mean float64
	p99  int64
}

// runZipfAdd measures zipfian adds with one thread per node: total
// throughput, mean per-op latency, and the p99 of sampled per-op
// latencies.
func runZipfAdd(p Params, mode string, nodes int) zipfResult {
	c := p.cluster(nodes)
	defer c.Close()
	words := p.WordsPerNode * int64(nodes)
	var mu sync.Mutex
	var totalOps int64
	var maxEnd, minStart int64
	var latSum float64
	var hist stats.Histogram
	minStart = 1 << 62

	c.Run(func(n *cluster.Node) {
		arr := core.New(n, words)
		add := arr.RegisterOp(core.OpAddU64)
		ctx := n.NewCtx(0)
		z := ycsb.NewZipfian(words, 0.99, int64(1000+n.ID()))
		var samples []int64
		c.Barrier(ctx)
		start := ctx.Clock.Now()
		for k := 0; k < p.ZipfOps; k++ {
			i := z.Next()
			opStart := ctx.Clock.Now()
			switch mode {
			case "operate":
				arr.Apply(ctx, add, i, 1)
			case "lock-rw":
				arr.WLock(ctx, i)
				arr.Set(ctx, i, arr.Get(ctx, i)+1)
				arr.Unlock(ctx, i)
			}
			if k%8 == 0 {
				samples = append(samples, ctx.Clock.Now()-opStart)
			}
		}
		end := ctx.Clock.Now()
		mu.Lock()
		totalOps += int64(p.ZipfOps)
		if end > maxEnd {
			maxEnd = end
		}
		if start < minStart {
			minStart = start
		}
		latSum += float64(end-start) / float64(p.ZipfOps)
		hist.AddAll(samples)
		mu.Unlock()
		c.Barrier(ctx)
	})
	return zipfResult{
		tput: stats.Throughput(totalOps, maxEnd-minStart),
		mean: latSum / float64(nodes),
		p99:  hist.Percentile(99),
	}
}
