package bench

import "testing"

// TestContentionCrossover gates the congestion-control headline: with
// heterogeneous streams sharing one link, adaptive windows must beat
// the fixed pipeline knobs on tail latency and fairness, and a lone
// stream must not pay for the machinery.
//
// The p99 gate runs at 8 streams (stable across scheduler interleavings
// at this scale); 4 streams is additionally gated on mean latency and
// fairness, whose contrast is scheduler-robust, because its p99 sits on
// a handful of tail slabs that flip between runs.
func TestContentionCrossover(t *testing.T) {
	if raceEnabled {
		t.Skip("statistical latency shape is perturbed under the race detector")
	}
	p := tinyParams()
	p.WordsPerNode = 1 << 18 // 32 bulk slabs per stream: steady state dominates

	// Lone stream: adaptive throughput within 5% of the fixed knobs.
	a1 := runContention(p, 1, false, false)
	f1 := runContention(p, 1, true, false)
	if a1.mwords < 0.95*f1.mwords {
		t.Errorf("single-stream: adaptive %.2f Mwords/s < 95%% of fixed %.2f", a1.mwords, f1.mwords)
	}

	// 4 streams: adaptive must be fairer and faster on mean latency.
	a4 := runContention(p, 4, false, false)
	f4 := runContention(p, 4, true, false)
	if a4.jain <= f4.jain {
		t.Errorf("4 streams: adaptive fairness %.4f <= fixed %.4f", a4.jain, f4.jain)
	}
	if a4.meanNs >= f4.meanNs {
		t.Errorf("4 streams: adaptive mean %.0fns >= fixed %.0fns", a4.meanNs, f4.meanNs)
	}

	// 8 streams: the headline — >=1.3x better p99 and higher fairness.
	a8 := runContention(p, 8, false, false)
	f8 := runContention(p, 8, true, false)
	if f8.p99Ns < 1.3*a8.p99Ns {
		t.Errorf("8 streams: fixed p99 %.0fns < 1.3x adaptive %.0fns (ratio %.2f)",
			f8.p99Ns, a8.p99Ns, f8.p99Ns/a8.p99Ns)
	}
	if a8.jain <= f8.jain {
		t.Errorf("8 streams: adaptive fairness %.4f <= fixed %.4f", a8.jain, f8.jain)
	}

	// Under a seeded loss plan both modes retransmit (the plan's drops
	// are fault-driven, not congestion-driven): the bill must be within
	// 2x of each other, and adaptive must not blow up the tail.
	al := runContention(p, 4, false, true)
	fl := runContention(p, 4, true, true)
	if al.retrans == 0 || fl.retrans == 0 {
		t.Errorf("faulted runs retransmitted nothing: adaptive=%d fixed=%d", al.retrans, fl.retrans)
	}
	if al.p99Ns > 2*fl.p99Ns {
		t.Errorf("faulted: adaptive p99 %.0fns > 2x fixed %.0fns", al.p99Ns, fl.p99Ns)
	}
}
