package bench

import (
	"math/rand"
	"strconv"
	"sync"

	"darray/internal/cluster"
	"darray/internal/core"
	"darray/internal/stats"
	"darray/internal/ycsb"
)

func ftoa(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// Hotspot measures the function-shipping crossover (DESIGN.md "Function
// shipping"): a read-modify-write-heavy hot-key workload swept over
// Zipfian skew θ, run under each shipping mode. At θ=0 (uniform) cached
// combining is optimal and auto must match off; at θ≥0.99 nearly all
// traffic lands on a handful of chunks whose Operated state collapses
// on every interleaved read, and the shipped path's header-sized
// round trips win — the estimator should find that crossover on its
// own.

// hotThetas is the skew sweep (0 = uniform, 0.99 = YCSB default).
var hotThetas = []float64{0, 0.9, 0.99, 1.2}

// hotShipModes are the compared execution modes.
var hotShipModes = []string{"auto", "on", "off"}

const (
	// hotWords is the hotspot keyspace: deliberately small (32 chunks) so
	// skewed traffic concentrates — a hotspot benchmark, not a scan.
	hotWords = 1 << 14
	// hotRMWFrac makes the mix RMW-heavy (YCSB-F flavoured): 80%
	// read-modify-writes (read the key, combine into it) with 20% plain
	// reads. The RMW's read is what makes this the shipping crossover:
	// under cached combining every hot-key read collapses the Operated
	// state — op-recall fan-out, chunk-sized combine-buffer flushes,
	// re-grants — while the shipped path pays one header-sized round
	// trip for the add.
	hotRMWFrac = 0.8
)

// Hotspot reproduces the crossover table: throughput per (θ, ship mode)
// plus the auto and on speedups over off.
func Hotspot(p Params) []stats.Table {
	// The crossover widens with the collapse fan-out, so run at the full
	// node count: every extra node is another combiner to op-recall and
	// another chunk-sized flush per cached-mode read.
	nodes := min(6, p.MaxNodes)
	tput := stats.Table{
		Title:  "Hotspot: RMW-heavy zipfian add+read throughput (Mops/s) vs skew θ",
		XLabel: "theta",
		YFmt:   "%.3f",
	}
	speed := stats.Table{
		Title:  "Hotspot: shipping speedup over ship=off vs skew θ",
		XLabel: "theta",
		YFmt:   "%.2f",
	}
	for _, th := range hotThetas {
		tput.Xs = append(tput.Xs, ftoa(th))
		speed.Xs = append(speed.Xs, ftoa(th))
	}
	res := map[string][]float64{}
	for _, mode := range hotShipModes {
		var ys []float64
		for _, th := range hotThetas {
			r := runHotspot(p, mode, th, nodes)
			ys = append(ys, r.tput/1e6)
		}
		res[mode] = ys
		tput.Series = append(tput.Series, stats.Series{Label: "ship=" + mode, Ys: ys})
	}
	for _, mode := range []string{"auto", "on"} {
		var ys []float64
		for i := range hotThetas {
			ys = append(ys, res[mode][i]/res["off"][i])
		}
		speed.Series = append(speed.Series, stats.Series{Label: mode + "/off", Ys: ys})
	}
	return []stats.Table{tput, speed}
}

type hotspotResult struct {
	tput float64 // virtual-time ops/s
	ops  int64
}

// runHotspot runs the hot-key mix with one thread per node under the
// given shipping mode and Zipfian skew, and returns the virtual-time
// throughput.
func runHotspot(p Params, ship string, theta float64, nodes int) hotspotResult {
	q := p
	q.Ship = ship
	c := q.cluster(nodes)
	defer c.Close()
	ops := p.HotOps
	if ops == 0 {
		ops = p.ZipfOps
	}
	var mu sync.Mutex
	var totalOps int64
	var maxEnd, minStart int64
	minStart = 1 << 62

	c.Run(func(n *cluster.Node) {
		arr := core.New(n, hotWords)
		add := arr.RegisterOp(core.OpAddU64)
		ctx := n.NewCtx(0)
		z := ycsb.NewZipfian(hotWords, theta, int64(1000+n.ID()))
		rng := rand.New(rand.NewSource(int64(2000 + n.ID())))
		c.Barrier(ctx)
		start := ctx.Clock.Now()
		for k := 0; k < ops; k++ {
			i := z.Next()
			if rng.Float64() < hotRMWFrac {
				arr.Get(ctx, i)
				arr.Apply(ctx, add, i, 1)
			} else {
				arr.Get(ctx, i)
			}
		}
		end := ctx.Clock.Now()
		mu.Lock()
		totalOps += int64(ops)
		if end > maxEnd {
			maxEnd = end
		}
		if start < minStart {
			minStart = start
		}
		mu.Unlock()
		c.Barrier(ctx)
	})
	return hotspotResult{
		tput: stats.Throughput(totalOps, maxEnd-minStart),
		ops:  totalOps,
	}
}
