package bench

import (
	"strings"
	"testing"

	"darray/internal/vtime"
)

// tinyParams keeps every experiment runnable in CI time.
func tinyParams() Params {
	m := vtime.Default()
	// Skip host calibration in tests: fixed plausible CPU costs.
	m.NativeAccess, m.GetHit, m.SetHit, m.ApplyHit = 2, 20, 25, 30
	m.PinAccess, m.GamAccess, m.BclLocal, m.SlowFixed = 5, 40, 6, 100
	m.GeminiEdge = 15
	p := DefaultParams(m)
	p.WordsPerNode = 4096
	p.MaxNodes = 2
	p.Threads = []int{1, 2}
	p.GraphScale = 8
	p.PRIters = 2
	p.KVRecords = 256
	p.KVOps = 50
	p.ZipfOps = 300
	p.RandomOps = 300
	return p
}

// TestEveryExperimentRuns executes the full registry at tiny scale and
// sanity-checks the emitted tables.
func TestEveryExperimentRuns(t *testing.T) {
	p := tinyParams()
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(p)
			if len(tables) == 0 {
				t.Fatal("experiment produced no tables")
			}
			for _, tbl := range tables {
				out := tbl.Render()
				if !strings.Contains(out, tbl.Title) {
					t.Errorf("render missing title %q", tbl.Title)
				}
				if len(tbl.Series) == 0 || len(tbl.Xs) == 0 {
					t.Errorf("table %q is empty", tbl.Title)
				}
				for _, s := range tbl.Series {
					for _, y := range s.Ys {
						if y < 0 {
							t.Errorf("table %q series %q has negative value %v",
								tbl.Title, s.Label, y)
						}
					}
				}
			}
		})
	}
}

// TestFigureShapes asserts the headline qualitative claims survive even
// at tiny scale: the reproduction's regression guard.
func TestFigureShapes(t *testing.T) {
	p := tinyParams()

	t.Run("fig1-darray-beats-gam", func(t *testing.T) {
		tbl := Fig1(p)[0]
		vals := map[string][]float64{}
		for _, s := range tbl.Series {
			vals[s.Label] = s.Ys
		}
		// Distributed: BCL worst by far; DArray below GAM; pin below DArray.
		if vals["bcl"][1] < 2*vals["gam"][1] {
			t.Errorf("BCL (%v) should dwarf GAM (%v) distributed", vals["bcl"][1], vals["gam"][1])
		}
		if vals["darray"][1] >= vals["gam"][1] {
			t.Errorf("DArray (%v) should beat GAM (%v)", vals["darray"][1], vals["gam"][1])
		}
		if vals["darray-pin"][1] >= vals["darray"][1] {
			t.Errorf("pin (%v) should beat plain (%v)", vals["darray-pin"][1], vals["darray"][1])
		}
	})

	t.Run("fig14-operate-beats-locks", func(t *testing.T) {
		tbls := Fig14(p)
		tput := tbls[0]
		var op, lk []float64
		for _, s := range tput.Series {
			if s.Label == "operate" {
				op = s.Ys
			} else {
				lk = s.Ys
			}
		}
		last := len(op) - 1
		if op[last] <= lk[last] {
			t.Errorf("operate (%v) should outthroughput locks (%v)", op[last], lk[last])
		}
	})

	t.Run("fig15-pin-speedup", func(t *testing.T) {
		tbl := Fig15(p)[0]
		for _, s := range tbl.Series {
			if s.Label == "speedup" {
				for i, v := range s.Ys {
					if v <= 1 {
						t.Errorf("pin speedup at point %d is %v, want > 1", i, v)
					}
				}
			}
		}
	})

	t.Run("fig17-darray-kvs-wins", func(t *testing.T) {
		if raceEnabled {
			t.Skip("statistical shape assertion; unstable under -race scheduling")
		}
		// Larger workload than the smoke test: per-point numbers are
		// noisy at tiny op counts, so compare aggregate throughput.
		pp := p
		pp.KVRecords = 1024
		pp.KVOps = 400
		tbls := Fig17(pp)
		for _, tbl := range tbls {
			var da, ga float64
			for _, s := range tbl.Series {
				for _, y := range s.Ys {
					if s.Label == "darray-kvs" {
						da += y
					} else {
						ga += y
					}
				}
			}
			if da <= ga {
				t.Errorf("%s: aggregate darray-kvs (%v) <= gam-kvs (%v)",
					tbl.Title, da, ga)
			}
		}
	})
}

func TestCalibrateProducesSaneCosts(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration timing loop")
	}
	m := vtime.Default()
	Calibrate(m)
	if m.GetHit <= 0 || m.GamAccess <= 0 || m.PinAccess <= 0 {
		t.Fatalf("calibration left zero costs: %+v", m)
	}
	if m.PinAccess > m.GetHit {
		t.Errorf("pinned access (%d) should not exceed the plain fast path (%d)",
			m.PinAccess, m.GetHit)
	}
}

func TestFindAndRegistry(t *testing.T) {
	if _, ok := Find("fig13"); !ok {
		t.Fatal("fig13 missing from registry")
	}
	if _, ok := Find("nope"); ok {
		t.Fatal("bogus id found")
	}
	ids := map[string]bool{}
	for _, e := range Experiments() {
		if ids[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		ids[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	for _, want := range []string{"fig1", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "ablation"} {
		if !ids[want] {
			t.Fatalf("registry missing %s", want)
		}
	}
}

func TestRunAndPrint(t *testing.T) {
	var sb strings.Builder
	e, _ := Find("fig15")
	RunAndPrint(&sb, e, tinyParams())
	if !strings.Contains(sb.String(), "Figure 15") {
		t.Fatalf("output missing figure header:\n%s", sb.String())
	}
	PrintModel(&sb, tinyParams())
	if !strings.Contains(sb.String(), "cost model") {
		t.Fatal("PrintModel output missing")
	}
	PrintModel(&sb, Params{})
	if !strings.Contains(sb.String(), "none") {
		t.Fatal("PrintModel nil-model output missing")
	}
}
