package bench

import (
	"fmt"
	"sync"

	"darray/internal/cluster"
	"darray/internal/gamkvs"
	"darray/internal/kvs"
	"darray/internal/stats"
	"darray/internal/ycsb"
)

// Fig17 reproduces Figure 17: YCSB throughput (Kops/s) of the
// DArray-based KVS vs the GAM-based KVS on six nodes, sweeping threads
// per node and the get ratio (zipfian 0.99).
func Fig17(p Params) []stats.Table {
	ratios := []float64{1.0, 0.95, 0.5}
	nodes := min(6, p.MaxNodes)
	var out []stats.Table
	for _, ratio := range ratios {
		tbl := stats.Table{
			Title: fmt.Sprintf("Figure 17 (get ratio %.0f%%): KVS throughput (Kops/s) vs threads, %d nodes",
				ratio*100, nodes),
			XLabel: "threads",
			YFmt:   "%.1f",
		}
		for _, t := range p.Threads {
			tbl.Xs = append(tbl.Xs, itoa(t))
		}
		for _, sys := range []string{"darray-kvs", "gam-kvs"} {
			var ys []float64
			for _, t := range p.Threads {
				ys = append(ys, runKVS(p, sys, nodes, t, ratio)/1e3)
			}
			tbl.Series = append(tbl.Series, stats.Series{Label: sys, Ys: ys})
		}
		out = append(out, tbl)
	}
	return out
}

// runKVS returns total ops/s for one (system, threads, ratio) config.
func runKVS(p Params, system string, nodes, threads int, getRatio float64) float64 {
	c := p.cluster(nodes)
	defer c.Close()
	cfg := kvs.Config{
		Buckets:   p.KVRecords / 8,
		ByteWords: int64(nodes) * p.KVRecords * 64,
	}
	var mu sync.Mutex
	var totalOps int64
	var maxEnd, minStart int64
	minStart = 1 << 62

	c.Run(func(n *cluster.Node) {
		var store *kvs.Store
		switch system {
		case "darray-kvs":
			store = kvs.NewDArray(n, cfg)
		case "gam-kvs":
			store = gamkvs.New(n, cfg)
		}
		root := n.NewCtx(0)
		gen := ycsb.NewGenerator(ycsb.Config{Records: p.KVRecords, Seed: 9})
		// Preload: each node loads its 1/n slice of the key space.
		per := p.KVRecords / int64(c.Nodes())
		lo := int64(n.ID()) * per
		hi := lo + per
		if n.ID() == c.Nodes()-1 {
			hi = p.KVRecords
		}
		for r := lo; r < hi; r++ {
			if err := store.Put(root, ycsb.Key(r), gen.LoadValue(r)); err != nil {
				panic(err)
			}
		}
		c.Barrier(root)
		n.RunThreads(threads, func(ctx *cluster.Ctx) {
			g := ycsb.NewGenerator(ycsb.Config{
				Records:  p.KVRecords,
				GetRatio: getRatio,
				Seed:     int64(n.ID()*1000 + ctx.TID),
			})
			start := ctx.Clock.Now()
			for k := 0; k < p.KVOps; k++ {
				op := g.Next()
				switch op.Kind {
				case ycsb.OpGet:
					if _, err := store.Get(ctx, op.Key); err != nil {
						panic(fmt.Sprintf("kvs bench: get %s: %v", op.Key, err))
					}
				case ycsb.OpPut:
					if err := store.Put(ctx, op.Key, op.Val); err != nil {
						panic(err)
					}
				}
			}
			end := ctx.Clock.Now()
			mu.Lock()
			totalOps += int64(p.KVOps)
			if end > maxEnd {
				maxEnd = end
			}
			if start < minStart {
				minStart = start
			}
			mu.Unlock()
		})
		c.Barrier(root)
	})
	return stats.Throughput(totalOps, maxEnd-minStart)
}

var _ = cluster.Config{}
