package bench

import (
	"testing"
)

// streamParams sizes the streaming workload so each node's range spans
// 32 remote chunks — enough in-flight work for the pipeline to matter,
// small enough for CI.
func streamParams() Params {
	p := tinyParams()
	p.WordsPerNode = 1 << 14
	p.MaxNodes = 3
	return p
}

// TestStreamPipelineSpeedup is the acceptance gate for the transfer
// pipeline: cross-node GetRange with the pipeline, doorbell batching,
// and coalescing enabled must run at least 2x faster in virtual time
// than the serial all-off baseline (the pre-pipeline behaviour).
func TestStreamPipelineSpeedup(t *testing.T) {
	p := streamParams()
	base := runStream(p, 2, baselineStream(false))
	full := runStream(p, 2, streamConfig{pipeline: 0, txBurst: 0, coalesce: true, prefetch: 0})
	if base.words != full.words || base.words == 0 {
		t.Fatalf("word counts differ: base=%d full=%d", base.words, full.words)
	}
	speed := base.nsPerOp() / full.nsPerOp()
	t.Logf("GetRange: serial %.1f ns/word, pipelined %.1f ns/word, speedup %.2fx (virtual)",
		base.nsPerOp(), full.nsPerOp(), speed)
	if speed < 2 {
		t.Errorf("pipelined GetRange speedup %.2fx, want >= 2x", speed)
	}
}

// TestStreamBaselineMatchesSerial verifies the ablation claim: with the
// pipeline, batching, coalescing, and prefetch all off, a multi-chunk
// GetRange goes through the identical serial path regardless of how it
// is spelled, so two all-off runs agree in virtual time within noise.
func TestStreamBaselineMatchesSerial(t *testing.T) {
	p := streamParams()
	a := runStream(p, 2, baselineStream(false))
	b := runStream(p, 2, baselineStream(false))
	if a.words != b.words {
		t.Fatalf("word counts differ: %d vs %d", a.words, b.words)
	}
	ra, rb := a.nsPerOp(), b.nsPerOp()
	diff := ra - rb
	if diff < 0 {
		diff = -diff
	}
	t.Logf("all-off runs: %.1f vs %.1f ns/word (virtual)", ra, rb)
	if diff > 0.05*ra {
		t.Errorf("all-off runs differ by more than 5%%: %.1f vs %.1f ns/word", ra, rb)
	}
}

// TestStreamWriteSpeedup checks the pipeline also helps the exclusive
// (SetRange) path, where every chunk needs an ownership transfer.
func TestStreamWriteSpeedup(t *testing.T) {
	p := streamParams()
	base := runStream(p, 2, baselineStream(true))
	full := runStream(p, 2, streamConfig{pipeline: 0, txBurst: 0, coalesce: true, write: true})
	speed := base.nsPerOp() / full.nsPerOp()
	t.Logf("SetRange: serial %.1f ns/word, pipelined %.1f ns/word, speedup %.2fx (virtual)",
		base.nsPerOp(), full.nsPerOp(), speed)
	if speed < 1.5 {
		t.Errorf("pipelined SetRange speedup %.2fx, want >= 1.5x", speed)
	}
}
