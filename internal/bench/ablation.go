package bench

import (
	"sync"

	"darray/internal/cluster"
	"darray/internal/core"
	"darray/internal/stats"
)

// Ablations quantifies the design choices DESIGN.md calls out beyond
// the paper's own figures: prefetch depth, chunk size, selective
// signaling, and runtime-thread count, all on the sequential remote-read
// workload that stresses the cache-fill path.
func Ablations(p Params) []stats.Table {
	return []stats.Table{
		ablateAccessPath(p),
		ablatePrefetch(p),
		ablateChunkSize(p),
		ablateSignaling(p),
		ablateRuntimes(p),
	}
}

// ablateAccessPath isolates §4.1's central design choice: the identical
// workload through DArray's lock-free path versus the GAM baseline's
// lock-based path (same protocol, same fabric, same cache), at one and
// at several threads per node.
func ablateAccessPath(p Params) stats.Table {
	tbl := stats.Table{
		Title:  "Ablation: access path (lock-free vs lock-based), seq read Mops/s, 3 nodes",
		XLabel: "threads",
	}
	threads := []int{1, 4}
	for _, t := range threads {
		tbl.Xs = append(tbl.Xs, itoa(t))
	}
	for _, sys := range []string{"darray", "gam"} {
		var ys []float64
		for _, t := range threads {
			ys = append(ys, runSeq(p, sys, "read", min(3, p.MaxNodes), t).mops())
		}
		label := "lock-free (darray)"
		if sys == "gam" {
			label = "lock-based (gam)"
		}
		tbl.Series = append(tbl.Series, stats.Series{Label: label, Ys: ys})
	}
	return tbl
}

// seqReadWith runs a 3-node sequential DArray read sweep with a custom
// cluster config and reports Mops/s.
func seqReadWith(p Params, mutate func(*cluster.Config)) float64 {
	nodes := min(3, p.MaxNodes)
	words := p.WordsPerNode * int64(nodes)
	chunksPerRT := words / 512 / 4
	if chunksPerRT < 32 {
		chunksPerRT = 32
	}
	cfg := cluster.Config{Nodes: nodes, Model: p.Model, CacheChunks: int(chunksPerRT),
		Telemetry: p.Telemetry, MsgKindName: core.KindName,
		TxBurst: p.TxBurst, PipelineDepth: p.PipelineDepth,
		PrefetchAhead: p.PrefetchAhead, DisableCoalesce: p.DisableCoalesce,
		NoCC: p.NoCC}
	if p.Faults != nil {
		cfg.Faults = p.Faults(nodes)
	}
	mutate(&cfg)
	c := cluster.New(cfg)
	defer c.Close()
	var mu sync.Mutex
	var totalOps, maxEnd, minStart int64
	minStart = 1 << 62
	c.Run(func(n *cluster.Node) {
		arr := core.New(n, words)
		ctx := n.NewCtx(0)
		c.Barrier(ctx)
		lo := int64(n.ID()) * p.WordsPerNode
		start := ctx.Clock.Now()
		for k := int64(0); k < words; k++ {
			i := lo + k
			if i >= words {
				i -= words
			}
			arr.Get(ctx, i)
		}
		end := ctx.Clock.Now()
		mu.Lock()
		totalOps += words
		if end > maxEnd {
			maxEnd = end
		}
		if start < minStart {
			minStart = start
		}
		mu.Unlock()
		c.Barrier(ctx)
	})
	return stats.Throughput(totalOps, maxEnd-minStart) / 1e6
}

func ablatePrefetch(p Params) stats.Table {
	depths := []int{-1, 1, 2, 4, 8} // -1 disables prefetching
	tbl := stats.Table{
		Title:  "Ablation: prefetch depth vs sequential remote-read throughput (Mops/s)",
		XLabel: "depth",
	}
	var ys []float64
	for _, d := range depths {
		label := itoa(d)
		if d < 0 {
			label = "off"
		}
		tbl.Xs = append(tbl.Xs, label)
		d := d
		ys = append(ys, seqReadWith(p, func(cfg *cluster.Config) { cfg.PrefetchAhead = d }))
	}
	tbl.Series = []stats.Series{{Label: "darray", Ys: ys}}
	return tbl
}

func ablateChunkSize(p Params) stats.Table {
	sizes := []int{64, 128, 256, 512, 1024, 2048}
	tbl := stats.Table{
		Title:  "Ablation: chunk size (words) vs sequential remote-read throughput (Mops/s)",
		XLabel: "chunk",
	}
	var ys []float64
	for _, s := range sizes {
		tbl.Xs = append(tbl.Xs, itoa(s))
		s := s
		ys = append(ys, seqReadWith(p, func(cfg *cluster.Config) {
			cfg.ChunkWords = s
			cfg.CacheChunks = int(p.WordsPerNode * 3 / int64(s) / 4)
			if cfg.CacheChunks < 16 {
				cfg.CacheChunks = 16
			}
		}))
	}
	tbl.Series = []stats.Series{{Label: "darray", Ys: ys}}
	return tbl
}

func ablateSignaling(p Params) stats.Table {
	periods := []int64{1, 8, 32, 128}
	tbl := stats.Table{
		Title:  "Ablation: selective-signaling period vs throughput (Mops/s)",
		XLabel: "period",
	}
	var ys []float64
	base := *p.Model
	for _, r := range periods {
		tbl.Xs = append(tbl.Xs, itoa(int(r)))
		m := base
		m.SignalPeriod = r
		pp := p
		pp.Model = &m
		ys = append(ys, seqReadWith(pp, func(cfg *cluster.Config) { cfg.Model = &m }))
	}
	tbl.Series = []stats.Series{{Label: "darray", Ys: ys}}
	return tbl
}

func ablateRuntimes(p Params) stats.Table {
	counts := []int{1, 2, 4}
	tbl := stats.Table{
		Title:  "Ablation: runtime threads per node vs throughput (Mops/s)",
		XLabel: "runtimes",
	}
	var ys []float64
	for _, r := range counts {
		tbl.Xs = append(tbl.Xs, itoa(r))
		r := r
		ys = append(ys, seqReadWith(p, func(cfg *cluster.Config) { cfg.RuntimeThreads = r }))
	}
	tbl.Series = []stats.Series{{Label: "darray", Ys: ys}}
	return tbl
}
