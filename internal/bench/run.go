package bench

import (
	"fmt"
	"io"
	"sort"

	"darray/internal/stats"
	"darray/internal/telemetry"
)

// Experiment is one reproducible table/figure from the paper.
type Experiment struct {
	ID    string
	Title string
	Run   func(p Params) []stats.Table
}

// Experiments returns the registry, sorted by id.
func Experiments() []Experiment {
	exps := []Experiment{
		{"fig1", "8-byte sequential access latency (single vs distributed)", Fig1},
		{"fig12", "Sequential R/W/O throughput vs threads (intra-node scalability)", Fig12},
		{"fig13", "Sequential R/W/O throughput vs nodes (inter-node scalability)", Fig13},
		{"fig14", "Zipfian write_add: Operate vs WLock+Read+Write", Fig14},
		{"fig15", "Sequential read: DArray vs DArray-Pin", Fig15},
		{"fig16", "Graph analytics: PageRank and Connected Components", Fig16},
		{"fig17", "KVS YCSB throughput: DArray-KVS vs GAM-KVS", Fig17},
		{"fig18", "Random access latency (poor locality limitation)", Fig18},
		{"ablation", "Design ablations: prefetch, chunk size, signaling, runtimes", Ablations},
		{"contention", "Multi-stream contention: adaptive congestion windows vs fixed pipeline knobs", Contention},
		{"stream", "Streaming bulk transfers: pipelined ranges, doorbell batching, coalescing", Stream},
		{"hotspot", "Function-shipping crossover: RMW-heavy hot keys, skew × ship mode", Hotspot},
	}
	sort.Slice(exps, func(i, j int) bool { return exps[i].ID < exps[j].ID })
	return exps
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAndPrint executes an experiment and writes its tables to w. When
// p.Telemetry is set, the metric delta attributable to this experiment
// (counters accumulated by its clusters, folded in as they close) is
// appended after the tables.
func RunAndPrint(w io.Writer, e Experiment, p Params) {
	fmt.Fprintf(w, "## %s — %s\n\n", e.ID, e.Title)
	var before telemetry.Snapshot
	if p.Telemetry != nil {
		before = p.Telemetry.Snapshot()
	}
	for _, t := range e.Run(p) {
		fmt.Fprintln(w, t.Render())
	}
	if p.Telemetry != nil {
		delta := p.Telemetry.Snapshot().Delta(before).NonZero()
		if len(delta.Metrics) > 0 {
			fmt.Fprintf(w, "### %s metrics\n\n%s\n", e.ID, delta.Report())
		}
	}
}

// PrintModel dumps the calibrated cost model for the experiment record.
func PrintModel(w io.Writer, p Params) {
	m := p.Model
	if m == nil {
		fmt.Fprintln(w, "model: none (wall-clock only)")
		return
	}
	fmt.Fprintf(w, "cost model (ns): wire=%d rtt8=%d rpc=%d lock=%d | native=%d getHit=%d setHit=%d applyHit=%d pin=%d gam+=%d bclLocal=%d slowFixed=%d\n",
		m.Wire, m.RTT8, m.RPCService, m.LockService,
		m.NativeAccess, m.GetHit, m.SetHit, m.ApplyHit, m.PinAccess,
		m.GamAccess, m.BclLocal, m.SlowFixed)
}
