package bench

import (
	"sync"
	"time"

	"darray/internal/cluster"
	"darray/internal/core"
	"darray/internal/stats"
)

// Streaming microbenchmark: bulk cross-node transfers through
// GetRange/SetRange, the access pattern the pipelined slow path and the
// Tx doorbell batching target. Every node streams the partition homed on
// its successor node into (or out of) a private buffer, so all traffic
// is remote and every range spans many chunks.

// streamResult is one streaming measurement.
type streamResult struct {
	words  int64 // total words moved across all nodes
	durNs  int64 // virtual duration (max end - min start)
	wallNs int64 // host wall-clock duration
}

func (r streamResult) mops() float64 { return stats.Throughput(r.words, r.durNs) / 1e6 }

// nsPerOp returns virtual nanoseconds per transferred word.
func (r streamResult) nsPerOp() float64 {
	if r.words == 0 {
		return 0
	}
	return float64(r.durNs) / float64(r.words)
}

// wallNsPerOp returns host nanoseconds per transferred word.
func (r streamResult) wallNsPerOp() float64 {
	if r.words == 0 {
		return 0
	}
	return float64(r.wallNs) / float64(r.words)
}

// streamConfig selects the machinery under test.
type streamConfig struct {
	pipeline int  // core pipeline depth override (0 = cluster default)
	txBurst  int  // cluster TxBurst (0 = default, -1 = off)
	coalesce bool // destination coalescing
	prefetch int  // PrefetchAhead (0 = default, -1 = off)
	write    bool // SetRange instead of GetRange
}

// baselineStream is the all-off configuration: serial chunk-at-a-time
// ranges, one doorbell per message, no coalescing, no prefetch — the
// pre-pipeline behaviour, kept reachable for apples-to-apples ablations.
func baselineStream(write bool) streamConfig {
	return streamConfig{pipeline: -1, txBurst: -1, coalesce: false, prefetch: -1, write: write}
}

// runStream executes the streaming workload on `nodes` nodes: node v
// moves the whole partition of node (v+1) mod nodes with one ranged
// call per slab of slabChunks chunks.
func runStream(p Params, nodes int, sc streamConfig) streamResult {
	words := p.WordsPerNode * int64(nodes)
	chunks := words / 512
	perRT := chunks / 2 // cache a full remote partition comfortably
	if perRT < 32 {
		perRT = 32
	}
	cfg := cluster.Config{
		Nodes:         nodes,
		Model:         p.Model,
		CacheChunks:   int(perRT),
		Telemetry:     p.Telemetry,
		MsgKindName:   core.KindName,
		TxBurst:       sc.txBurst,
		PrefetchAhead: sc.prefetch,
		PipelineDepth: sc.pipeline,
		NoPool:        p.NoPool,
		NoCC:          p.NoCC,
	}
	cfg.DisableCoalesce = !sc.coalesce
	if p.Faults != nil {
		cfg.Faults = p.Faults(nodes)
	}
	c := cluster.New(cfg)
	defer c.Close()

	var mu sync.Mutex
	var total, maxEnd, minStart int64
	minStart = 1 << 62
	wallStart := time.Now()
	c.Run(func(n *cluster.Node) {
		arr := core.New(n, words)
		ctx := n.NewCtx(0)
		c.Barrier(ctx)
		// Stream the successor's partition: all-remote, chunk-spanning.
		peer := (n.ID() + 1) % nodes
		lo := int64(peer) * p.WordsPerNode
		buf := make([]uint64, p.WordsPerNode)
		if sc.write {
			for i := range buf {
				buf[i] = uint64(n.ID())<<32 | uint64(i)
			}
		}
		start := ctx.Clock.Now()
		if sc.write {
			arr.SetRange(ctx, lo, buf)
		} else {
			arr.GetRange(ctx, lo, buf)
		}
		end := ctx.Clock.Now()
		mu.Lock()
		total += p.WordsPerNode
		if end > maxEnd {
			maxEnd = end
		}
		if start < minStart {
			minStart = start
		}
		mu.Unlock()
		c.Barrier(ctx)
	})
	return streamResult{words: total, durNs: maxEnd - minStart, wallNs: int64(time.Since(wallStart))}
}

// Stream is the streaming-transfer experiment: cross-node GetRange and
// SetRange throughput with the transfer pipeline, doorbell batching, and
// destination coalescing individually toggled, plus a pipeline-depth
// sweep. The "all-off" row reproduces the serial pre-pipeline behaviour.
func Stream(p Params) []stats.Table {
	nodes := min(3, p.MaxNodes)
	configs := []struct {
		label string
		sc    streamConfig
	}{
		{"all-off (serial)", baselineStream(false)},
		{"pipeline-only", streamConfig{pipeline: 0, txBurst: -1, coalesce: false, prefetch: -1}},
		{"batching-only", streamConfig{pipeline: -1, txBurst: 0, coalesce: true, prefetch: -1}},
		{"all-on", streamConfig{pipeline: 0, txBurst: 0, coalesce: true, prefetch: 0}},
	}
	tbl := stats.Table{
		Title:  "Streaming: cross-node GetRange, " + itoa(nodes) + " nodes (virtual time)",
		XLabel: "metric",
		Xs:     []string{"Mwords/s", "ns/word", "wall ns/word"},
		YFmt:   "%.2f",
	}
	var base, full streamResult
	for i, cfgRow := range configs {
		r := runStream(p, nodes, cfgRow.sc)
		if i == 0 {
			base = r
		}
		if cfgRow.label == "all-on" {
			full = r
		}
		tbl.Series = append(tbl.Series, stats.Series{
			Label: cfgRow.label,
			Ys:    []float64{r.mops(), r.nsPerOp(), r.wallNsPerOp()},
		})
	}
	speed := stats.Table{
		Title:  "Streaming: speedup of all-on over all-off (serial baseline)",
		XLabel: "metric",
		Xs:     []string{"virtual-time", "wall-clock"},
		YFmt:   "%.2f",
		Series: []stats.Series{{
			Label: "speedup",
			Ys: []float64{
				stats.Speedup(full.mops(), base.mops()),
				stats.Speedup(base.wallNsPerOp(), full.wallNsPerOp()),
			},
		}},
	}
	depthTbl := stats.Table{
		Title:  "Streaming: GetRange Mwords/s (virtual) vs pipeline depth",
		XLabel: "depth",
		YFmt:   "%.2f",
	}
	var ys []float64
	for _, d := range []int{-1, 2, 4, 8, 16} {
		label := itoa(d)
		if d < 0 {
			label = "serial"
		}
		depthTbl.Xs = append(depthTbl.Xs, label)
		sc := streamConfig{pipeline: d, txBurst: 0, coalesce: true, prefetch: -1}
		ys = append(ys, runStream(p, nodes, sc).mops())
	}
	depthTbl.Series = []stats.Series{{Label: "darray", Ys: ys}}

	wr := stats.Table{
		Title:  "Streaming: cross-node SetRange, " + itoa(nodes) + " nodes (virtual time)",
		XLabel: "config",
		Xs:     []string{"all-off", "all-on"},
		YFmt:   "%.2f",
	}
	wOff := runStream(p, nodes, baselineStream(true))
	wOn := runStream(p, nodes, streamConfig{txBurst: 0, coalesce: true, write: true})
	wr.Series = []stats.Series{
		{Label: "Mwords/s", Ys: []float64{wOff.mops(), wOn.mops()}},
		{Label: "ns/word", Ys: []float64{wOff.nsPerOp(), wOn.nsPerOp()}},
	}
	return []stats.Table{tbl, speed, depthTbl, wr}
}
