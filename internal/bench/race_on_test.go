//go:build race

package bench

// raceEnabled reports that the race detector is active; statistical
// shape assertions are skipped under it because its ~10x slowdown and
// altered scheduling distort tiny-scale contention patterns.
const raceEnabled = true
