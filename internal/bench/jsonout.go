package bench

import (
	"encoding/json"
	"os"
	"runtime"
	"time"
)

// Machine-readable microbenchmark output (BENCH_micro.json): a stable
// per-benchmark ns/op record plus run metadata, so successive PRs leave
// a comparable perf trajectory instead of prose tables only.

// MicroResult is one named measurement. NsPerOp and MopsPerSec are in
// virtual time (the calibrated cost model); WallNsPerOp is the host
// wall-clock cost per operation, meaningful only on an idle machine.
type MicroResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	MopsPerSec  float64 `json:"mops_per_sec"`
	WallNsPerOp float64 `json:"wall_ns_per_op,omitempty"`
}

// MicroReport is the whole BENCH_micro.json document.
type MicroReport struct {
	Schema       string        `json:"schema"`
	GeneratedAt  string        `json:"generated_at"`
	GoVersion    string        `json:"go_version"`
	GOOS         string        `json:"goos"`
	GOARCH       string        `json:"goarch"`
	NumCPU       int           `json:"num_cpu"`
	WordsPerNode int64         `json:"words_per_node"`
	Nodes        int           `json:"nodes"`
	Results      []MicroResult `json:"results"`
}

// MicroJSON runs the micro suite at p's scale and returns the report.
// The suite covers the single-word sequential paths (per system), the
// random-access path, and the streaming bulk-transfer path with the
// pipeline off and on.
func MicroJSON(p Params) MicroReport {
	nodes := min(3, p.MaxNodes)
	rep := MicroReport{
		Schema:       "darray-bench-micro/v1",
		GeneratedAt:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		NumCPU:       runtime.NumCPU(),
		WordsPerNode: p.WordsPerNode,
		Nodes:        nodes,
	}
	addSeq := func(name, system, op string, n int) {
		r := runSeq(p, system, op, n, 1)
		rep.Results = append(rep.Results, MicroResult{
			Name: name, NsPerOp: r.meanNs(), MopsPerSec: r.mops(),
		})
	}
	addSeq("seq-read/darray/1node", "darray", "read", 1)
	addSeq("seq-read/darray", "darray", "read", nodes)
	addSeq("seq-read/darray-pin", "darray-pin", "read", nodes)
	addSeq("seq-read/gam", "gam", "read", nodes)
	addSeq("seq-read/bcl", "bcl", "read", nodes)
	addSeq("seq-write/darray", "darray", "write", nodes)
	addSeq("seq-operate/darray", "darray", "operate", nodes)
	rep.Results = append(rep.Results, MicroResult{
		Name:    "random-read/darray",
		NsPerOp: runRandom(p, "darray", "read", nodes),
	})
	addStream := func(name string, sc streamConfig) {
		r := runStream(p, nodes, sc)
		rep.Results = append(rep.Results, MicroResult{
			Name: name, NsPerOp: r.nsPerOp(), MopsPerSec: r.mops(),
			WallNsPerOp: r.wallNsPerOp(),
		})
	}
	addStream("stream-getrange/serial", baselineStream(false))
	addStream("stream-getrange/pipelined", streamConfig{txBurst: 0, coalesce: true})
	addStream("stream-setrange/serial", baselineStream(true))
	addStream("stream-setrange/pipelined", streamConfig{txBurst: 0, coalesce: true, write: true})
	return rep
}

// WriteMicroJSON runs the micro suite and writes the report to path.
func WriteMicroJSON(path string, p Params) error {
	rep := MicroJSON(p)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
