package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// Machine-readable microbenchmark output (BENCH_micro.json): a stable
// per-benchmark ns/op record plus run metadata, so successive PRs leave
// a comparable perf trajectory instead of prose tables only.

// MicroResult is one named measurement. NsPerOp and MopsPerSec are in
// virtual time (the calibrated cost model); WallNsPerOp is the host
// wall-clock cost per operation, meaningful only on an idle machine.
// AllocsPerOp and BytesPerOp (schema v2) are heap-allocation deltas
// (runtime.MemStats Mallocs/TotalAlloc) over the whole measurement —
// including cluster setup, amortised over every operation — so they
// track the real GC pressure a benchmark run produces.
// P99NsPerOp, Fairness, and Retransmits (schema v4) carry the
// multi-stream contention experiment: tail per-slab latency, Jain's
// fairness index over per-stream throughput, and the go-back-N
// retransmission count of faulted runs.
type MicroResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	MopsPerSec  float64 `json:"mops_per_sec"`
	WallNsPerOp float64 `json:"wall_ns_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	P99NsPerOp  float64 `json:"p99_ns_per_op,omitempty"`
	Fairness    float64 `json:"fairness,omitempty"`
	Retransmits int64   `json:"retransmits,omitempty"`
	Knobs       *Knobs  `json:"knobs,omitempty"`
}

// Knobs records the effective knob set behind one measurement (schema
// v3), so a result line is interpretable without reconstructing the
// command line that produced it.
type Knobs struct {
	TxBurst  int     `json:"tx_burst"`
	Pipeline int     `json:"pipeline"`
	Prefetch int     `json:"prefetch"`
	Coalesce bool    `json:"coalesce"`
	NoPool   bool    `json:"no_pool"`
	Ship     string  `json:"ship"`
	Nodes    int     `json:"nodes"`
	Threads  int     `json:"threads"`
	Theta    float64 `json:"theta,omitempty"`
	NoCC     bool    `json:"no_cc,omitempty"`
	Streams  int     `json:"streams,omitempty"`
}

// knobs renders p's effective cluster knob set for one measurement.
func (p Params) knobs(nodes, threads int) *Knobs {
	ship := p.Ship
	if ship == "" {
		ship = "auto"
	}
	return &Knobs{
		TxBurst:  p.TxBurst,
		Pipeline: p.PipelineDepth,
		Prefetch: p.PrefetchAhead,
		Coalesce: !p.DisableCoalesce,
		NoPool:   p.NoPool,
		Ship:     ship,
		Nodes:    nodes,
		Threads:  threads,
		NoCC:     p.NoCC,
	}
}

// MicroReport is the whole BENCH_micro.json document.
type MicroReport struct {
	Schema       string        `json:"schema"`
	GeneratedAt  string        `json:"generated_at"`
	GoVersion    string        `json:"go_version"`
	GOOS         string        `json:"goos"`
	GOARCH       string        `json:"goarch"`
	NumCPU       int           `json:"num_cpu"`
	WordsPerNode int64         `json:"words_per_node"`
	Nodes        int           `json:"nodes"`
	NoPool       bool          `json:"no_pool,omitempty"`
	Results      []MicroResult `json:"results"`
}

// measureAllocs runs fn (which reports its operation count) between two
// MemStats snapshots and returns heap allocations and bytes per op.
func measureAllocs(fn func() int64) (allocsPerOp, bytesPerOp float64) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	ops := fn()
	runtime.ReadMemStats(&after)
	if ops <= 0 {
		return 0, 0
	}
	return float64(after.Mallocs-before.Mallocs) / float64(ops),
		float64(after.TotalAlloc-before.TotalAlloc) / float64(ops)
}

// MicroJSON runs the micro suite at p's scale and returns the report.
// The suite covers the single-word sequential paths (per system), the
// random-access path, and the streaming bulk-transfer path with the
// pipeline off and on.
func MicroJSON(p Params) MicroReport {
	nodes := min(3, p.MaxNodes)
	rep := MicroReport{
		Schema:       "darray-bench-micro/v4",
		GeneratedAt:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		NumCPU:       runtime.NumCPU(),
		WordsPerNode: p.WordsPerNode,
		Nodes:        nodes,
		NoPool:       p.NoPool,
	}
	addSeq := func(name, system, op string, n int) {
		var r seqResult
		allocs, bytes := measureAllocs(func() int64 {
			r = runSeq(p, system, op, n, 1)
			return r.ops
		})
		rep.Results = append(rep.Results, MicroResult{
			Name: name, NsPerOp: r.meanNs(), MopsPerSec: r.mops(),
			AllocsPerOp: allocs, BytesPerOp: bytes,
			Knobs: p.knobs(n, 1),
		})
	}
	addSeq("seq-read/darray/1node", "darray", "read", 1)
	addSeq("seq-read/darray", "darray", "read", nodes)
	addSeq("seq-read/darray-pin", "darray-pin", "read", nodes)
	addSeq("seq-read/gam", "gam", "read", nodes)
	addSeq("seq-read/bcl", "bcl", "read", nodes)
	addSeq("seq-write/darray", "darray", "write", nodes)
	addSeq("seq-operate/darray", "darray", "operate", nodes)
	var randNs float64
	randAllocs, randBytes := measureAllocs(func() int64 {
		randNs = runRandom(p, "darray", "read", nodes)
		return int64(p.RandomOps) * int64(nodes)
	})
	rep.Results = append(rep.Results, MicroResult{
		Name:    "random-read/darray",
		NsPerOp: randNs, AllocsPerOp: randAllocs, BytesPerOp: randBytes,
		Knobs: p.knobs(nodes, 1),
	})
	addStream := func(name string, sc streamConfig) {
		var r streamResult
		allocs, bytes := measureAllocs(func() int64 {
			r = runStream(p, nodes, sc)
			return r.words
		})
		k := p.knobs(nodes, 1)
		k.TxBurst, k.Pipeline, k.Prefetch, k.Coalesce = sc.txBurst, sc.pipeline, sc.prefetch, sc.coalesce
		rep.Results = append(rep.Results, MicroResult{
			Name: name, NsPerOp: r.nsPerOp(), MopsPerSec: r.mops(),
			WallNsPerOp: r.wallNsPerOp(),
			AllocsPerOp: allocs, BytesPerOp: bytes,
			Knobs: k,
		})
	}
	addStream("stream-getrange/serial", baselineStream(false))
	addStream("stream-getrange/pipelined", streamConfig{txBurst: 0, coalesce: true})
	addStream("stream-setrange/serial", baselineStream(true))
	addStream("stream-setrange/pipelined", streamConfig{txBurst: 0, coalesce: true, write: true})
	hotNodes := min(6, p.MaxNodes)
	for _, th := range hotThetas {
		for _, mode := range hotShipModes {
			var r hotspotResult
			allocs, bytes := measureAllocs(func() int64 {
				r = runHotspot(p, mode, th, hotNodes)
				return r.ops
			})
			k := p.knobs(hotNodes, 1)
			k.Ship, k.Theta = mode, th
			nsPerOp := 0.0
			if r.tput > 0 {
				nsPerOp = 1e9 / r.tput
			}
			rep.Results = append(rep.Results, MicroResult{
				Name:    fmt.Sprintf("hotspot/theta=%s/ship=%s", ftoa(th), mode),
				NsPerOp: nsPerOp, MopsPerSec: r.tput / 1e6,
				AllocsPerOp: allocs, BytesPerOp: bytes,
				Knobs: k,
			})
		}
	}
	// Multi-stream contention (schema v4): adaptive congestion windows
	// vs the fixed-depth knobs as concurrent streams share one link.
	// NsPerOp here is mean per-slab latency; MopsPerSec is aggregate
	// Mwords/s; the -chaos rows add the retransmission bill under a
	// seeded 2% loss plan.
	addContention := func(streams int, noCC, faulted bool) {
		r := runContention(p, streams, noCC, faulted)
		mode := "adaptive"
		if noCC {
			mode = "fixed"
		}
		name := fmt.Sprintf("contention/streams=%d/%s", streams, mode)
		if faulted {
			name = fmt.Sprintf("contention-chaos/streams=%d/%s", streams, mode)
		}
		k := p.knobs(2, streams)
		k.NoCC, k.Streams = noCC, streams
		rep.Results = append(rep.Results, MicroResult{
			Name: name, NsPerOp: r.meanNs, MopsPerSec: r.mwords,
			P99NsPerOp: r.p99Ns, Fairness: r.jain, Retransmits: r.retrans,
			Knobs: k,
		})
	}
	for _, s := range []int{1, 4, 8} {
		addContention(s, false, false)
		addContention(s, true, false)
	}
	addContention(4, false, true)
	addContention(4, true, true)
	return rep
}

// WriteMicroJSON runs the micro suite and writes the report to path.
func WriteMicroJSON(path string, p Params) error {
	rep := MicroJSON(p)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
