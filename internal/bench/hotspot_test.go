package bench

import (
	"testing"

	"darray/internal/vtime"
)

// hotspotParams skips host calibration (fixed plausible CPU costs) but
// keeps the full 6-node, 8000-ops-per-node crossover scale — the shape
// the EXPERIMENTS.md numbers come from.
func hotspotParams() Params {
	m := vtime.Default()
	m.NativeAccess, m.GetHit, m.SetHit, m.ApplyHit = 2, 20, 25, 30
	m.PinAccess, m.GamAccess, m.BclLocal, m.SlowFixed = 5, 40, 6, 100
	p := DefaultParams(m)
	p.HotOps = 8000
	return p
}

// TestHotspotCrossover locks the function-shipping acceptance criteria:
// on the RMW-heavy hot-key mix at θ=0.99 the auto estimator must find
// the shipped mode and beat cached combining by ≥1.5× in virtual-time
// throughput, while at θ=0 (uniform) it must leave the cached path
// alone and stay within 5% of ship=off.
func TestHotspotCrossover(t *testing.T) {
	if raceEnabled {
		t.Skip("virtual-time throughput ratios; -race scheduling skews queueing")
	}
	if testing.Short() {
		t.Skip("multi-second crossover measurement")
	}
	p := hotspotParams()
	const nodes = 6

	off := runHotspot(p, "off", 0, nodes).tput
	auto := runHotspot(p, "auto", 0, nodes).tput
	if ratio := auto / off; ratio < 0.95 {
		t.Errorf("theta=0: ship=auto at %.3fx of ship=off, want >= 0.95x (estimator must not flip uniform traffic)", ratio)
	}

	off99 := runHotspot(p, "off", 0.99, nodes).tput
	auto99 := runHotspot(p, "auto", 0.99, nodes).tput
	if ratio := auto99 / off99; ratio < 1.5 {
		t.Errorf("theta=0.99: ship=auto at %.3fx of ship=off, want >= 1.5x", ratio)
	}
}
