package bench

import (
	"sync"

	"darray/internal/bcl"
	"darray/internal/cluster"
	"darray/internal/core"
	"darray/internal/fault"
	"darray/internal/gam"
	"darray/internal/stats"
	"darray/internal/telemetry"
	"darray/internal/trace"
	"darray/internal/vtime"
)

// Params scales the experiments. Defaults reproduce the paper's shapes
// at container-friendly sizes; the paper's full sizes are reachable via
// cmd/darray-bench flags.
type Params struct {
	Model        *vtime.Model
	WordsPerNode int64 // weak-scaled global array growth per node
	MaxNodes     int
	Threads      []int // intra-node sweep (Fig. 12, 17)
	GraphScale   int   // R-MAT scale for Fig. 16
	PRIters      int
	KVRecords    int64
	KVOps        int // per thread
	ZipfOps      int // per node, Fig. 14
	RandomOps    int // per node, Fig. 18
	HotOps       int // per node, hotspot crossover (0: fall back to ZipfOps)

	// Telemetry, when non-nil, is shared by every cluster the experiments
	// build; each cluster folds its final counters into it on Close, so
	// per-experiment deltas survive the (short-lived) clusters that
	// produced them.
	Telemetry *telemetry.Registry

	// Faults, when non-nil, supplies a fresh fault plan for each cluster
	// an experiment builds (the -chaos flag wires this up). A fresh plan
	// per cluster keeps targeted Nth-message rules and fault logs scoped
	// to one cluster's lifetime.
	Faults func(nodes int) *fault.Plan

	// Transport and pipeline knobs, forwarded to every cluster the
	// experiments build. Zero values keep the cluster defaults; -1
	// disables (see cluster.Config).
	TxBurst         int
	PipelineDepth   int
	PrefetchAhead   int
	DisableCoalesce bool

	// NoPool disables the zero-copy buffer pool — the allocate-per-message
	// ablation behind `make bench-diff`.
	NoPool bool

	// NoCC disables congestion-controlled streaming, pinning the bulk
	// pipeline and Tx doorbells to the static knobs above — the
	// fixed-window ablation behind the contention experiment.
	NoCC bool

	// Ship selects the function-shipping mode for every cluster the
	// experiments build: "" or "auto" (per-chunk estimator), "on", "off".
	Ship string

	// Tracer, when non-nil, is attached to every cluster the experiments
	// build so sampled ops record causal span trees (the -trace-out flag
	// wires this up). Enable it (trace.Tracer.Enable) before running.
	Tracer *trace.Tracer
}

// DefaultParams returns container-friendly sizes.
func DefaultParams(m *vtime.Model) Params {
	return Params{
		Model:        m,
		WordsPerNode: 1 << 16,
		MaxNodes:     6,
		Threads:      []int{1, 2, 4, 8},
		GraphScale:   13,
		PRIters:      5,
		KVRecords:    4096,
		KVOps:        2000,
		ZipfOps:      20000,
		RandomOps:    20000,
		HotOps:       8000,
	}
}

func (p Params) cluster(nodes int) *cluster.Cluster {
	words := p.WordsPerNode * int64(nodes)
	chunks := words / 512
	perRT := chunks / 2 / 2 // cache half the array per node, split over 2 runtimes
	if perRT < 32 {
		perRT = 32
	}
	var plan *fault.Plan
	if p.Faults != nil {
		plan = p.Faults(nodes)
	}
	return cluster.New(cluster.Config{
		Nodes:           nodes,
		Model:           p.Model,
		CacheChunks:     int(perRT),
		Telemetry:       p.Telemetry,
		MsgKindName:     core.KindName,
		Faults:          plan,
		TxBurst:         p.TxBurst,
		PipelineDepth:   p.PipelineDepth,
		PrefetchAhead:   p.PrefetchAhead,
		DisableCoalesce: p.DisableCoalesce,
		NoPool:          p.NoPool,
		NoCC:            p.NoCC,
		Ship:            p.Ship,
		Tracer:          p.Tracer,
	})
}

// seqResult is one (system, op, nodes, threads) measurement.
type seqResult struct {
	ops       int64 // total across all threads
	perThread int64 // ops per thread (latency denominator)
	durNs     int64
}

func (r seqResult) mops() float64 { return stats.Throughput(r.ops, r.durNs) / 1e6 }
func (r seqResult) meanNs() float64 {
	if r.perThread == 0 {
		return 0
	}
	return float64(r.durNs) / float64(r.perThread)
}

// runSeq runs the paper's §6.2 microbenchmark: every thread on every
// node sweeps the entire global array at 8-byte granularity (starting at
// its own partition to avoid lockstep convoys), using the given system
// and operation. It returns total ops and the workload's virtual
// duration.
func runSeq(p Params, system, op string, nodes, threads int) seqResult {
	c := p.cluster(nodes)
	defer c.Close()
	words := p.WordsPerNode * int64(nodes)
	var mu sync.Mutex
	var totalOps int64
	var maxEnd, minStart int64
	minStart = 1 << 62

	c.Run(func(n *cluster.Node) {
		var arr *core.Array
		var g *gam.Array
		var b *bcl.Array
		var add core.OpID
		switch system {
		case "darray", "darray-pin":
			arr = core.New(n, words)
			add = arr.RegisterOp(core.OpAddU64)
		case "gam":
			g = gam.New(n, words)
		case "bcl":
			b = bcl.New(n, words)
		}
		root := n.NewCtx(0)
		c.Barrier(root)
		n.RunThreads(threads, func(ctx *cluster.Ctx) {
			lo := int64(n.ID()) * p.WordsPerNode
			start := ctx.Clock.Now()
			ops := sweep(ctx, system, op, arr, g, b, add, words, lo)
			end := ctx.Clock.Now()
			mu.Lock()
			totalOps += ops
			if end > maxEnd {
				maxEnd = end
			}
			if start < minStart {
				minStart = start
			}
			mu.Unlock()
		})
		c.Barrier(root)
	})
	return seqResult{ops: totalOps, perThread: words, durNs: maxEnd - minStart}
}

// sweep performs one full pass over the global array.
func sweep(ctx *cluster.Ctx, system, op string, arr *core.Array, g *gam.Array, b *bcl.Array, add core.OpID, words, lo int64) int64 {
	idx := func(k int64) int64 {
		i := lo + k
		if i >= words {
			i -= words
		}
		return i
	}
	switch system {
	case "darray":
		switch op {
		case "read":
			for k := int64(0); k < words; k++ {
				arr.Get(ctx, idx(k))
			}
		case "write":
			for k := int64(0); k < words; k++ {
				arr.Set(ctx, idx(k), uint64(k))
			}
		case "operate":
			for k := int64(0); k < words; k++ {
				arr.Apply(ctx, add, idx(k), 1)
			}
		}
	case "darray-pin":
		cw := arr.ChunkWords()
		for base := int64(0); base < words; base += cw {
			i := idx(base)
			switch op {
			case "read":
				p := arr.PinRead(ctx, i)
				for j := p.First(); j < p.Limit(); j++ {
					p.Get(ctx, j)
				}
				p.Unpin(ctx)
			case "write":
				p := arr.PinWrite(ctx, i)
				for j := p.First(); j < p.Limit(); j++ {
					p.Set(ctx, j, uint64(j))
				}
				p.Unpin(ctx)
			case "operate":
				p := arr.PinOperate(ctx, i, add)
				for j := p.First(); j < p.Limit(); j++ {
					p.Apply(ctx, j, 1)
				}
				p.Unpin(ctx)
			}
		}
	case "gam":
		switch op {
		case "read":
			for k := int64(0); k < words; k++ {
				g.Get(ctx, idx(k))
			}
		case "write":
			for k := int64(0); k < words; k++ {
				g.Set(ctx, idx(k), uint64(k))
			}
		case "operate": // GAM's Atomic: exclusive-ownership updates
			for k := int64(0); k < words; k++ {
				g.Atomic(ctx, idx(k), func(v uint64) uint64 { return v + 1 })
			}
		}
	case "bcl":
		switch op {
		case "read":
			for k := int64(0); k < words; k++ {
				b.Get(ctx, idx(k))
			}
		case "write":
			for k := int64(0); k < words; k++ {
				b.Set(ctx, idx(k), uint64(k))
			}
		}
	}
	return words
}

// Fig1 reproduces Figure 1: average 8-byte sequential read latency on a
// single machine and on a distributed cluster.
func Fig1(p Params) []stats.Table {
	systems := []string{"bcl", "gam", "darray", "darray-pin"}
	dist := min(6, p.MaxNodes)
	tbl := stats.Table{
		Title:  "Figure 1: avg latency (ns) of 8-byte sequential reads",
		XLabel: "config",
		Xs:     []string{"single-machine", "distributed-" + itoa(dist)},
		YFmt:   "%.1f",
	}
	for _, sys := range systems {
		one := runSeq(p, sys, "read", 1, 1)
		six := runSeq(p, sys, "read", dist, 1)
		tbl.Series = append(tbl.Series, stats.Series{
			Label: sys, Ys: []float64{one.meanNs(), six.meanNs()},
		})
	}
	return []stats.Table{tbl}
}

// Fig12 reproduces Figure 12: sequential Read/Write/Operate throughput
// with increasing threads on three nodes.
func Fig12(p Params) []stats.Table {
	var out []stats.Table
	for _, op := range []string{"read", "write", "operate"} {
		systems := []string{"bcl", "gam", "darray"}
		if op == "operate" {
			systems = []string{"gam", "darray"}
		}
		tbl := stats.Table{
			Title:  "Figure 12 (" + op + "): throughput (Mops/s) vs threads, 3 nodes",
			XLabel: "threads",
		}
		for _, t := range p.Threads {
			tbl.Xs = append(tbl.Xs, itoa(t))
		}
		for _, sys := range systems {
			var ys []float64
			for _, t := range p.Threads {
				ys = append(ys, runSeq(p, sys, op, min(3, p.MaxNodes), t).mops())
			}
			tbl.Series = append(tbl.Series, stats.Series{Label: sys, Ys: ys})
		}
		out = append(out, tbl)
	}
	return out
}

// Fig13 reproduces Figure 13: sequential throughput with increasing
// nodes (weak scaling, one thread per node), plus scalability ratios.
func Fig13(p Params) []stats.Table {
	nodesXs := nodeSweep(p.MaxNodes)
	var out []stats.Table
	for _, op := range []string{"read", "write", "operate"} {
		systems := []string{"bcl", "gam", "darray"}
		if op == "operate" {
			systems = []string{"gam", "darray"}
		}
		tbl := stats.Table{
			Title:  "Figure 13 (" + op + "): throughput (Mops/s) vs nodes, 1 thread/node",
			XLabel: "nodes",
		}
		ratio := stats.Table{
			Title:  "Figure 13 (" + op + "): weak-scaling ratio, max nodes vs 2-node baseline",
			XLabel: "system",
			Xs:     []string{"ratio"},
		}
		for _, n := range nodesXs {
			tbl.Xs = append(tbl.Xs, itoa(n))
		}
		for _, sys := range systems {
			var ys []float64
			for _, n := range nodesXs {
				ys = append(ys, runSeq(p, sys, op, n, 1).mops())
			}
			tbl.Series = append(tbl.Series, stats.Series{Label: sys, Ys: ys})
			// Scalability relative to the smallest distributed config
			// (single-node runs have no network component at all, which
			// would make the ratio measure CPU cost, not scaling).
			baseIdx := 0
			if len(nodesXs) > 1 && nodesXs[0] == 1 {
				baseIdx = 1
			}
			last := len(ys) - 1
			r := 0.0
			if nodesXs[baseIdx] > 0 && ys[baseIdx] > 0 {
				perNodeBase := ys[baseIdx] / float64(nodesXs[baseIdx])
				r = ys[last] / (float64(nodesXs[last]) * perNodeBase)
			}
			ratio.Series = append(ratio.Series, stats.Series{Label: sys, Ys: []float64{r}})
		}
		out = append(out, tbl, ratio)
	}
	return out
}

// Fig15 reproduces Figure 15: DArray vs DArray-Pin sequential read
// throughput (paper: pin wins by 1.8x–2.9x).
func Fig15(p Params) []stats.Table {
	nodesXs := nodeSweep(p.MaxNodes)
	tbl := stats.Table{
		Title:  "Figure 15: sequential read throughput (Mops/s), DArray vs DArray-Pin",
		XLabel: "nodes",
	}
	var plain, pinned []float64
	for _, n := range nodesXs {
		tbl.Xs = append(tbl.Xs, itoa(n))
		plain = append(plain, runSeq(p, "darray", "read", n, 1).mops())
		pinned = append(pinned, runSeq(p, "darray-pin", "read", n, 1).mops())
	}
	var speed []float64
	for i := range plain {
		speed = append(speed, stats.Speedup(pinned[i], plain[i]))
	}
	tbl.Series = []stats.Series{
		{Label: "darray", Ys: plain},
		{Label: "darray-pin", Ys: pinned},
		{Label: "speedup", Ys: speed},
	}
	return []stats.Table{tbl}
}

// Fig18 reproduces Figure 18 (the limitations experiment): uniform
// random access latency with increasing nodes.
func Fig18(p Params) []stats.Table {
	nodesXs := nodeSweep(p.MaxNodes)
	var out []stats.Table
	for _, op := range []string{"read", "write", "operate"} {
		systems := []string{"bcl", "gam", "darray"}
		if op == "operate" {
			systems = []string{"gam", "darray"}
		}
		tbl := stats.Table{
			Title:  "Figure 18 (" + op + "): random access latency (ns) vs nodes",
			XLabel: "nodes",
			YFmt:   "%.0f",
		}
		for _, n := range nodesXs {
			tbl.Xs = append(tbl.Xs, itoa(n))
		}
		for _, sys := range systems {
			var ys []float64
			for _, n := range nodesXs {
				ys = append(ys, runRandom(p, sys, op, n))
			}
			tbl.Series = append(tbl.Series, stats.Series{Label: sys, Ys: ys})
		}
		out = append(out, tbl)
	}
	return out
}

// runRandom measures mean latency of uniformly random single-word ops.
func runRandom(p Params, system, op string, nodes int) float64 {
	c := p.cluster(nodes)
	defer c.Close()
	words := p.WordsPerNode * int64(nodes)
	var mu sync.Mutex
	var sum float64
	c.Run(func(n *cluster.Node) {
		var arr *core.Array
		var g *gam.Array
		var b *bcl.Array
		var add core.OpID
		switch system {
		case "darray":
			arr = core.New(n, words)
			add = arr.RegisterOp(core.OpAddU64)
		case "gam":
			g = gam.New(n, words)
		case "bcl":
			b = bcl.New(n, words)
		}
		ctx := n.NewCtx(0)
		c.Barrier(ctx)
		start := ctx.Clock.Now()
		for k := 0; k < p.RandomOps; k++ {
			i := int64(ctx.Rng.Int63n(words))
			switch system {
			case "darray":
				switch op {
				case "read":
					arr.Get(ctx, i)
				case "write":
					arr.Set(ctx, i, 1)
				case "operate":
					arr.Apply(ctx, add, i, 1)
				}
			case "gam":
				switch op {
				case "read":
					g.Get(ctx, i)
				case "write":
					g.Set(ctx, i, 1)
				case "operate":
					g.Atomic(ctx, i, func(v uint64) uint64 { return v + 1 })
				}
			case "bcl":
				switch op {
				case "read":
					b.Get(ctx, i)
				case "write":
					b.Set(ctx, i, 1)
				}
			}
		}
		mean := float64(ctx.Clock.Now()-start) / float64(p.RandomOps)
		mu.Lock()
		sum += mean
		mu.Unlock()
		c.Barrier(ctx)
	})
	return sum / float64(nodes)
}

func nodeSweep(max int) []int {
	sweep := []int{1, 2, 3, 4, 6, 8, 12}
	var out []int
	for _, n := range sweep {
		if n <= max {
			out = append(out, n)
		}
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
