// Package gamkvs wires the distributed key-value store (internal/kvs)
// to the GAM baseline's arrays, reproducing the GAM-based KVS the paper
// compares against in Figure 17: identical bucket/slab design, but every
// word access pays GAM's lock-based data access path.
package gamkvs

import (
	"darray/internal/cluster"
	"darray/internal/gam"
	"darray/internal/kvs"
)

// New collectively builds a GAM-backed KVS.
func New(node *cluster.Node, cfg kvs.Config) *kvs.Store {
	entryWords, byteWords := kvs.Sizes(cfg, node.Cluster().Nodes())
	entries := gam.New(node, entryWords)
	bytes := gam.New(node, byteWords)
	return kvs.New(node, entries, bytes, cfg)
}
