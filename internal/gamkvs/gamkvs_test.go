package gamkvs

import (
	"fmt"
	"testing"

	"darray/internal/cluster"
	"darray/internal/kvs"
)

func TestGamKVSPutGetAcrossNodes(t *testing.T) {
	c := cluster.New(cluster.Config{Nodes: 2, ChunkWords: 64, CacheChunks: 256})
	defer c.Close()
	c.Run(func(n *cluster.Node) {
		s := New(n, kvs.Config{Buckets: 64, ByteWords: 1 << 17})
		ctx := n.NewCtx(0)
		c.Barrier(ctx)
		for i := 0; i < 30; i++ {
			k := []byte(fmt.Sprintf("n%d-%d", n.ID(), i))
			if err := s.Put(ctx, k, []byte(fmt.Sprintf("v%d", i))); err != nil {
				t.Errorf("put: %v", err)
				return
			}
		}
		c.Barrier(ctx)
		for v := 0; v < 2; v++ {
			for i := 0; i < 30; i++ {
				k := []byte(fmt.Sprintf("n%d-%d", v, i))
				got, err := s.Get(ctx, k)
				if err != nil || string(got) != fmt.Sprintf("v%d", i) {
					t.Errorf("get %s = (%q, %v)", k, got, err)
					return
				}
			}
		}
		c.Barrier(ctx)
	})
}

func TestGamKVSConcurrentThreads(t *testing.T) {
	c := cluster.New(cluster.Config{Nodes: 2, ChunkWords: 64, CacheChunks: 256})
	defer c.Close()
	c.Run(func(n *cluster.Node) {
		s := New(n, kvs.Config{Buckets: 64, ByteWords: 1 << 17})
		root := n.NewCtx(0)
		c.Barrier(root)
		n.RunThreads(2, func(ctx *cluster.Ctx) {
			for i := 0; i < 25; i++ {
				k := []byte(fmt.Sprintf("t%d-%d-%d", n.ID(), ctx.TID, i))
				if err := s.Put(ctx, k, k); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if got, err := s.Get(ctx, k); err != nil || string(got) != string(k) {
					t.Errorf("get-own-write %s = (%q, %v)", k, got, err)
					return
				}
			}
		})
		c.Barrier(root)
	})
}
