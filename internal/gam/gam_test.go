package gam

import (
	"testing"

	"darray/internal/cluster"
)

func tc(t *testing.T, nodes int) *cluster.Cluster {
	t.Helper()
	c := cluster.New(cluster.Config{Nodes: nodes, ChunkWords: 64, CacheChunks: 64})
	t.Cleanup(c.Close)
	return c
}

func TestGetSetRoundTrip(t *testing.T) {
	c := tc(t, 2)
	c.Run(func(n *cluster.Node) {
		g := New(n, 2*64)
		ctx := n.NewCtx(0)
		if n.ID() == 0 {
			for i := int64(0); i < 64; i++ {
				g.Set(ctx, i, uint64(i)*2)
			}
		}
		c.Barrier(ctx)
		if n.ID() == 1 {
			for i := int64(0); i < 64; i++ {
				if got := g.Get(ctx, i); got != uint64(i)*2 {
					t.Errorf("g[%d] = %d, want %d", i, got, i*2)
					return
				}
			}
		}
		c.Barrier(ctx)
	})
}

func TestAtomicAcrossNodes(t *testing.T) {
	const nodes, iters = 3, 100
	c := tc(t, nodes)
	c.Run(func(n *cluster.Node) {
		g := New(n, 3*64)
		ctx := n.NewCtx(0)
		c.Barrier(ctx)
		for k := 0; k < iters; k++ {
			g.Atomic(ctx, 5, func(v uint64) uint64 { return v + 1 })
		}
		c.Barrier(ctx)
		if got := g.Get(ctx, 5); got != nodes*iters {
			t.Errorf("atomic counter = %d, want %d", got, nodes*iters)
		}
		c.Barrier(ctx)
	})
}

func TestAtomicConcurrentThreads(t *testing.T) {
	c := tc(t, 2)
	c.Run(func(n *cluster.Node) {
		g := New(n, 2*64)
		root := n.NewCtx(0)
		c.Barrier(root)
		n.RunThreads(4, func(ctx *cluster.Ctx) {
			for k := 0; k < 50; k++ {
				g.Atomic(ctx, 9, func(v uint64) uint64 { return v + 2 })
			}
		})
		c.Barrier(root)
		if got := g.Get(root, 9); got != 2*4*50*2 {
			t.Errorf("counter = %d, want 800", got)
		}
		c.Barrier(root)
	})
}

func TestLocks(t *testing.T) {
	const nodes, iters = 2, 40
	c := tc(t, nodes)
	c.Run(func(n *cluster.Node) {
		g := New(n, 2*64)
		ctx := n.NewCtx(0)
		c.Barrier(ctx)
		for k := 0; k < iters; k++ {
			g.WLock(ctx, 3)
			g.Set(ctx, 3, g.Get(ctx, 3)+1)
			g.Unlock(ctx, 3)
		}
		c.Barrier(ctx)
		if got := g.Get(ctx, 3); got != nodes*iters {
			t.Errorf("locked counter = %d, want %d", got, nodes*iters)
		}
		c.Barrier(ctx)
	})
}

func TestLocalRange(t *testing.T) {
	c := tc(t, 2)
	c.Run(func(n *cluster.Node) {
		g := New(n, 2*64)
		lo, hi := g.LocalRange()
		if hi-lo != 64 {
			t.Errorf("node %d owns %d elements, want 64", n.ID(), hi-lo)
		}
		if g.HomeOf(lo) != n.ID() {
			t.Errorf("HomeOf(%d) != %d", lo, n.ID())
		}
	})
}
