// Package gam implements the GAM baseline (Cai et al., VLDB 2018): an
// RDMA-based distributed memory with a coherent cache whose data access
// path is lock-based, and whose atomic read-modify-write interface
// requires exclusive ownership.
//
// The baseline shares the directory-protocol substrate with
// internal/core and differs in exactly the two properties the paper
// attributes GAM's performance gap to (§2, §6):
//
//   - every access takes a per-chunk mutex and consults a cache index
//     map (GAM's hash-table lookup) — the "lock-based approach" whose
//     overhead and serialization §4.1 argues against;
//   - Atomic performs the update under exclusive (write) ownership, so
//     concurrent updaters ping-pong the chunk instead of combining
//     locally the way DArray's Operate interface does.
//
// This makes the comparison a controlled ablation: protocol and fabric
// identical, access path and update semantics swapped.
package gam

import (
	"sync"

	"darray/internal/cluster"
	"darray/internal/core"
)

const lockShards = 256

// Array is a GAM-style distributed memory region of 8-byte words.
type Array struct {
	inner *core.Array
	node  *cluster.Node

	// lockWords backs the distributed locks GAM-style: lock state lives
	// in DSM words manipulated with exclusive atomics, so every acquire
	// migrates ownership of the word's whole chunk — including false
	// sharing with neighbouring locks, the effect §4.1 calls out.
	lockWords *core.Array

	// Sharded per-chunk mutexes: the lock-based data access path. Two
	// threads touching the same chunk serialize here (and false sharing
	// of shards serializes more, as in any hashed lock table).
	mus [lockShards]sync.Mutex

	// index simulates GAM's cacheline hash-table lookup on every access.
	idxMu sync.RWMutex
	index map[int64]int64
}

// New collectively creates a GAM array of n words.
func New(node *cluster.Node, n int64) *Array {
	g := &Array{
		inner:     core.New(node, n),
		lockWords: core.New(node, n),
		node:      node,
		index:     make(map[int64]int64),
	}
	return g
}

// Len returns the global element count.
func (g *Array) Len() int64 { return g.inner.Len() }

// LocalRange returns this node's homed element range.
func (g *Array) LocalRange() (int64, int64) { return g.inner.LocalRange() }

// HomeOf returns the home node of element i.
func (g *Array) HomeOf(i int64) int { return g.inner.HomeOf(i) }

// Inner exposes the underlying array (tests, metrics).
func (g *Array) Inner() *core.Array { return g.inner }

func (g *Array) shard(i int64) *sync.Mutex {
	return &g.mus[(i/g.inner.ChunkWords())%lockShards]
}

// lookup performs the cache-index hash lookup GAM does on each access.
func (g *Array) lookup(ci int64) {
	g.idxMu.RLock()
	_, ok := g.index[ci]
	g.idxMu.RUnlock()
	if !ok {
		g.idxMu.Lock()
		g.index[ci] = ci
		g.idxMu.Unlock()
	}
}

func (g *Array) charge(ctx *cluster.Ctx) {
	if m := g.node.Cluster().Model(); m != nil {
		ctx.Clock.Advance(m.GamAccess)
	}
}

// Get reads element i through the lock-based access path.
func (g *Array) Get(ctx *cluster.Ctx, i int64) uint64 {
	mu := g.shard(i)
	mu.Lock()
	g.lookup(i / g.inner.ChunkWords())
	v := g.inner.Get(ctx, i)
	mu.Unlock()
	g.charge(ctx)
	return v
}

// Set writes element i through the lock-based access path.
func (g *Array) Set(ctx *cluster.Ctx, i int64, v uint64) {
	mu := g.shard(i)
	mu.Lock()
	g.lookup(i / g.inner.ChunkWords())
	g.inner.Set(ctx, i, v)
	mu.Unlock()
	g.charge(ctx)
}

// Atomic applies fn to element i under exclusive ownership: the chunk
// migrates to the caller as Dirty and the update happens in place. This
// is GAM's atomic interface; under contention ownership ping-pongs.
func (g *Array) Atomic(ctx *cluster.Ctx, i int64, fn func(uint64) uint64) {
	mu := g.shard(i)
	mu.Lock()
	g.lookup(i / g.inner.ChunkWords())
	// Acquire exclusive ownership and hold it across the
	// read-modify-write; other nodes' requests wait until release.
	p := g.inner.PinWrite(ctx, i)
	p.Set(ctx, i, fn(p.Get(ctx, i)))
	p.Unpin(ctx)
	mu.Unlock()
	g.charge(ctx)
	g.charge(ctx)
}

// Lock word layout: bit 63 = writer held, bit 62 = writer intent,
// low bits = reader count.
const (
	lwWriter = uint64(1) << 63
	lwIntent = uint64(1) << 62
)

// atomicLockOp applies fn to lock word i under exclusive ownership and
// reports fn's verdict. Each call migrates the word's chunk — the cost
// structure of GAM's DSM-resident locks. Exclusive ownership (PinWrite)
// serializes nodes; the shard mutex serializes this node's threads, as
// everywhere else on GAM's lock-based access path.
func (g *Array) atomicLockOp(ctx *cluster.Ctx, i int64, fn func(uint64) (uint64, bool)) bool {
	mu := g.shard(i)
	mu.Lock()
	defer mu.Unlock()
	p := g.lockWords.PinWrite(ctx, i)
	old := p.Get(ctx, i)
	next, ok := fn(old)
	if next != old {
		p.Set(ctx, i, next)
	}
	p.Unpin(ctx)
	if m := g.node.Cluster().Model(); m != nil {
		ctx.Clock.Advance(m.GamAccess)
	}
	return ok
}

// RLock takes element i's lock in shared mode by spinning on the DSM
// lock word. Readers defer to a pending writer's intent bit.
func (g *Array) RLock(ctx *cluster.Ctx, i int64) {
	for !g.atomicLockOp(ctx, i, func(w uint64) (uint64, bool) {
		if w&(lwWriter|lwIntent) != 0 {
			return w, false
		}
		return w + 1, true
	}) {
	}
}

// WLock takes element i's lock exclusively: first raise the intent bit,
// then spin until the reader count drains.
func (g *Array) WLock(ctx *cluster.Ctx, i int64) {
	for !g.atomicLockOp(ctx, i, func(w uint64) (uint64, bool) {
		if w&lwWriter != 0 {
			return w | lwIntent, false
		}
		if w&^(lwWriter|lwIntent) != 0 { // readers active
			return w | lwIntent, false
		}
		return (w &^ lwIntent) | lwWriter, true
	}) {
	}
}

// Unlock releases element i's lock (reader or writer).
func (g *Array) Unlock(ctx *cluster.Ctx, i int64) {
	g.atomicLockOp(ctx, i, func(w uint64) (uint64, bool) {
		if w&lwWriter != 0 {
			return w &^ lwWriter, true
		}
		return w - 1, true
	})
}
