package buf

import (
	"sync"
	"testing"
)

func TestGetReleaseCounters(t *testing.T) {
	p := NewPool()
	r := p.Get(100)
	if got := r.Len(); got != 100 {
		t.Fatalf("Len() = %d, want 100", got)
	}
	if len(r.Words()) != 100 {
		t.Fatalf("len(Words()) = %d, want 100", len(r.Words()))
	}
	if p.Outstanding() != 1 {
		t.Fatalf("Outstanding = %d, want 1", p.Outstanding())
	}
	if p.Misses() != 1 || p.Hits() != 0 {
		t.Fatalf("hits/misses = %d/%d, want 0/1", p.Hits(), p.Misses())
	}
	r.Release()
	if p.Outstanding() != 0 {
		t.Fatalf("Outstanding after release = %d, want 0", p.Outstanding())
	}
}

func TestClassReuse(t *testing.T) {
	if debugQuarantine {
		t.Skip("bufdebug quarantines released buffers; reuse is disabled by design")
	}
	p := NewPool()
	r := p.Get(100)
	words := r.Words()
	words[0] = 42
	r.Release()
	// Same class (128 words), different requested length: the recycled
	// backing array must be re-sliced, not reallocated.
	r2 := p.Get(120)
	if p.Hits() != 1 {
		t.Fatalf("Hits = %d, want 1 (recycled buffer)", p.Hits())
	}
	if r2.Len() != 120 {
		t.Fatalf("Len = %d, want 120", r2.Len())
	}
	r2.Release()
}

func TestRetainKeepsAlive(t *testing.T) {
	p := NewPool()
	r := p.Get(64)
	r.Retain()
	if p.Retained() != 1 {
		t.Fatalf("Retained = %d, want 1", p.Retained())
	}
	r.Release()
	// One reference remains: the buffer must still be live and outstanding.
	if p.Outstanding() != 1 {
		t.Fatalf("Outstanding = %d, want 1 (one ref held)", p.Outstanding())
	}
	r.Words()[0] = 7 // must not panic even under bufdebug
	r.Release()
	if p.Outstanding() != 0 {
		t.Fatalf("Outstanding = %d, want 0", p.Outstanding())
	}
}

func TestOversizeIsRawAllocated(t *testing.T) {
	p := NewPool()
	huge := classSizes[len(classSizes)-1] + 1
	r := p.Get(huge)
	if r.class != -1 {
		t.Fatalf("class = %d, want -1 (raw)", r.class)
	}
	if r.Len() != huge {
		t.Fatalf("Len = %d, want %d", r.Len(), huge)
	}
	r.Release()
	if p.Outstanding() != 0 {
		t.Fatalf("Outstanding = %d, want 0", p.Outstanding())
	}
}

func TestNilRefIsSafe(t *testing.T) {
	var r *Ref
	r.Retain()
	r.Release()
	if r.Words() != nil || r.Len() != 0 {
		t.Fatal("nil Ref must report empty buffer")
	}
}

func TestGetNonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Get(0) did not panic")
		}
	}()
	NewPool().Get(0)
}

func TestConcurrentGetReleaseRetain(t *testing.T) {
	p := NewPool()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				r := p.Get(64 + (seed+i)%512)
				w := r.Words()
				w[0] = uint64(i)
				if i%3 == 0 {
					r.Retain()
					r.Release()
				}
				if w[0] != uint64(i) {
					t.Errorf("buffer clobbered while referenced")
					r.Release()
					return
				}
				r.Release()
			}
		}(g)
	}
	wg.Wait()
	if p.Outstanding() != 0 {
		t.Fatalf("Outstanding = %d, want 0 after quiescence", p.Outstanding())
	}
}
