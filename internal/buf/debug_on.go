//go:build bufdebug

package buf

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// Debug builds (-tags bufdebug): every Release records its call site,
// released buffers are quarantined instead of recycled (so reuse can
// never mask a stale alias), and any use of a dead buffer panics naming
// the site that released it.

const debugQuarantine = true

// Debug reports whether the package was built with -tags bufdebug
// (misuse panics armed, released buffers quarantined — reuse off).
const Debug = true

type refDebug struct {
	released atomic.Value // string: "file:line" of the final Release
}

func callSite(skip int) string {
	_, file, line, ok := runtime.Caller(skip)
	if !ok {
		return "unknown"
	}
	return fmt.Sprintf("%s:%d", file, line)
}

func (r *Ref) checkLive(op string) {
	if r.refs.Load() <= 0 {
		panic(fmt.Sprintf("buf: %s of a released buffer%s", op, r.releaseSite()))
	}
}

func (r *Ref) noteGet() { r.dbg.released.Store("") }

// noteRelease records the call site of the final Release. Caller depth:
// noteRelease <- Release <- the leaking site.
func (r *Ref) noteRelease() { r.dbg.released.Store(callSite(3)) }

func (r *Ref) releaseSite() string {
	s, _ := r.dbg.released.Load().(string)
	if s == "" {
		return ""
	}
	return " (released at " + s + ")"
}
