// Package buf provides the pooled, refcounted payload buffers behind
// the zero-copy data path. The paper's communication layer transfers
// chunks between pre-registered RDMA memory regions that are reused for
// every SEND; the Go reproduction's analogue is a size-classed
// sync.Pool of []uint64 buffers with atomic reference counts, so one
// buffer can be shared between the Tx path, a duplicated delivery on a
// lossy wire, and Rx-side installation, and returns to the pool when
// the last holder releases it.
//
// Ownership discipline: Get returns a buffer with one reference, owned
// by the caller. Attaching it to an outbound message transfers that
// reference to the message; whoever consumes the message releases it
// (or adopts the buffer outright, taking over the reference). Any extra
// holder — e.g. the wire duplicating a delivery — must Retain before
// the original reference can be released. All Ref methods are safe on a
// nil receiver, so unpooled (NoPool) configurations simply carry nil
// refs through the same code paths.
//
// Building with -tags bufdebug arms misuse detection: double-release
// and use-after-release panic with the releasing call site, and
// released buffers are quarantined (never reused) so stale aliases
// cannot be masked by reuse.
package buf

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Size classes, in 8-byte words. Chunk payloads (ChunkWords: 128 in the
// chaos harness, 512 by default) and coalesce index lists (TxBurst: 16)
// all land in-class; anything larger is allocated raw and GC-managed.
var classSizes = [...]int{64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536}

func classFor(n int) int {
	for c, sz := range classSizes {
		if n <= sz {
			return c
		}
	}
	return -1
}

// Pool is a size-classed pool of refcounted buffers. The zero value is
// not usable; call NewPool.
type Pool struct {
	classes [len(classSizes)]sync.Pool

	hits        atomic.Int64 // Get satisfied by a recycled buffer
	misses      atomic.Int64 // Get that had to allocate
	retained    atomic.Int64 // extra references taken (Retain calls)
	outstanding atomic.Int64 // buffers leased and not yet fully released
}

// NewPool builds an empty pool.
func NewPool() *Pool { return &Pool{} }

// Get leases an n-word buffer holding one reference owned by the
// caller. The contents are unspecified (recycled buffers keep their old
// words); callers must fully overwrite the buffer before sharing it.
func (p *Pool) Get(n int) *Ref {
	if n <= 0 {
		panic(fmt.Sprintf("buf: Get(%d): size must be positive", n))
	}
	c := classFor(n)
	p.outstanding.Add(1)
	if c >= 0 {
		if v := p.classes[c].Get(); v != nil {
			r := v.(*Ref)
			r.words = r.words[:cap(r.words)][:n]
			r.refs.Store(1)
			r.noteGet()
			p.hits.Add(1)
			return r
		}
	}
	p.misses.Add(1)
	size := n
	if c >= 0 {
		size = classSizes[c]
	}
	r := &Ref{pool: p, class: c}
	r.words = make([]uint64, size)[:n]
	r.refs.Store(1)
	r.noteGet()
	return r
}

// Hits returns how many Gets were served by a recycled buffer.
func (p *Pool) Hits() int64 { return p.hits.Load() }

// Misses returns how many Gets had to allocate.
func (p *Pool) Misses() int64 { return p.misses.Load() }

// Retained returns how many extra references were taken.
func (p *Pool) Retained() int64 { return p.retained.Load() }

// Outstanding returns the number of buffers currently leased (Get minus
// final Release). Zero after a quiescent teardown means no holder
// leaked a reference.
func (p *Pool) Outstanding() int64 { return p.outstanding.Load() }

// Ref is one refcounted buffer. The words are shared by every holder;
// the last Release returns them to the pool.
type Ref struct {
	pool  *Pool
	words []uint64
	class int // size class index; -1 means raw (GC-managed on release)
	refs  atomic.Int32
	dbg   refDebug
}

// Words returns the buffer's word slice. The caller must hold a
// reference.
func (r *Ref) Words() []uint64 {
	if r == nil {
		return nil
	}
	r.checkLive("Words")
	return r.words
}

// Len returns the buffer length in words (0 for nil).
func (r *Ref) Len() int {
	if r == nil {
		return 0
	}
	return len(r.words)
}

// Retain takes an additional reference. Safe on nil (no-op).
func (r *Ref) Retain() {
	if r == nil {
		return
	}
	r.checkLive("Retain")
	r.refs.Add(1)
	r.pool.retained.Add(1)
}

// Release drops one reference; the last release returns the buffer to
// the pool. Safe on nil (no-op). Releasing more times than references
// were held panics (with the previous releasing call site under
// -tags bufdebug).
func (r *Ref) Release() {
	if r == nil {
		return
	}
	n := r.refs.Add(-1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("buf: double release of a buffer" + r.releaseSite())
	}
	r.noteRelease()
	r.pool.outstanding.Add(-1)
	if r.class < 0 || debugQuarantine {
		return // raw buffers and quarantined (bufdebug) buffers go to GC
	}
	r.pool.classes[r.class].Put(r)
}
