//go:build !bufdebug

package buf

// Release builds: misuse hooks compile to nothing, refDebug adds no
// state, and released buffers recycle normally.

const debugQuarantine = false

// Debug reports whether the package was built with -tags bufdebug
// (misuse panics armed, released buffers quarantined — reuse off).
const Debug = false

type refDebug struct{}

func (r *Ref) checkLive(string)    {}
func (r *Ref) noteGet()            {}
func (r *Ref) noteRelease()        {}
func (r *Ref) releaseSite() string { return "" }
