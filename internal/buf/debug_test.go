//go:build bufdebug

package buf

import (
	"strings"
	"testing"
)

// mustPanic runs fn and returns the panic message, failing if it
// returns normally.
func mustPanic(t *testing.T, fn func()) string {
	t.Helper()
	var msg string
	func() {
		defer func() {
			if r := recover(); r != nil {
				msg = r.(string)
			}
		}()
		fn()
	}()
	if msg == "" {
		t.Fatal("expected a panic")
	}
	return msg
}

func TestDoubleReleasePanicsWithSite(t *testing.T) {
	p := NewPool()
	r := p.Get(64)
	r.Release()
	msg := mustPanic(t, r.Release)
	if !strings.Contains(msg, "double release") {
		t.Fatalf("panic = %q, want double-release diagnosis", msg)
	}
	if !strings.Contains(msg, "released at") || !strings.Contains(msg, ".go:") {
		t.Fatalf("panic = %q, want the leaking call site (file:line)", msg)
	}
}

func TestUseAfterReleasePanics(t *testing.T) {
	p := NewPool()
	r := p.Get(64)
	r.Release()
	for name, fn := range map[string]func(){
		"Words":  func() { r.Words() },
		"Retain": func() { r.Retain() },
	} {
		msg := mustPanic(t, fn)
		if !strings.Contains(msg, name+" of a released buffer") {
			t.Fatalf("panic = %q, want %q use-after-release diagnosis", msg, name)
		}
		if !strings.Contains(msg, "released at") {
			t.Fatalf("panic = %q, want releasing call site", msg)
		}
	}
}

func TestQuarantinePreventsReuse(t *testing.T) {
	p := NewPool()
	r := p.Get(64)
	r.Release()
	r2 := p.Get(64)
	if r == r2 {
		t.Fatal("released buffer was recycled despite bufdebug quarantine")
	}
	if p.Hits() != 0 {
		t.Fatalf("Hits = %d, want 0 under quarantine", p.Hits())
	}
	r2.Release()
}
