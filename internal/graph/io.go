package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Edge-list I/O in the whitespace-separated "src dst [weight]" format
// used by SNAP and Graph500 reference datasets. Lines starting with
// '#' or '%' are comments. Vertex ids must be non-negative; the vertex
// count is max id + 1 unless a larger n is given.

// ReadEdgeList parses an unweighted edge list. n <= 0 infers the vertex
// count from the largest id seen.
func ReadEdgeList(r io.Reader, n int64) (*CSR, error) {
	srcs, dsts, _, maxID, err := parseEdges(r, false)
	if err != nil {
		return nil, err
	}
	if n <= 0 {
		n = maxID + 1
	}
	if maxID >= n {
		return nil, fmt.Errorf("graph: vertex id %d exceeds given n=%d", maxID, n)
	}
	return FromEdgeList(n, srcs, dsts), nil
}

// ReadWeightedEdgeList parses a weighted edge list ("src dst w" lines).
func ReadWeightedEdgeList(r io.Reader, n int64) (*WCSR, error) {
	srcs, dsts, ws, maxID, err := parseEdges(r, true)
	if err != nil {
		return nil, err
	}
	if n <= 0 {
		n = maxID + 1
	}
	if maxID >= n {
		return nil, fmt.Errorf("graph: vertex id %d exceeds given n=%d", maxID, n)
	}
	return FromWeightedEdgeList(n, srcs, dsts, ws), nil
}

func parseEdges(r io.Reader, weighted bool) (srcs, dsts []int64, ws []float64, maxID int64, err error) {
	maxID = -1
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		want := 2
		if weighted {
			want = 3
		}
		if len(fields) < want {
			return nil, nil, nil, 0, fmt.Errorf("graph: line %d: want %d fields, got %d", lineNo, want, len(fields))
		}
		s, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, nil, nil, 0, fmt.Errorf("graph: line %d: bad src: %v", lineNo, err)
		}
		d, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, nil, nil, 0, fmt.Errorf("graph: line %d: bad dst: %v", lineNo, err)
		}
		if s < 0 || d < 0 {
			return nil, nil, nil, 0, fmt.Errorf("graph: line %d: negative vertex id", lineNo)
		}
		srcs = append(srcs, s)
		dsts = append(dsts, d)
		if weighted {
			w, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, nil, nil, 0, fmt.Errorf("graph: line %d: bad weight: %v", lineNo, err)
			}
			ws = append(ws, w)
		}
		if s > maxID {
			maxID = s
		}
		if d > maxID {
			maxID = d
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, nil, 0, err
	}
	if maxID < 0 {
		return nil, nil, nil, 0, fmt.Errorf("graph: empty edge list")
	}
	return srcs, dsts, ws, maxID, nil
}

// WriteEdgeList emits the graph in "src dst" lines with a size header
// comment.
func (g *CSR) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %d vertices, %d edges\n", g.N, g.Edges())
	for u := int64(0); u < g.N; u++ {
		for _, v := range g.Neighbors(u) {
			fmt.Fprintf(bw, "%d %d\n", u, v)
		}
	}
	return bw.Flush()
}
