package graph

import (
	"testing"
	"testing/quick"
)

func TestFromEdgeList(t *testing.T) {
	g := FromEdgeList(4, []int64{0, 0, 1, 3}, []int64{1, 2, 2, 0})
	if g.Edges() != 4 {
		t.Fatalf("edges = %d, want 4", g.Edges())
	}
	if g.OutDegree(0) != 2 || g.OutDegree(1) != 1 || g.OutDegree(2) != 0 || g.OutDegree(3) != 1 {
		t.Fatalf("degrees wrong: %v", g.Offs)
	}
	nb := g.Neighbors(0)
	if len(nb) != 2 || nb[0] != 1 || nb[1] != 2 {
		t.Fatalf("neighbors(0) = %v", nb)
	}
}

func TestReverse(t *testing.T) {
	g := Path(5)
	r := g.Reverse()
	if r.Edges() != g.Edges() {
		t.Fatalf("reverse changed edge count")
	}
	for u := int64(1); u < 5; u++ {
		nb := r.Neighbors(u)
		if len(nb) != 1 || nb[0] != u-1 {
			t.Fatalf("reverse neighbors(%d) = %v", u, nb)
		}
	}
}

func TestReverseIsInvolution(t *testing.T) {
	g := RMAT(RMATConfig{Scale: 8, EdgeFactor: 4, A: 0.57, B: 0.19, C: 0.19, Seed: 7})
	rr := g.Reverse().Reverse()
	if rr.N != g.N || rr.Edges() != g.Edges() {
		t.Fatal("double reverse changed shape")
	}
	// Same multiset of edges per vertex.
	for u := int64(0); u < g.N; u++ {
		a, b := append([]int64(nil), g.Neighbors(u)...), append([]int64(nil), rr.Neighbors(u)...)
		if len(a) != len(b) {
			t.Fatalf("vertex %d degree changed", u)
		}
		ca := map[int64]int{}
		for _, x := range a {
			ca[x]++
		}
		for _, x := range b {
			ca[x]--
			if ca[x] < 0 {
				t.Fatalf("vertex %d edge multiset changed", u)
			}
		}
	}
}

func TestRMATShape(t *testing.T) {
	cfg := DefaultRMAT(10)
	g := RMAT(cfg)
	if g.N != 1024 {
		t.Fatalf("N = %d, want 1024", g.N)
	}
	if g.Edges() != 4*1024 {
		t.Fatalf("edges = %d, want 4096", g.Edges())
	}
	// R-MAT with a=0.57 is skewed: max degree far above average.
	var maxDeg int64
	for u := int64(0); u < g.N; u++ {
		if d := g.OutDegree(u); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 16 { // average is 4
		t.Errorf("max degree %d suggests no skew", maxDeg)
	}
}

func TestRMATDeterministic(t *testing.T) {
	a := RMAT(DefaultRMAT(8))
	b := RMAT(DefaultRMAT(8))
	if len(a.Dsts) != len(b.Dsts) {
		t.Fatal("non-deterministic edge count")
	}
	for i := range a.Dsts {
		if a.Dsts[i] != b.Dsts[i] {
			t.Fatal("non-deterministic edges for same seed")
		}
	}
}

func TestPartitionEdgeBalance(t *testing.T) {
	g := RMAT(DefaultRMAT(10))
	bounds := g.Partition(4)
	if bounds[0] != 0 || bounds[4] != g.N {
		t.Fatalf("bounds endpoints wrong: %v", bounds)
	}
	for p := 0; p < 4; p++ {
		if bounds[p] > bounds[p+1] {
			t.Fatalf("bounds not monotone: %v", bounds)
		}
	}
	// Each part's edges within 3x of even share (R-MAT is skewed, so
	// allow generous slack; what matters is it is not all in one part).
	total := g.Edges()
	for p := 0; p < 4; p++ {
		var e int64
		for u := bounds[p]; u < bounds[p+1]; u++ {
			e += g.OutDegree(u)
		}
		if e > total {
			t.Fatalf("part %d has more edges than total", p)
		}
	}
}

func TestOwnerOf(t *testing.T) {
	bounds := []int64{0, 10, 10, 25, 40}
	cases := map[int64]int{0: 0, 9: 0, 10: 2, 24: 2, 25: 3, 39: 3}
	for u, want := range cases {
		if got := OwnerOf(bounds, u); got != want {
			t.Errorf("OwnerOf(%d) = %d, want %d", u, got, want)
		}
	}
}

func TestHelpersShape(t *testing.T) {
	if g := Path(10); g.Edges() != 9 || g.OutDegree(9) != 0 {
		t.Error("Path shape wrong")
	}
	if g := Ring(10); g.Edges() != 10 || g.Neighbors(9)[0] != 0 {
		t.Error("Ring shape wrong")
	}
	if g := Star(10); g.Edges() != 9 || g.OutDegree(0) != 9 {
		t.Error("Star shape wrong")
	}
}

// Property: CSR construction preserves the edge multiset.
func TestCSRQuick(t *testing.T) {
	f := func(pairs []uint16) bool {
		const n = 64
		srcs := make([]int64, 0, len(pairs))
		dsts := make([]int64, 0, len(pairs))
		for _, p := range pairs {
			srcs = append(srcs, int64(p>>8)%n)
			dsts = append(dsts, int64(p&0xff)%n)
		}
		g := FromEdgeList(n, srcs, dsts)
		if g.Edges() != int64(len(srcs)) {
			return false
		}
		counts := map[[2]int64]int{}
		for i := range srcs {
			counts[[2]int64{srcs[i], dsts[i]}]++
		}
		for u := int64(0); u < n; u++ {
			for _, v := range g.Neighbors(u) {
				counts[[2]int64{u, v}]--
			}
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
