package graph

import (
	"testing"
)

func TestFromWeightedEdgeList(t *testing.T) {
	w := FromWeightedEdgeList(3,
		[]int64{0, 0, 1}, []int64{1, 2, 2}, []float64{0.5, 1.5, 2.5})
	if w.Edges() != 3 {
		t.Fatalf("edges = %d", w.Edges())
	}
	nb := w.Neighbors(0)
	ws := w.EdgeWeights(0)
	if len(nb) != 2 || len(ws) != 2 {
		t.Fatalf("vertex 0: %v / %v", nb, ws)
	}
	for k := range nb {
		if nb[k] == 1 && ws[k] != 0.5 {
			t.Errorf("edge 0->1 weight %v", ws[k])
		}
		if nb[k] == 2 && ws[k] != 1.5 {
			t.Errorf("edge 0->2 weight %v", ws[k])
		}
	}
	if w.EdgeWeights(1)[0] != 2.5 {
		t.Errorf("edge 1->2 weight %v", w.EdgeWeights(1)[0])
	}
}

func TestWeightCountMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromWeightedEdgeList(2, []int64{0}, []int64{1}, nil)
}

func TestRandomWeightsDeterministicAndBounded(t *testing.T) {
	g := Ring(64)
	a := RandomWeights(g, 2, 5, 9)
	b := RandomWeights(g, 2, 5, 9)
	for i := range a.Weights {
		if a.Weights[i] != b.Weights[i] {
			t.Fatal("same seed produced different weights")
		}
		if a.Weights[i] < 2 || a.Weights[i] >= 5 {
			t.Fatalf("weight %v outside [2,5)", a.Weights[i])
		}
	}
	c := RandomWeights(g, 2, 5, 10)
	same := true
	for i := range a.Weights {
		if a.Weights[i] != c.Weights[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical weights")
	}
}
