package graph

import "math/rand"

// WCSR is a directed graph with float64 edge weights in CSR form.
// Weights[k] belongs to edge Dsts[k].
type WCSR struct {
	CSR
	Weights []float64
}

// FromWeightedEdgeList builds a weighted CSR.
func FromWeightedEdgeList(n int64, srcs, dsts []int64, ws []float64) *WCSR {
	if len(ws) != len(srcs) {
		panic("graph: weight count mismatch")
	}
	g := &WCSR{}
	g.N = n
	g.Offs = make([]int64, n+1)
	g.Dsts = make([]int64, len(dsts))
	g.Weights = make([]float64, len(ws))
	for _, s := range srcs {
		g.Offs[s+1]++
	}
	for i := int64(1); i <= n; i++ {
		g.Offs[i] += g.Offs[i-1]
	}
	cursor := make([]int64, n)
	for i, s := range srcs {
		k := g.Offs[s] + cursor[s]
		g.Dsts[k] = dsts[i]
		g.Weights[k] = ws[i]
		cursor[s]++
	}
	return g
}

// EdgeWeights returns vertex u's out-edge weights, parallel to
// Neighbors(u).
func (g *WCSR) EdgeWeights(u int64) []float64 {
	return g.Weights[g.Offs[u]:g.Offs[u+1]]
}

// RandomWeights attaches uniform weights in [lo, hi) to an unweighted
// graph, deterministically per seed.
func RandomWeights(g *CSR, lo, hi float64, seed int64) *WCSR {
	rng := rand.New(rand.NewSource(seed))
	w := &WCSR{CSR: *g, Weights: make([]float64, g.Edges())}
	for i := range w.Weights {
		w.Weights[i] = lo + rng.Float64()*(hi-lo)
	}
	return w
}
