package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadEdgeList(t *testing.T) {
	in := `# a comment
% another comment
0 1
1 2

2 0
`
	g, err := ReadEdgeList(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || g.Edges() != 3 {
		t.Fatalf("shape = (%d vertices, %d edges)", g.N, g.Edges())
	}
	if g.Neighbors(0)[0] != 1 || g.Neighbors(2)[0] != 0 {
		t.Fatal("edges mangled")
	}
}

func TestReadEdgeListExplicitN(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1\n"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 10 {
		t.Fatalf("N = %d, want 10", g.N)
	}
	if _, err := ReadEdgeList(strings.NewReader("0 99\n"), 10); err == nil {
		t.Fatal("id beyond n should error")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"",         // empty
		"0\n",      // missing dst
		"a b\n",    // non-numeric
		"0 -1\n",   // negative id
		"# only\n", // comments only
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in), 0); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestReadWeightedEdgeList(t *testing.T) {
	in := "0 1 2.5\n1 0 0.5\n"
	w, err := ReadWeightedEdgeList(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.EdgeWeights(0)[0] != 2.5 || w.EdgeWeights(1)[0] != 0.5 {
		t.Fatalf("weights mangled: %v", w.Weights)
	}
	if _, err := ReadWeightedEdgeList(strings.NewReader("0 1\n"), 0); err == nil {
		t.Fatal("missing weight should error")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := RMAT(DefaultRMAT(7))
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf, g.N)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N != g.N || g2.Edges() != g.Edges() {
		t.Fatalf("round trip changed shape: (%d,%d) vs (%d,%d)",
			g2.N, g2.Edges(), g.N, g.Edges())
	}
	for u := int64(0); u < g.N; u++ {
		a, b := g.Neighbors(u), g2.Neighbors(u)
		if len(a) != len(b) {
			t.Fatalf("vertex %d degree changed", u)
		}
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("vertex %d edge %d changed", u, k)
			}
		}
	}
}
