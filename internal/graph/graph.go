// Package graph provides the graph substrate for the analytics engines:
// an in-memory CSR representation, the Graph500 R-MAT generator the
// paper uses for its rMat24 input, and vertex partitioning helpers.
package graph

import (
	"math/rand"
	"sort"
)

// CSR is a directed graph in compressed sparse row form.
type CSR struct {
	N    int64   // vertex count
	Offs []int64 // len N+1; edges of u are Dsts[Offs[u]:Offs[u+1]]
	Dsts []int64
}

// Edges returns the edge count.
func (g *CSR) Edges() int64 { return int64(len(g.Dsts)) }

// OutDegree returns vertex u's out-degree.
func (g *CSR) OutDegree(u int64) int64 { return g.Offs[u+1] - g.Offs[u] }

// Neighbors returns vertex u's out-neighbors (shared slice; read-only).
func (g *CSR) Neighbors(u int64) []int64 {
	return g.Dsts[g.Offs[u]:g.Offs[u+1]]
}

// FromEdgeList builds a CSR with n vertices from (src,dst) pairs.
// Duplicate edges are kept (R-MAT produces multi-edges, as Graph500
// specifies); self-loops are kept too.
func FromEdgeList(n int64, srcs, dsts []int64) *CSR {
	if len(srcs) != len(dsts) {
		panic("graph: src/dst length mismatch")
	}
	g := &CSR{N: n, Offs: make([]int64, n+1), Dsts: make([]int64, len(dsts))}
	for _, s := range srcs {
		g.Offs[s+1]++
	}
	for i := int64(1); i <= n; i++ {
		g.Offs[i] += g.Offs[i-1]
	}
	cursor := make([]int64, n)
	for i, s := range srcs {
		g.Dsts[g.Offs[s]+cursor[s]] = dsts[i]
		cursor[s]++
	}
	return g
}

// Reverse returns the transpose graph (in-edges become out-edges),
// used by pull-mode engines.
func (g *CSR) Reverse() *CSR {
	srcs := make([]int64, g.Edges())
	dsts := make([]int64, g.Edges())
	k := 0
	for u := int64(0); u < g.N; u++ {
		for _, v := range g.Neighbors(u) {
			srcs[k], dsts[k] = v, u
			k++
		}
	}
	return FromEdgeList(g.N, srcs, dsts)
}

// RMATConfig parameterizes the recursive matrix generator.
type RMATConfig struct {
	Scale      int     // vertices = 1 << Scale
	EdgeFactor int64   // edges = EdgeFactor << Scale (Graph500 default 16; the paper's rMat24 uses 4)
	A, B, C    float64 // quadrant probabilities (Graph500: 0.57, 0.19, 0.19)
	Seed       int64
}

// DefaultRMAT returns the paper's configuration at the given scale:
// 2^scale vertices and 4·2^scale edges (rMat24 has 2^24 vertices and
// 2^26 edges).
func DefaultRMAT(scale int) RMATConfig {
	return RMATConfig{Scale: scale, EdgeFactor: 4, A: 0.57, B: 0.19, C: 0.19, Seed: 42}
}

// RMAT generates a graph with the recursive-matrix model of Chakrabarti
// et al., as used by Graph500. Vertex ids are scrambled so degree does
// not correlate with id.
func RMAT(cfg RMATConfig) *CSR {
	n := int64(1) << cfg.Scale
	m := cfg.EdgeFactor * n
	rng := rand.New(rand.NewSource(cfg.Seed))
	srcs := make([]int64, m)
	dsts := make([]int64, m)
	for i := int64(0); i < m; i++ {
		var u, v int64
		for bit := cfg.Scale - 1; bit >= 0; bit-- {
			r := rng.Float64()
			switch {
			case r < cfg.A:
				// top-left: no bits set
			case r < cfg.A+cfg.B:
				v |= 1 << uint(bit)
			case r < cfg.A+cfg.B+cfg.C:
				u |= 1 << uint(bit)
			default:
				u |= 1 << uint(bit)
				v |= 1 << uint(bit)
			}
		}
		srcs[i], dsts[i] = u, v
	}
	// Scramble ids with a fixed permutation (Graph500 does this so the
	// generator's bit structure doesn't leak into vertex order).
	perm := rng.Perm(int(n))
	for i := range srcs {
		srcs[i] = int64(perm[srcs[i]])
		dsts[i] = int64(perm[dsts[i]])
	}
	return FromEdgeList(n, srcs, dsts)
}

// Partition splits vertex ids into `parts` contiguous ranges balanced by
// out-degree (edge-balanced, the way Gemini partitions). Returns bounds
// of length parts+1.
func (g *CSR) Partition(parts int) []int64 {
	bounds := make([]int64, parts+1)
	totalEdges := g.Edges()
	target := totalEdges / int64(parts)
	p := 1
	var acc int64
	for u := int64(0); u < g.N && p < parts; u++ {
		acc += g.OutDegree(u)
		if acc >= target*int64(p) {
			bounds[p] = u + 1
			p++
		}
	}
	for ; p < parts; p++ {
		bounds[p] = g.N
	}
	bounds[parts] = g.N
	return bounds
}

// OwnerOf returns the partition owning vertex u under bounds.
func OwnerOf(bounds []int64, u int64) int {
	return sort.Search(len(bounds), func(i int) bool { return bounds[i] > u }) - 1
}

// Path returns a simple directed path graph (testing helper).
func Path(n int64) *CSR {
	srcs := make([]int64, 0, n-1)
	dsts := make([]int64, 0, n-1)
	for u := int64(0); u < n-1; u++ {
		srcs = append(srcs, u)
		dsts = append(dsts, u+1)
	}
	return FromEdgeList(n, srcs, dsts)
}

// Ring returns a directed cycle (testing helper).
func Ring(n int64) *CSR {
	srcs := make([]int64, n)
	dsts := make([]int64, n)
	for u := int64(0); u < n; u++ {
		srcs[u], dsts[u] = u, (u+1)%n
	}
	return FromEdgeList(n, srcs, dsts)
}

// Star returns a star with hub 0 pointing at all other vertices.
func Star(n int64) *CSR {
	srcs := make([]int64, n-1)
	dsts := make([]int64, n-1)
	for u := int64(1); u < n; u++ {
		srcs[u-1], dsts[u-1] = 0, u
	}
	return FromEdgeList(n, srcs, dsts)
}
