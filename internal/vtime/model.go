package vtime

// Model holds the cost constants (all nanoseconds unless noted) used to
// charge virtual time for events in the simulated cluster. Network and
// memory constants default to the paper's testbed hardware (ConnectX-4
// 100 Gbps InfiniBand, 2 us 8-byte one-sided round trip, 128 GB/s DRAM).
// CPU path costs (fast-path hit, lock-based access, ...) are measured
// from the real implementation by Calibrate, so the model's relative CPU
// overheads are genuine properties of this code base rather than guesses.
//
// A nil *Model disables charging entirely; the hot paths test for that
// with a single branch, which keeps `go test -bench` wall-clock numbers
// meaningful as host measurements of the real code.
type Model struct {
	// Network.
	Wire         int64   // one-way wire+switch latency for a minimal message
	RTT8         int64   // one-sided 8-byte READ round trip (BCL's unit cost)
	BytesPerNs   float64 // NIC streaming bandwidth (100 Gbps = 12.5 B/ns)
	PostSend     int64   // CPU cost to post a work request (doorbell MMIO)
	PollCQ       int64   // CPU cost to reap a signaled completion
	SignalPeriod int64   // selective signaling period r (1 = always signal)
	WQE          int64   // CPU cost to append one work request to an already-rung doorbell

	// Node-side service times.
	RPCService  int64   // runtime-thread service time per protocol message
	LockService int64   // lock-table operation service time at the home node
	MemBPerNs   float64 // DRAM copy bandwidth for chunk fills/writebacks

	// Calibrated CPU path costs (filled in by Calibrate; zero means
	// "measure me" and Calibrate overwrites, nonzero values are kept).
	NativeAccess int64 // builtin []uint64 access (baseline for Fig 1)
	GeminiEdge   int64 // Gemini push: owner lookup + dense-buffer combine
	GetHit       int64 // DArray fast-path Get on a resident chunk
	SetHit       int64 // DArray fast-path Set
	ApplyHit     int64 // DArray fast-path Apply (CAS combine)
	PinAccess    int64 // DArray pinned Get/Set (no atomics)
	GamAccess    int64 // GAM lock-based access path (mutex + cache lookup)
	BclLocal     int64 // BCL local-partition access
	SlowFixed    int64 // fixed CPU portion of a slow-path miss (enqueue+wake)
}

// Default returns the paper-testbed model with calibration placeholders.
func Default() *Model {
	return &Model{
		Wire:         900,
		RTT8:         2000,
		BytesPerNs:   12.5,
		PostSend:     80,
		PollCQ:       120,
		SignalPeriod: 32,
		WQE:          20,
		RPCService:   250,
		LockService:  120,
		MemBPerNs:    8,
	}
}

// XferCost returns the virtual time to move size bytes across the NIC in
// one direction, excluding the fixed wire latency.
func (m *Model) XferCost(size int) int64 {
	if m.BytesPerNs <= 0 {
		return 0
	}
	return int64(float64(size) / m.BytesPerNs)
}

// CopyCost returns the virtual time for a local memory copy of size bytes.
func (m *Model) CopyCost(size int) int64 {
	if m.MemBPerNs <= 0 {
		return 0
	}
	return int64(float64(size) / m.MemBPerNs)
}

// SendCost returns the sender-side CPU cost for one work request under
// selective signaling: every request pays the doorbell, and one in every
// SignalPeriod requests pays a completion poll.
func (m *Model) SendCost() int64 {
	p := m.SignalPeriod
	if p < 1 {
		p = 1
	}
	return m.PostSend + m.PollCQ/p
}

// ChainCost returns the sender-side CPU cost of one work request chained
// onto an already-rung doorbell: the WQE is linked into the burst the Tx
// thread is posting, so the MMIO doorbell write is not paid again; only
// the WQE build and the selective-signaling completion share remain.
func (m *Model) ChainCost() int64 {
	p := m.SignalPeriod
	if p < 1 {
		p = 1
	}
	return m.WQE + m.PollCQ/p
}

// PostCost returns the cost of the i-th work request of a doorbell
// burst: the leader rings the doorbell (SendCost), followers chain
// (ChainCost). A burst of one is exactly the unbatched SendCost.
func (m *Model) PostCost(leader bool) int64 {
	if leader {
		return m.SendCost()
	}
	return m.ChainCost()
}
