package vtime

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("new clock = %d, want 0", c.Now())
	}
	c.Advance(5)
	c.Advance(7)
	if c.Now() != 12 {
		t.Fatalf("clock = %d, want 12", c.Now())
	}
}

func TestClockAdvanceTo(t *testing.T) {
	var c Clock
	c.Advance(100)
	c.AdvanceTo(50) // must not rewind
	if c.Now() != 100 {
		t.Fatalf("AdvanceTo rewound clock to %d", c.Now())
	}
	c.AdvanceTo(150)
	if c.Now() != 150 {
		t.Fatalf("AdvanceTo = %d, want 150", c.Now())
	}
}

func TestClockReset(t *testing.T) {
	var c Clock
	c.Advance(42)
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("Reset left clock at %d", c.Now())
	}
}

func TestResourceSerializes(t *testing.T) {
	var r Resource
	s1, e1 := r.Acquire(0, 10)
	if s1 != 0 || e1 != 10 {
		t.Fatalf("first acquire = [%d,%d], want [0,10]", s1, e1)
	}
	// Arriving earlier than busy-until must queue behind it.
	s2, e2 := r.Acquire(3, 10)
	if s2 != 10 || e2 != 20 {
		t.Fatalf("second acquire = [%d,%d], want [10,20]", s2, e2)
	}
	// Arriving after the resource is idle starts immediately.
	s3, e3 := r.Acquire(100, 5)
	if s3 != 100 || e3 != 105 {
		t.Fatalf("third acquire = [%d,%d], want [100,105]", s3, e3)
	}
}

func TestResourceReset(t *testing.T) {
	var r Resource
	r.Acquire(0, 1000)
	r.Reset()
	if got := r.Peek(); got != 0 {
		t.Fatalf("Peek after Reset = %d, want 0", got)
	}
}

// Property: under any interleaving, the total reserved service time is
// conserved — busyUntil after k acquisitions of service s arriving at
// time <= start is exactly k*s when all arrivals are at time 0.
func TestResourceConservation(t *testing.T) {
	const workers, per, service = 8, 64, 7
	var r Resource
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Acquire(0, service)
			}
		}()
	}
	wg.Wait()
	want := int64(workers * per * service)
	if got := r.Peek(); got != want {
		t.Fatalf("busyUntil = %d, want %d", got, want)
	}
}

// Property: for arrivals processed in non-decreasing virtual-time
// order, the backlog model coincides with classic max-plus — intervals
// never overlap and never start before the arrival time.
func TestResourceIntervalProperty(t *testing.T) {
	f := func(arrivals []uint16, services []uint8) bool {
		var r Resource
		n := len(arrivals)
		if len(services) < n {
			n = len(services)
		}
		times := make([]int64, n)
		for i := 0; i < n; i++ {
			times[i] = int64(arrivals[i])
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		prevEnd := int64(0)
		for i := 0; i < n; i++ {
			svc := int64(services[i])
			s, e := r.Acquire(times[i], svc)
			if s < times[i] || e != s+svc || s < prevEnd {
				return false
			}
			prevEnd = e
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Out-of-order arrivals must pay only genuine backlog, not clock drift:
// a request stamped far in the past, processed after one stamped far in
// the future, starts at its own arrival plus the queued service.
func TestResourceOutOfOrderNoDriftInflation(t *testing.T) {
	var r Resource
	r.Acquire(1_000_000, 100)  // a far-future-stamped request
	s, e := r.Acquire(10, 100) // early-stamped request processed later
	if s != 110 || e != 210 {
		t.Fatalf("early request got [%d,%d], want [110,210]", s, e)
	}
}

func TestModelXferCost(t *testing.T) {
	m := Default()
	if got := m.XferCost(125); got != 10 {
		t.Fatalf("XferCost(125) = %d, want 10 at 12.5 B/ns", got)
	}
	m.BytesPerNs = 0
	if got := m.XferCost(4096); got != 0 {
		t.Fatalf("XferCost with zero bandwidth = %d, want 0", got)
	}
}

func TestModelCopyCost(t *testing.T) {
	m := Default()
	if got := m.CopyCost(4096); got != 512 {
		t.Fatalf("CopyCost(4096) = %d, want 512 at 8 B/ns", got)
	}
}

func TestModelSendCostSelectiveSignaling(t *testing.T) {
	m := Default()
	m.PostSend, m.PollCQ = 100, 320
	m.SignalPeriod = 32
	if got := m.SendCost(); got != 110 {
		t.Fatalf("SendCost = %d, want 110", got)
	}
	m.SignalPeriod = 1 // always signal
	if got := m.SendCost(); got != 420 {
		t.Fatalf("SendCost (always signal) = %d, want 420", got)
	}
	m.SignalPeriod = 0 // treated as 1
	if got := m.SendCost(); got != 420 {
		t.Fatalf("SendCost (period 0) = %d, want 420", got)
	}
}

func TestNilModelSemantics(t *testing.T) {
	// Hot paths guard with `if m != nil`; ensure Default never returns nil
	// and placeholder CPU costs start at zero for calibration.
	m := Default()
	if m == nil {
		t.Fatal("Default returned nil")
	}
	if m.GetHit != 0 || m.GamAccess != 0 {
		t.Fatal("calibrated fields must default to zero")
	}
}
