// Package vtime provides the virtual-time engine used by the benchmark
// harness: per-thread virtual clocks, max-plus resource clocks, and the
// calibrated cost model.
//
// The repository runs the real concurrent implementation of every system
// (real atomics, real lock-free fast paths, real protocol message
// exchanges); vtime only decides how much *time* each event would have
// taken on the paper's testbed. Each application thread owns a Clock that
// advances by calibrated CPU costs as it executes the real code, and
// shared serialization points (a home node's runtime, a NIC link, a
// distributed lock) are Resources whose busy-until timestamps advance in
// max-plus fashion: start = max(arrival, busyUntil); end = start + service.
// This is the classic direct-execution simulation technique (Wisconsin
// Wind Tunnel, LogP), and it is what lets a single-core host produce
// multi-node scaling curves whose shape is governed by the same
// mechanisms — round trips, serialization, bandwidth — as real hardware.
package vtime

import "sync"

// Clock is a per-thread virtual clock. It is owned by exactly one
// goroutine and therefore needs no synchronization for Advance; other
// threads may only read it through Now on quiesced threads.
type Clock struct {
	ns int64
}

// Now returns the thread's current virtual time in nanoseconds.
func (c *Clock) Now() int64 { return c.ns }

// Advance adds d nanoseconds of local work to the clock.
func (c *Clock) Advance(d int64) { c.ns += d }

// AdvanceTo moves the clock forward to t if t is later; it models
// blocking until an event at virtual time t.
func (c *Clock) AdvanceTo(t int64) {
	if t > c.ns {
		c.ns = t
	}
}

// Reset rewinds the clock to zero (used between experiment phases).
func (c *Clock) Reset() { c.ns = 0 }

// Resource is a serialization point in the simulated system: a runtime
// thread, a NIC, a wire, a lock.
//
// It models a FIFO server with a backlog that drains in virtual time:
// a request arriving at `now` first drains backlog by the virtual time
// elapsed since the last arrival, then queues behind what remains. For
// requests processed in non-decreasing virtual-time order this is
// exactly the classic max-plus busy-until rule (start = max(now,
// busyUntil)); for requests whose *real* processing order is scrambled
// relative to their virtual timestamps — unavoidable when many
// simulated nodes share few host cores — the backlog form stays local:
// a late-arriving early-timestamped request pays only the genuine
// queueing backlog, not the drift between node clocks.
type Resource struct {
	mu      sync.Mutex
	lastVT  int64
	backlog int64
}

// Acquire reserves the resource for service nanoseconds for a request
// arriving at virtual time now, and returns the interval's start and
// end times.
func (r *Resource) Acquire(now, service int64) (start, end int64) {
	r.mu.Lock()
	if now > r.lastVT {
		r.backlog -= now - r.lastVT
		if r.backlog < 0 {
			r.backlog = 0
		}
		r.lastVT = now
	}
	start = now + r.backlog
	r.backlog += service
	end = start + service
	r.mu.Unlock()
	return start, end
}

// Peek returns the resource's effective horizon: the virtual time at
// which currently queued work completes.
func (r *Resource) Peek() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastVT + r.backlog
}

// Reset clears the resource (between experiment phases).
func (r *Resource) Reset() {
	r.mu.Lock()
	r.lastVT, r.backlog = 0, 0
	r.mu.Unlock()
}
