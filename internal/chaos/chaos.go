// Package chaos proves the coherence protocol survives adversity: it
// runs real workloads (microbench, PageRank, connected components, KVS
// YCSB-B) twice on identical cluster geometry — once on a perfect
// fabric, once over a seeded fault plan injecting loss, duplication,
// latency spikes, a link partition window, and a stalled node — and
// asserts the results are bit-identical. After the faulted run it
// quiesces, checks the paper's Table-1 coherence invariants with
// core.ValidateQuiesced, and verifies every cluster goroutine drained.
//
// Every failure report embeds the seed and the plan's deterministic
// fault log, so a flake replays exactly (see internal/fault for the
// determinism contract).
package chaos

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"darray/internal/cluster"
	"darray/internal/core"
	"darray/internal/fault"
	"darray/internal/vtime"
)

// Config parameterises a chaos run. Zero-valued fields take defaults
// (4 nodes, 1 thread, the calibrated vtime model, and the fault
// intensities of DefaultFaults). Set them explicitly to scale up.
type Config struct {
	Seed    int64
	Nodes   int
	Threads int          // application threads per node (micro and KVS workloads)
	Model   *vtime.Model // must be non-nil for vtime-keyed fault windows to fire

	// Fault intensities; <0 disables a knob that defaults to non-zero.
	Drop, Dup, Spike float64
	SpikeNs          int64

	// Schedule overrides. Nil means the DefaultFaults windows.
	Partitions []fault.Partition
	Stalls     []fault.Stall
	Targeted   []fault.DropRule

	// Cache geometry for the workload clusters: small enough to force
	// eviction and recall traffic through the faulty fabric.
	ChunkWords  int
	CacheChunks int

	// NoPool disables the zero-copy buffer pool (the allocate-per-message
	// ablation). Results must be bit-identical either way.
	NoPool bool

	// Ship selects the function-shipping mode ("" = "auto", "on",
	// "off"). Shipped ops are commutative, so results must be
	// bit-identical in every mode.
	Ship string

	// NoCC disables congestion-controlled streaming (the fixed-knob
	// ablation). Adaptive windows only reschedule traffic, so results
	// must be bit-identical either way.
	NoCC bool

	Out io.Writer // optional progress/trace output
}

func (cfg Config) fill() Config {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 4
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.Model == nil {
		cfg.Model = vtime.Default()
	}
	def := DefaultFaults(cfg.Seed, cfg.Nodes)
	if cfg.Drop == 0 {
		cfg.Drop = def.DropProb
	}
	if cfg.Dup == 0 {
		cfg.Dup = def.DupProb
	}
	if cfg.Spike == 0 {
		cfg.Spike = def.SpikeProb
		cfg.SpikeNs = def.SpikeNs
	}
	if cfg.Partitions == nil {
		cfg.Partitions = def.Partitions
	}
	if cfg.Stalls == nil {
		cfg.Stalls = def.Stalls
	}
	if cfg.ChunkWords <= 0 {
		cfg.ChunkWords = 128
	}
	if cfg.CacheChunks <= 0 {
		cfg.CacheChunks = 64
	}
	return cfg
}

// FaultConfig renders the chaos configuration as a fault plan config.
func (cfg Config) FaultConfig() fault.Config {
	f := fault.Config{
		Seed:       cfg.Seed,
		Nodes:      cfg.Nodes,
		Partitions: cfg.Partitions,
		Stalls:     cfg.Stalls,
		Targeted:   cfg.Targeted,
	}
	if cfg.Drop > 0 {
		f.DropProb = cfg.Drop
	}
	if cfg.Dup > 0 {
		f.DupProb = cfg.Dup
	}
	if cfg.Spike > 0 {
		f.SpikeProb = cfg.Spike
		f.SpikeNs = cfg.SpikeNs
	}
	return f
}

// DefaultFaults is the fault schedule behind the -chaos flag and the
// chaos test defaults: 2% drop, 1% duplication, 0.5% latency spikes,
// one partition window between nodes 1 and 2, and one stalled node.
// Satisfies the acceptance bar of >=1% loss plus a 2-node partition.
func DefaultFaults(seed int64, nodes int) fault.Config {
	cfg := fault.Config{
		Seed:     seed,
		Nodes:    nodes,
		DropProb: 0.02, DupProb: 0.01,
		SpikeProb: 0.005, SpikeNs: 20_000,
	}
	if nodes >= 3 {
		cfg.Partitions = []fault.Partition{{A: 1, B: 2, Start: 100_000, End: 600_000}}
	} else if nodes == 2 {
		cfg.Partitions = []fault.Partition{{A: 0, B: 1, Start: 100_000, End: 600_000}}
	}
	if nodes >= 2 {
		cfg.Stalls = []fault.Stall{{Node: nodes - 1, Start: 150_000, End: 400_000}}
	}
	return cfg
}

// Workload is a deterministic cluster job: Run executes it (internally
// calling c.Run with SPMD node functions), returns a fingerprint of the
// observable result, and hands back the core arrays it used so the
// harness can invariant-check them. The fingerprint must depend only on
// (threads, seed) — never on scheduling — so fault-free and faulted
// runs are comparable.
type Workload struct {
	Name string
	Run  func(c *cluster.Cluster, threads int, seed int64) (uint64, []*core.Array)
}

// Outcome summarises one chaos comparison.
type Outcome struct {
	Workload    string
	Seed        int64
	Fingerprint uint64
	FaultStats  fault.Stats
	FaultLog    string // deterministic; byte-identical across same-seed runs
}

// Run executes w fault-free and then under cfg's fault plan, comparing
// fingerprints and checking invariants and goroutine hygiene after each
// run. The returned error (if any) always names the seed.
func Run(w Workload, cfg Config) (*Outcome, error) {
	cfg = cfg.fill()
	base, err := runOnce(w, cfg, nil)
	if err != nil {
		return nil, fmt.Errorf("chaos %s seed=%d: fault-free run: %w", w.Name, cfg.Seed, err)
	}
	plan := fault.New(cfg.FaultConfig())
	got, err := runOnce(w, cfg, plan)
	out := &Outcome{
		Workload:    w.Name,
		Seed:        cfg.Seed,
		Fingerprint: base,
		FaultStats:  plan.Stats(),
		FaultLog:    plan.Log(),
	}
	if err != nil {
		return out, fmt.Errorf("chaos %s seed=%d: faulted run: %w\nfault log:\n%s",
			w.Name, cfg.Seed, err, plan.Log())
	}
	if got != base {
		return out, fmt.Errorf("chaos %s seed=%d: result diverged under faults: fault-free %016x, faulted %016x\nfault log:\n%s",
			w.Name, cfg.Seed, base, got, plan.Log())
	}
	if cfg.Out != nil {
		fmt.Fprintf(cfg.Out, "chaos %s seed=%d ok: fp=%016x faults: %s\n",
			w.Name, cfg.Seed, base, plan.Stats())
	}
	return out, nil
}

// runOnce builds a cluster (optionally over a fault plan), runs the
// workload, checks cluster health, the Table-1 invariants, and that
// every goroutine the cluster started has drained.
func runOnce(w Workload, cfg Config, plan *fault.Plan) (uint64, error) {
	before := runtime.NumGoroutine()
	c := cluster.New(cluster.Config{
		Nodes:          cfg.Nodes,
		Model:          cfg.Model,
		Faults:         plan,
		ChunkWords:     cfg.ChunkWords,
		CacheChunks:    cfg.CacheChunks,
		RuntimeThreads: 2,
		NoPool:         cfg.NoPool,
		Ship:           cfg.Ship,
		NoCC:           cfg.NoCC,
	})
	fp, arrays := w.Run(c, cfg.Threads, cfg.Seed)
	if err := c.Err(); err != nil {
		c.Close()
		return 0, fmt.Errorf("cluster degraded (the fault schedule must stay survivable): %w", err)
	}
	verr := validateArrays(arrays)
	pool := c.BufPool()
	c.Close()
	if verr != nil {
		return 0, verr
	}
	if pool != nil {
		if n := pool.Outstanding(); n != 0 {
			return 0, fmt.Errorf("buffer leak: %d pool buffers still referenced after close", n)
		}
	}
	if err := waitDrained(before); err != nil {
		return 0, err
	}
	return fp, nil
}

// validateArrays runs core.ValidateQuiesced over every array, retrying
// briefly: the workload's final barrier is out-of-band, so the last
// protocol acknowledgements may still be landing when it returns.
func validateArrays(arrays []*core.Array) error {
	var err error
	for attempt := 0; attempt < 100; attempt++ {
		err = nil
		for _, a := range arrays {
			if e := core.ValidateQuiesced(a.Instances()); e != nil {
				err = e
				break
			}
		}
		if err == nil {
			return nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return fmt.Errorf("coherence invariants: %w", err)
}

// waitDrained polls until the process goroutine count returns to the
// pre-cluster baseline (small slack for runtime-internal goroutines).
func waitDrained(baseline int) error {
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline+2 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("goroutine leak: %d before the cluster, %d after close", baseline, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
