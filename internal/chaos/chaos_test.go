package chaos_test

import (
	"testing"

	"darray/internal/chaos"
	"darray/internal/fabric"
	"darray/internal/fault"
	"darray/internal/vtime"
)

// The acceptance bar from the issue: each workload must produce results
// identical to its fault-free run under >=1% drop plus a two-node
// partition window, with the coherence invariants clean and zero
// goroutine leaks. chaos.Run checks all of that; the tests here pick
// the workloads and assert the schedule actually fired.

func runChaos(t *testing.T, w chaos.Workload, cfg chaos.Config) *chaos.Outcome {
	t.Helper()
	out, err := chaos.Run(w, cfg)
	if err != nil {
		t.Fatal(err) // chaos errors embed the seed and fault log
	}
	if out.FaultStats.Drops == 0 {
		t.Fatalf("seed %d: no drops injected: %+v", out.Seed, out.FaultStats)
	}
	t.Logf("seed %d fp=%016x faults: %s", out.Seed, out.Fingerprint, out.FaultStats)
	return out
}

func TestChaosMicrobench(t *testing.T) {
	for _, seed := range []int64{42, 1337} {
		out := runChaos(t, chaos.Microbench(2048, 300), chaos.Config{Seed: seed, Threads: 2})
		if out.FaultStats.PartitionBlocks == 0 {
			t.Errorf("seed %d: the partition window never fired: %+v", seed, out.FaultStats)
		}
	}
}

// TestChaosBulkRange pushes the pipelined bulk-transfer path (multiple
// outstanding chunk fetches, doorbell-batched and coalesced commands)
// through the default fault schedule: the fingerprint covers every
// node's GetRange read-back, so it must be bit-identical to the
// fault-free run with no goroutine leaks.
func TestChaosBulkRange(t *testing.T) {
	for _, seed := range []int64{42, 1337} {
		out := runChaos(t, chaos.BulkRange(4096), chaos.Config{Seed: seed, Threads: 2})
		if out.FaultStats.PartitionBlocks == 0 {
			t.Errorf("seed %d: the partition window never fired: %+v", seed, out.FaultStats)
		}
	}
}

func TestChaosPageRank(t *testing.T) {
	// Small chunks so the 256 vertices spread across all four nodes and
	// scatter traffic actually crosses the faulty links.
	runChaos(t, chaos.PageRank(8, 3), chaos.Config{Seed: 42, ChunkWords: 32})
}

func TestChaosConnectedComponents(t *testing.T) {
	runChaos(t, chaos.ConnectedComponents(8), chaos.Config{Seed: 42, ChunkWords: 32})
}

func TestChaosKVS(t *testing.T) {
	runChaos(t, chaos.KVS(256, 150), chaos.Config{Seed: 42, Threads: 2})
}

// TestChaosNoPoolAblation proves the zero-copy buffer pool is purely a
// memory-traffic optimisation: every workload must fingerprint
// bit-identically with the pool on and off (chaos.Run additionally
// leak-checks the pooled runs — zero outstanding references after
// close).
func TestChaosNoPoolAblation(t *testing.T) {
	workloads := []struct {
		w   chaos.Workload
		cfg chaos.Config
	}{
		{chaos.Microbench(2048, 300), chaos.Config{Seed: 42, Threads: 2}},
		{chaos.BulkRange(4096), chaos.Config{Seed: 42, Threads: 2}},
		{chaos.PageRank(8, 3), chaos.Config{Seed: 42, ChunkWords: 32}},
		{chaos.ConnectedComponents(8), chaos.Config{Seed: 42, ChunkWords: 32}},
		{chaos.KVS(256, 150), chaos.Config{Seed: 42, Threads: 2}},
	}
	for _, tc := range workloads {
		pooled := runChaos(t, tc.w, tc.cfg)
		ablated := tc.cfg
		ablated.NoPool = true
		noPool := runChaos(t, tc.w, ablated)
		if pooled.Fingerprint != noPool.Fingerprint {
			t.Errorf("%s: pooling changed the result: pooled %016x, NoPool %016x",
				tc.w.Name, pooled.Fingerprint, noPool.Fingerprint)
		}
	}
}

// TestChaosHotKeyShipModes proves function shipping is purely an
// execution-mode choice: the hot-key Operate/Apply workload — the
// traffic the adaptive estimator flips — must fingerprint
// bit-identically under ship off, on, and auto, each run over the
// default fault schedule (>=1% loss plus the partition window), with
// invariants clean and no leaks.
func TestChaosHotKeyShipModes(t *testing.T) {
	w := chaos.HotKey(2048, 300)
	var fps []uint64
	var blocks int64
	modes := []string{"off", "on", "auto"}
	// Shipping reshapes message timing and the race detector skews host
	// scheduling, so the default 100-600 µs partition window can miss
	// the 1<->2 traffic entirely; pin a window wide enough to catch it
	// in every mode while staying inside the retransmission budget
	// (~2.8 ms), so it heals transparently.
	parts := []fault.Partition{{A: 1, B: 2, Start: 50_000, End: 1_500_000}}
	for _, mode := range modes {
		out := runChaos(t, w, chaos.Config{Seed: 42, Threads: 2, Ship: mode, Partitions: parts})
		blocks += out.FaultStats.PartitionBlocks
		fps = append(fps, out.Fingerprint)
	}
	if blocks == 0 {
		t.Error("the partition window never fired in any shipping mode")
	}
	for i, fp := range fps {
		if fp != fps[0] {
			t.Errorf("shipping changed the result: ship=%s %016x, ship=%s %016x",
				modes[0], fps[0], modes[i], fp)
		}
	}
}

// TestChaosStreamContention drives the congestion-control tentpole's
// chaos bar: four concurrent bulk streams per node all crossing the
// same links under the default fault schedule (>=1% loss plus the
// partition window), once with adaptive windows and once with the
// fixed-knob NoCC ablation. Adaptive control only reschedules traffic,
// so both runs must fingerprint bit-identically to the fault-free run
// (chaos.Run also checks ValidateQuiesced, the pooled-buffer leak
// count, and goroutine drain after every run).
func TestChaosStreamContention(t *testing.T) {
	w := chaos.StreamContention(65536, 4)
	// The bulk streams pipeline aggressively, so virtual time advances
	// slower than in the RPC-heavy workloads; pin a partition window
	// wide enough that the 1<->2 streams are guaranteed to cross it
	// while staying inside the retransmission budget, so it heals.
	parts := []fault.Partition{{A: 1, B: 2, Start: 50_000, End: 1_500_000}}
	cfg := chaos.Config{Seed: 42, Partitions: parts}
	adaptive := runChaos(t, w, cfg)
	if adaptive.FaultStats.PartitionBlocks == 0 {
		t.Errorf("seed %d: the partition window never fired: %+v", adaptive.Seed, adaptive.FaultStats)
	}
	fixed := cfg
	fixed.NoCC = true
	noCC := runChaos(t, w, fixed)
	if adaptive.Fingerprint != noCC.Fingerprint {
		t.Errorf("congestion control changed the result: adaptive %016x, NoCC %016x",
			adaptive.Fingerprint, noCC.Fingerprint)
	}
}

// DefaultFaults must satisfy the acceptance bar by construction.
func TestChaosDefaultFaultsMeetBar(t *testing.T) {
	cfg := chaos.DefaultFaults(7, 4)
	if cfg.DropProb < 0.01 {
		t.Fatalf("default drop probability %g below the 1%% bar", cfg.DropProb)
	}
	if len(cfg.Partitions) == 0 {
		t.Fatal("default schedule has no partition window")
	}
	if cfg.Seed != 7 {
		t.Fatalf("seed not propagated: %d", cfg.Seed)
	}
}

// Reproducibility satellite: the same -chaos-seed must yield a
// byte-identical fault log. Concurrent workloads perturb per-link
// message sequences, so the contract is stated over a deterministic
// traversal sequence: scripted single-goroutine fabric traffic.
func TestChaosSeedReproducibility(t *testing.T) {
	script := func(seed int64) string {
		plan := fault.New(chaos.DefaultFaults(seed, 4))
		f := fabric.New(fabric.Config{Nodes: 4, Model: vtime.Default(), Faults: plan})
		defer f.Close()
		vt := int64(0)
		for i := 0; i < 400; i++ {
			from, to := i%4, (i+1+i/4)%4
			if from == to {
				continue
			}
			vt += 2_000 // march through the partition and stall windows
			ep := f.Endpoint(from)
			ep.Post(&fabric.Message{To: to, Kind: uint8(i % 7), VT: vt})
		}
		return plan.Log()
	}
	a, b := script(99), script(99)
	if a != b {
		t.Fatalf("seed 99: fault logs differ between identical runs:\n--- run 1:\n%s\n--- run 2:\n%s", a, b)
	}
	if c := script(100); c == a {
		t.Fatal("different seeds produced identical fault logs")
	}
}
