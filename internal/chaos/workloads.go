package chaos

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"darray/internal/cluster"
	"darray/internal/core"
	"darray/internal/engine"
	"darray/internal/graph"
	"darray/internal/kvs"
)

// The chaos workloads. Each is built so the observable result is a pure
// function of (threads, seed): concurrent mutations are either disjoint
// or commutative, and floating-point results are quantized far above
// combine-order noise, so a faulted run must fingerprint identically to
// a fault-free one.

// fnv64a over 8-byte words.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// mix64 is splitmix64's output stage: deterministic value material.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Microbench exercises the raw array protocol: striped Set/Get over the
// whole index space, commutative Operate traffic, and locked
// read-modify-writes contending across nodes. words is the array length;
// every thread issues opsPerThread Apply operations.
func Microbench(words int64, opsPerThread int) Workload {
	return Workload{
		Name: "microbench",
		Run: func(c *cluster.Cluster, threads int, seed int64) (uint64, []*core.Array) {
			var fp uint64
			var arrays []*core.Array
			c.Run(func(n *cluster.Node) {
				ctx0 := n.NewCtx(0)
				a := core.New(n, words)
				add := a.RegisterOp(core.OpAddU64)
				if n.ID() == 0 {
					arrays = []*core.Array{a}
				}
				c.Barrier(ctx0)

				// Owners seed their partitions with derived values.
				lo, hi := a.LocalRange()
				for i := lo; i < hi; i++ {
					a.Set(ctx0, i, mix64(uint64(i)^uint64(seed)))
				}
				c.Barrier(ctx0)

				// Commutative adds striped across every node's partition:
				// order never matters, so loss-hiding retransmission is the
				// only thing standing between this and a wrong sum.
				n.RunThreads(threads, func(ctx *cluster.Ctx) {
					stride := int64(c.Nodes() * threads)
					start := int64(n.ID()*threads + ctx.TID)
					for k := int64(0); k < int64(opsPerThread); k++ {
						i := (start + k*stride) % words
						a.Apply(ctx, add, i, mix64(uint64(k)+uint64(seed)*31))
					}
				})
				c.Barrier(ctx0)

				// Locked read-modify-writes on eight elements spread across
				// the homes: every thread of every node contends, additions
				// commute, the final values are exact.
				n.RunThreads(threads, func(ctx *cluster.Ctx) {
					for k := int64(0); k < 8; k++ {
						i := k * words / 8
						a.WLock(ctx, i)
						a.Set(ctx, i, a.Get(ctx, i)+uint64(n.ID()*threads+ctx.TID+1))
						a.Unlock(ctx, i)
					}
				})
				c.Barrier(ctx0)

				if n.ID() == 0 {
					h := fnvOffset
					for i := int64(0); i < words; i++ {
						h = fnvMix(h, a.Get(ctx0, i))
					}
					fp = h
				}
				c.Barrier(ctx0)
			})
			return fp, arrays
		},
	}
}

// HotKey hammers a few hot chunks with interleaved reads and
// commutative adds from every thread of every node — the traffic
// pattern the function-shipping path targets. Reads during the
// contention phase force Operated collapses on the cached path (and
// sharer invalidations on the shipped path) but their values are
// discarded; only post-barrier state enters the fingerprint. Under
// commutative adds that state is exact, so the full-scan fingerprint
// from node 0 must be bit-identical in every shipping mode, faulted or
// not. A final ApplyRange over the hot region drives the batched
// ship-op variant through the same faulty fabric.
func HotKey(words int64, opsPerThread int) Workload {
	return Workload{
		Name: "hot-key",
		Run: func(c *cluster.Cluster, threads int, seed int64) (uint64, []*core.Array) {
			var fp uint64
			var arrays []*core.Array
			c.Run(func(n *cluster.Node) {
				ctx0 := n.NewCtx(0)
				a := core.New(n, words)
				add := a.RegisterOp(core.OpAddU64)
				if n.ID() == 0 {
					arrays = []*core.Array{a}
				}
				c.Barrier(ctx0)

				// Owners seed their partitions with derived values.
				lo, hi := a.LocalRange()
				for i := lo; i < hi; i++ {
					a.Set(ctx0, i, mix64(uint64(i)^uint64(seed)))
				}
				c.Barrier(ctx0)

				// Hot mix: 7/8 of the traffic lands on the first sixteenth
				// of the array, every fourth op re-reads the element it is
				// about to bump (a read-modify-write), operands derive only
				// from (seed, worker, k).
				hot := words / 16
				if hot < 1 {
					hot = 1
				}
				n.RunThreads(threads, func(ctx *cluster.Ctx) {
					w := int64(n.ID()*threads + ctx.TID)
					rng := rand.New(rand.NewSource(seed ^ (w+1)*0x9e3779b9))
					for k := 0; k < opsPerThread; k++ {
						i := rng.Int63n(hot)
						if rng.Intn(8) == 0 {
							i = rng.Int63n(words)
						}
						if rng.Intn(4) == 0 {
							_ = a.Get(ctx, i) // discarded: state churn only
						}
						a.Apply(ctx, add, i, mix64(uint64(k)+uint64(w)*1315423911+uint64(seed)))
					}
				})
				c.Barrier(ctx0)

				// Batched variant: every node ApplyRanges the hot region
				// (commutative, so concurrent ranges still commute).
				vals := make([]uint64, hot)
				for i := range vals {
					vals[i] = mix64(uint64(i) + uint64(n.ID())*2654435761 + uint64(seed)*13)
				}
				a.ApplyRange(ctx0, add, 0, vals)
				c.Barrier(ctx0)

				if n.ID() == 0 {
					h := fnvOffset
					for i := int64(0); i < words; i++ {
						h = fnvMix(h, a.Get(ctx0, i))
					}
					fp = h
				}
				c.Barrier(ctx0)
			})
			return fp, arrays
		},
	}
}

// BulkRange streams multi-chunk GetRange/SetRange/ApplyRange transfers
// across node boundaries, so the pipelined bulk path, doorbell
// batching, and command coalescing all run over the faulty fabric.
// Writers stay disjoint (each node streams into exactly one partition),
// ApplyRange traffic is commutative, and every node folds its own
// GetRange read-back into the fingerprint — so a lost, duplicated, or
// reordered chunk fetch shows up as a fingerprint divergence, not just
// a wrong final state.
func BulkRange(words int64) Workload {
	return Workload{
		Name: "bulk-range",
		Run: func(c *cluster.Cluster, threads int, seed int64) (uint64, []*core.Array) {
			parts := make([]uint64, c.Nodes())
			var arrays []*core.Array
			c.Run(func(n *cluster.Node) {
				ctx0 := n.NewCtx(0)
				a := core.New(n, words)
				add := a.RegisterOp(core.OpAddU64)
				if n.ID() == 0 {
					arrays = []*core.Array{a}
				}
				c.Barrier(ctx0)

				// Each node streams one SetRange into its successor's whole
				// partition: multi-chunk, fully remote, disjoint writers.
				per := words / int64(c.Nodes())
				peer := int64((n.ID() + 1) % c.Nodes())
				src := make([]uint64, per)
				for i := range src {
					src[i] = mix64((uint64(peer*per) + uint64(i)) ^ uint64(seed))
				}
				a.SetRange(ctx0, peer*per, src)
				c.Barrier(ctx0)

				// Alternating rounds of commutative ApplyRange (every
				// thread of every node, over a window straddling two
				// partition boundaries) and full-array GetRange read-backs
				// folded into the fingerprint. The pipeline compresses
				// virtual time, so several rounds are needed to march the
				// traffic through the vtime-keyed partition and stall
				// windows; the read-back each round checks the bulk read
				// path itself, not just the final state.
				h := fnvOffset
				dst := make([]uint64, words)
				for r := 0; r < 4; r++ {
					n.RunThreads(threads, func(ctx *cluster.Ctx) {
						span := words / 2
						vals := make([]uint64, span)
						for i := range vals {
							vals[i] = mix64(uint64(i) + uint64(seed)*17 + uint64(r)*101)
						}
						a.ApplyRange(ctx, add, words/4, vals)
					})
					c.Barrier(ctx0)
					a.GetRange(ctx0, 0, dst)
					for _, v := range dst {
						h = fnvMix(h, v)
					}
					c.Barrier(ctx0)
				}
				parts[n.ID()] = h
			})
			h := fnvOffset
			for _, p := range parts {
				h = fnvMix(h, p)
			}
			return h, arrays
		},
	}
}

// StreamContention is the congestion-control chaos workload: `streams`
// concurrent bulk streams per node all cross the same links at once —
// every node's threads stream disjoint SetRange slices into the
// successor's partition and read them back with GetRange — while the
// fault plan injects loss, duplication, latency spikes, a partition
// window, and a stalled node. Each thread fingerprints only its own
// slice, and the per-(node, thread) digests are folded in fixed order,
// so the fingerprint depends on (threads, seed) alone: adaptive windows
// may reschedule the traffic arbitrarily against the fixed-knob
// ablation without moving it.
func StreamContention(words int64, streams int) Workload {
	return Workload{
		Name: fmt.Sprintf("stream-contention-%d", streams),
		Run: func(c *cluster.Cluster, threads int, seed int64) (uint64, []*core.Array) {
			parts := make([][]uint64, c.Nodes())
			var arrays []*core.Array
			c.Run(func(n *cluster.Node) {
				ctx0 := n.NewCtx(0)
				a := core.New(n, words)
				if n.ID() == 0 {
					arrays = []*core.Array{a}
				}
				parts[n.ID()] = make([]uint64, streams)
				c.Barrier(ctx0)

				// Thread s owns slice s of the successor partition: all
				// streams of this node contend for the same egress link
				// and the same home runtimes, concurrently.
				per := words / int64(c.Nodes())
				slice := per / int64(streams)
				peer := int64((n.ID() + 1) % c.Nodes())
				for round := 0; round < 3; round++ {
					r := round
					n.RunThreads(streams, func(ctx *cluster.Ctx) {
						base := peer*per + int64(ctx.TID)*slice
						src := make([]uint64, slice)
						for i := range src {
							src[i] = mix64(uint64(base) + uint64(i) + uint64(seed)*29 + uint64(r)*1009)
						}
						a.SetRange(ctx, base, src)
						dst := make([]uint64, slice)
						a.GetRange(ctx, base, dst)
						h := fnvOffset
						for _, v := range dst {
							h = fnvMix(h, v)
						}
						parts[n.ID()][ctx.TID] = fnvMix(parts[n.ID()][ctx.TID], h)
					})
					// Barrier between rounds: the next round overwrites the
					// same slices, so the read-back must settle first.
					c.Barrier(ctx0)
				}
			})
			h := fnvOffset
			for _, node := range parts {
				for _, p := range node {
					h = fnvMix(h, p)
				}
			}
			return h, arrays
		},
	}
}

// PageRank runs the real engine on an RMAT graph and fingerprints the
// ranks quantized to 1e-9: float combine order under Operate is
// scheduling-dependent, but its noise (~1e-16 relative) sits ten orders
// of magnitude below the quantum, while a lost or duplicated
// contribution lands orders of magnitude above it.
func PageRank(scale, iters int) Workload {
	csr := graph.RMAT(graph.DefaultRMAT(scale))
	return Workload{
		Name: "pagerank",
		Run: func(c *cluster.Cluster, threads int, seed int64) (uint64, []*core.Array) {
			parts := make([]uint64, c.Nodes())
			var arrays []*core.Array
			c.Run(func(n *cluster.Node) {
				ctx := n.NewCtx(0)
				eg := engine.NewGraph(n, csr)
				ranks := eg.PageRank(ctx, iters, false)
				h := fnvOffset
				for _, r := range ranks {
					h = fnvMix(h, uint64(int64(math.Round(r*1e9))))
				}
				parts[n.ID()] = h
				if n.ID() == 0 {
					arrays = eg.StateArrays()
				}
			})
			h := fnvOffset
			for _, p := range parts {
				h = fnvMix(h, p)
			}
			return h, arrays
		},
	}
}

// ConnectedComponents runs min-label propagation to a fixed point; the
// labels are integers, so the fingerprint is exact.
func ConnectedComponents(scale int) Workload {
	csr := graph.RMAT(graph.DefaultRMAT(scale))
	return Workload{
		Name: "cc",
		Run: func(c *cluster.Cluster, threads int, seed int64) (uint64, []*core.Array) {
			parts := make([]uint64, c.Nodes())
			var arrays []*core.Array
			c.Run(func(n *cluster.Node) {
				ctx := n.NewCtx(0)
				eg := engine.NewGraph(n, csr)
				labels, _ := eg.ConnectedComponents(ctx, false)
				h := fnvOffset
				for _, l := range labels {
					h = fnvMix(h, l)
				}
				parts[n.ID()] = h
				if n.ID() == 0 {
					arrays = eg.StateArrays()
				}
			})
			h := fnvOffset
			for _, p := range parts {
				h = fnvMix(h, p)
			}
			return h, arrays
		},
	}
}

func kvsKey(i int64) []byte {
	return []byte(fmt.Sprintf("k%07d", i))
}

func kvsVal(i, ver, seed int64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], mix64(uint64(i)*0x10001+uint64(ver)^uint64(seed)))
	return b[:]
}

// KVS is a YCSB-B-shaped workload (95% reads, 5% updates) over the
// paper's distributed hash table. Key ownership is striped per global
// worker, so every key's final value is decided by its single owner's
// program order — deterministic no matter how the runs interleave. The
// fingerprint is a full-keyspace scan from node 0.
func KVS(records int64, opsPerThread int) Workload {
	return Workload{
		Name: "kvs-ycsb-b",
		Run: func(c *cluster.Cluster, threads int, seed int64) (uint64, []*core.Array) {
			var fp uint64
			var arrays []*core.Array
			workers := int64(c.Nodes() * threads)
			cfg := kvs.Config{
				Buckets: records / 8,
				// Worst case 3 words per put (header + 7-byte key + 8-byte
				// value), 8x headroom for slab rounding and updates.
				ByteWords: 24 * (records + int64(opsPerThread)*workers),
			}
			c.Run(func(n *cluster.Node) {
				ctx0 := n.NewCtx(0)
				st := kvs.NewDArray(n, cfg)
				if n.ID() == 0 {
					e, b := st.WordStores()
					arrays = []*core.Array{e.(*core.Array), b.(*core.Array)}
				}
				c.Barrier(ctx0)

				// Load: worker w owns keys i with i % workers == w.
				n.RunThreads(threads, func(ctx *cluster.Ctx) {
					w := int64(n.ID()*threads + ctx.TID)
					for i := w; i < records; i += workers {
						st.Put(ctx, kvsKey(i), kvsVal(i, 0, seed))
					}
				})
				c.Barrier(ctx0)

				// Operate: reads anywhere, updates only to owned keys. The
				// rng stream depends only on (seed, worker), never timing.
				n.RunThreads(threads, func(ctx *cluster.Ctx) {
					w := int64(n.ID()*threads + ctx.TID)
					rng := rand.New(rand.NewSource(seed ^ (w+1)*2654435761))
					owned := (records - w + workers - 1) / workers
					ver := int64(0)
					for k := 0; k < opsPerThread; k++ {
						if rng.Intn(100) < 5 && owned > 0 {
							ver++
							i := w + rng.Int63n(owned)*workers
							st.Put(ctx, kvsKey(i), kvsVal(i, ver, seed))
						} else {
							st.Get(ctx, kvsKey(rng.Int63n(records)))
						}
					}
				})
				c.Barrier(ctx0)

				if n.ID() == 0 {
					h := fnvOffset
					for i := int64(0); i < records; i++ {
						v, err := st.Get(ctx0, kvsKey(i))
						if err != nil {
							h = fnvMix(h, ^uint64(0)) // missing-key sentinel
							continue
						}
						h = fnvMix(h, binary.LittleEndian.Uint64(v))
					}
					fp = h
				}
				c.Barrier(ctx0)
			})
			return fp, arrays
		},
	}
}
