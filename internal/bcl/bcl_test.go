package bcl

import (
	"testing"

	"darray/internal/cluster"
	"darray/internal/vtime"
)

func tc(t *testing.T, nodes int, model *vtime.Model) *cluster.Cluster {
	t.Helper()
	c := cluster.New(cluster.Config{Nodes: nodes, Model: model})
	t.Cleanup(c.Close)
	return c
}

func TestGetSet(t *testing.T) {
	c := tc(t, 3, nil)
	c.Run(func(n *cluster.Node) {
		a := New(n, 300)
		ctx := n.NewCtx(0)
		lo, hi := a.LocalRange()
		for i := lo; i < hi; i++ {
			a.Set(ctx, i, uint64(i)+1000)
		}
		c.Barrier(ctx)
		for i := int64(0); i < a.Len(); i++ {
			if got := a.Get(ctx, i); got != uint64(i)+1000 {
				t.Errorf("a[%d] = %d, want %d", i, got, i+1000)
				return
			}
		}
		c.Barrier(ctx)
	})
}

func TestNoCacheEveryRemoteAccessIsARoundTrip(t *testing.T) {
	c := tc(t, 2, vtime.Default())
	c.Run(func(n *cluster.Node) {
		a := New(n, 200)
		ctx := n.NewCtx(0)
		c.Barrier(ctx)
		if n.ID() == 0 {
			before := ctx.Clock.Now()
			const reps = 10
			for k := 0; k < reps; k++ {
				a.Get(ctx, 150) // same remote element, no caching
			}
			rtt := c.Model().RTT8
			if got := ctx.Clock.Now() - before; got < reps*rtt {
				t.Errorf("10 repeated remote reads cost %d ns, want >= %d", got, reps*rtt)
			}
			if ctx.Stats.Remote != reps {
				t.Errorf("remote ops = %d, want %d", ctx.Stats.Remote, reps)
			}
		}
		c.Barrier(ctx)
	})
}

func TestFetchAdd(t *testing.T) {
	const nodes, iters = 3, 60
	c := tc(t, nodes, nil)
	c.Run(func(n *cluster.Node) {
		a := New(n, 300)
		ctx := n.NewCtx(0)
		c.Barrier(ctx)
		for k := 0; k < iters; k++ {
			a.FetchAdd(ctx, 7, 1)
		}
		c.Barrier(ctx)
		if got := a.Get(ctx, 7); got != nodes*iters {
			t.Errorf("counter = %d, want %d", got, nodes*iters)
		}
		c.Barrier(ctx)
	})
}

func TestGetBulkCrossesPartitions(t *testing.T) {
	c := tc(t, 3, nil)
	c.Run(func(n *cluster.Node) {
		a := New(n, 300)
		ctx := n.NewCtx(0)
		lo, hi := a.LocalRange()
		for i := lo; i < hi; i++ {
			a.Set(ctx, i, uint64(i))
		}
		c.Barrier(ctx)
		dst := make([]uint64, 250)
		a.GetBulk(ctx, 25, dst) // spans all three partitions
		for k, v := range dst {
			if v != uint64(25+k) {
				t.Errorf("bulk[%d] = %d, want %d", k, v, 25+k)
				return
			}
		}
		c.Barrier(ctx)
	})
}

func TestHomeOf(t *testing.T) {
	c := tc(t, 4, nil)
	c.Run(func(n *cluster.Node) {
		a := New(n, 400)
		for i := int64(0); i < 400; i++ {
			want := int(i / 100)
			if got := a.HomeOf(i); got != want {
				t.Errorf("HomeOf(%d) = %d, want %d", i, got, want)
				return
			}
		}
	})
}

func TestBoundsPanic(t *testing.T) {
	c := tc(t, 1, nil)
	c.Run(func(n *cluster.Node) {
		a := New(n, 10)
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		a.Get(n.NewCtx(0), -1)
	})
}
