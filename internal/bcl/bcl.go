// Package bcl implements the BCL baseline (Brock et al., ICPP 2019): a
// PGAS distributed array without a cache. Every access to a remote
// partition maps directly to a one-sided RMA operation, so remote
// latency is a full network round trip regardless of locality — the
// defining property the paper's Figures 1, 12, 13 and 18 exercise.
package bcl

import (
	"fmt"
	"sync/atomic"

	"darray/internal/cluster"
	"darray/internal/fabric"
	"darray/internal/vtime"
)

type shared struct {
	id     uint32
	n      int64
	starts []int64 // starts[v] = first element homed on node v
	insts  []*Array
}

// Array is one node's handle to a BCL-style distributed array.
type Array struct {
	sh    *shared
	node  *cluster.Node
	ep    *fabric.Endpoint
	model *vtime.Model
	local []uint64
}

// New collectively creates a BCL array of n words, evenly partitioned.
func New(node *cluster.Node, n int64) *Array {
	if n <= 0 {
		panic("bcl: array length must be positive")
	}
	c := node.Cluster()
	shAny := node.Collective(func() any {
		sh := &shared{id: c.NextArrayID(), n: n}
		nodes := int64(c.Nodes())
		per := (n + nodes - 1) / nodes
		sh.starts = make([]int64, nodes+1)
		for v := int64(0); v <= nodes; v++ {
			s := v * per
			if s > n {
				s = n
			}
			sh.starts[v] = s
		}
		sh.insts = make([]*Array, nodes)
		for v := int64(0); v < nodes; v++ {
			nd := c.Node(int(v))
			a := &Array{sh: sh, node: nd, ep: nd.Endpoint(), model: c.Model()}
			a.local = make([]uint64, sh.starts[v+1]-sh.starts[v])
			nd.Endpoint().RegisterMR(sh.id, a.local)
			sh.insts[v] = a
		}
		return sh
	})
	sh := shAny.(*shared)
	a := sh.insts[node.ID()]
	c.Barrier(nil)
	return a
}

// Len returns the global element count.
func (a *Array) Len() int64 { return a.sh.n }

// Node returns this handle's node.
func (a *Array) Node() *cluster.Node { return a.node }

// LocalRange returns the element range homed on this node.
func (a *Array) LocalRange() (lo, hi int64) {
	v := a.node.ID()
	return a.sh.starts[v], a.sh.starts[v+1]
}

// HomeOf returns the node homing element i.
func (a *Array) HomeOf(i int64) int {
	if i < 0 || i >= a.sh.n {
		panic(fmt.Sprintf("bcl: index %d out of range [0,%d)", i, a.sh.n))
	}
	s := a.sh.starts
	lo, hi := 0, len(s)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if s[mid] <= i {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

func (a *Array) chargeLocal(ctx *cluster.Ctx) {
	if a.model != nil {
		ctx.Clock.Advance(a.model.BclLocal)
	}
}

// Get reads element i: a direct load locally, a one-sided READ remotely.
func (a *Array) Get(ctx *cluster.Ctx, i int64) uint64 {
	ctx.Stats.Ops++
	home := a.HomeOf(i)
	off := i - a.sh.starts[home]
	if home == a.node.ID() {
		ctx.Stats.Hits++
		a.chargeLocal(ctx)
		return atomic.LoadUint64(&a.local[off])
	}
	ctx.Stats.Remote++
	v, err := a.ep.ReadWord(&ctx.Clock, home, a.sh.id, off)
	if err != nil {
		ctx.Fail(err)
		return 0
	}
	return v
}

// Set writes element i: a direct store locally, a one-sided WRITE
// remotely.
func (a *Array) Set(ctx *cluster.Ctx, i int64, v uint64) {
	ctx.Stats.Ops++
	home := a.HomeOf(i)
	off := i - a.sh.starts[home]
	if home == a.node.ID() {
		ctx.Stats.Hits++
		a.chargeLocal(ctx)
		atomic.StoreUint64(&a.local[off], v)
		return
	}
	ctx.Stats.Remote++
	if err := a.ep.WriteWord(&ctx.Clock, home, a.sh.id, off, v); err != nil {
		ctx.Fail(err)
	}
}

// FetchAdd atomically adds v to element i using remote atomics (one CAS
// round trip per retry), the way BCL maps read-modify-write to RMA.
func (a *Array) FetchAdd(ctx *cluster.Ctx, i int64, v uint64) uint64 {
	ctx.Stats.Ops++
	home := a.HomeOf(i)
	off := i - a.sh.starts[home]
	if home == a.node.ID() {
		ctx.Stats.Hits++
		a.chargeLocal(ctx)
		return atomic.AddUint64(&a.local[off], v) - v
	}
	for {
		old, err := a.ep.ReadWord(&ctx.Clock, home, a.sh.id, off)
		if err != nil {
			ctx.Fail(err)
			return 0
		}
		ok, err := a.ep.CompareAndSwap(&ctx.Clock, home, a.sh.id, off, old, old+v)
		if err != nil {
			ctx.Fail(err)
			return 0
		}
		if ok {
			ctx.Stats.Remote++
			return old
		}
	}
}

// GetBulk reads n consecutive elements starting at i into dst with as
// few RMA operations as partition boundaries allow.
func (a *Array) GetBulk(ctx *cluster.Ctx, i int64, dst []uint64) {
	for len(dst) > 0 {
		home := a.HomeOf(i)
		off := i - a.sh.starts[home]
		avail := a.sh.starts[home+1] - i
		n := int64(len(dst))
		if n > avail {
			n = avail
		}
		if home == a.node.ID() {
			for k := int64(0); k < n; k++ {
				dst[k] = atomic.LoadUint64(&a.local[off+k])
			}
			a.chargeLocal(ctx)
		} else {
			if err := a.ep.ReadWords(&ctx.Clock, home, a.sh.id, off, dst[:n]); err != nil {
				ctx.Fail(err)
				return
			}
			ctx.Stats.Remote++
		}
		ctx.Stats.Ops++
		dst = dst[n:]
		i += n
	}
}
