// Package fabric simulates an RDMA network: per-node endpoints (RNICs)
// connected by full-duplex links, two-sided SEND/RECV message delivery
// with per-queue-pair FIFO ordering, one-sided READ/WRITE/CAS verbs
// against registered memory regions, and the cost accounting the paper's
// communication layer relies on (selective signaling, doorbell posts,
// bandwidth serialization on links).
//
// Functionally the fabric is an in-process message switch; temporally it
// charges virtual time (see internal/vtime): every message carries the
// virtual instant it becomes visible at the receiver, computed from the
// sender's ready time, the per-direction link bandwidth resource, and the
// wire latency. One-sided verbs block the caller and advance the caller's
// clock by a full round trip, exactly like a synchronous ibv_post_send +
// completion poll.
package fabric

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"darray/internal/queue"
	"darray/internal/telemetry"
	"darray/internal/vtime"
)

// Message is one two-sided SEND. The payload layout (Kind, Chunk, ...)
// belongs to the protocol layers; the fabric only reads From/To/Data
// sizes and the VT stamps.
type Message struct {
	From, To int
	Array    uint32 // which distributed array / data structure instance
	Kind     uint8  // protocol message kind (opaque here)
	Chunk    int64
	OpID     int32
	Seq      uint32
	Idx      int64
	Val      uint64
	Flag     bool
	Data     []uint64 // chunk payload, if any

	// VT is the virtual time at which the message is visible at the
	// receiver. Senders set SendVT (their ready time); Post fills VT.
	VT     int64
	SendVT int64
}

const msgHeaderBytes = 64 // wire size of a payload-free protocol message

// Bytes returns the message's wire size.
func (m *Message) Bytes() int { return msgHeaderBytes + 8*len(m.Data) }

// MaxMsgKinds bounds the per-kind message counters; protocol kinds are
// small consecutive integers (core uses 15), so 32 leaves headroom.
const MaxMsgKinds = 32

// Counters aggregates per-endpoint traffic statistics: aggregate
// message/byte totals, per-message-kind counts, and per-verb one-sided
// operation counts.
type Counters struct {
	MsgsSent     atomic.Int64
	BytesSent    atomic.Int64
	OneSidedOps  atomic.Int64
	OneSidedByte atomic.Int64

	// One-sided verbs, by type.
	Reads  atomic.Int64
	Writes atomic.Int64
	CASs   atomic.Int64

	perKind [MaxMsgKinds]atomic.Int64
}

// KindCount returns how many messages of protocol kind k were sent.
func (c *Counters) KindCount(k uint8) int64 {
	if int(k) >= MaxMsgKinds {
		return 0
	}
	return c.perKind[k].Load()
}

// Report renders the counters human-readably. namer maps protocol
// message kinds to names (nil falls back to "kind-N"); the fabric treats
// kinds as opaque, so the protocol layer supplies the vocabulary.
func (c *Counters) Report(namer func(uint8) string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "msgs=%d bytes=%d one-sided: ops=%d (read=%d write=%d cas=%d) bytes=%d",
		c.MsgsSent.Load(), c.BytesSent.Load(), c.OneSidedOps.Load(),
		c.Reads.Load(), c.Writes.Load(), c.CASs.Load(), c.OneSidedByte.Load())
	first := true
	for k := 0; k < MaxMsgKinds; k++ {
		n := c.perKind[k].Load()
		if n == 0 {
			continue
		}
		if first {
			b.WriteString("\n  per-kind:")
			first = false
		}
		name := ""
		if namer != nil {
			name = namer(uint8(k))
		}
		if name == "" {
			name = fmt.Sprintf("kind-%d", k)
		}
		fmt.Fprintf(&b, " %s=%d", name, n)
	}
	return b.String()
}

// Config describes a fabric instance.
type Config struct {
	Nodes int
	Model *vtime.Model // nil disables virtual-time charging
}

// Fabric connects Nodes endpoints.
type Fabric struct {
	cfg Config
	eps []*Endpoint
}

// New builds a fabric with cfg.Nodes endpoints.
func New(cfg Config) *Fabric {
	if cfg.Nodes <= 0 {
		panic("fabric: Nodes must be positive")
	}
	f := &Fabric{cfg: cfg}
	f.eps = make([]*Endpoint, cfg.Nodes)
	for i := range f.eps {
		f.eps[i] = &Endpoint{
			fab:       f,
			id:        i,
			rx:        queue.NewMPSC[*Message](),
			tx:        make([]vtime.Resource, cfg.Nodes),
			linkBytes: make([]telemetry.Histogram, cfg.Nodes),
			mrs:       make(map[uint32][]uint64),
			stop:      make(chan struct{}),
		}
	}
	return f
}

// Endpoint returns node id's NIC.
func (f *Fabric) Endpoint(id int) *Endpoint { return f.eps[id] }

// Nodes returns the endpoint count.
func (f *Fabric) Nodes() int { return f.cfg.Nodes }

// Model returns the fabric's virtual-time model (may be nil).
func (f *Fabric) Model() *vtime.Model { return f.cfg.Model }

// Close releases all endpoints, waking any parked receivers.
func (f *Fabric) Close() {
	for _, ep := range f.eps {
		ep.closeOnce.Do(func() { close(ep.stop) })
	}
}

// Endpoint is one node's simulated RNIC.
type Endpoint struct {
	fab *Fabric
	id  int

	rx *queue.MPSC[*Message]
	tx []vtime.Resource // per-destination egress bandwidth resource

	// linkBytes[dst] is the byte-size distribution of messages sent on
	// the (this endpoint -> dst) link.
	linkBytes []telemetry.Histogram

	mrMu sync.RWMutex
	mrs  map[uint32][]uint64 // registered memory regions, by key

	stats     Counters
	stop      chan struct{}
	closeOnce sync.Once
}

// ID returns the node id of this endpoint.
func (e *Endpoint) ID() int { return e.id }

// Stats exposes the endpoint's traffic counters.
func (e *Endpoint) Stats() *Counters { return &e.stats }

// LinkBytes exposes the byte histogram of the (this endpoint -> dst)
// link.
func (e *Endpoint) LinkBytes(dst int) *telemetry.Histogram { return &e.linkBytes[dst] }

// RegisterMR registers a memory region for one-sided access under key.
// Keys are global per node (array id, typically).
func (e *Endpoint) RegisterMR(key uint32, words []uint64) {
	e.mrMu.Lock()
	defer e.mrMu.Unlock()
	e.mrs[key] = words
}

// DeregisterMR removes a region.
func (e *Endpoint) DeregisterMR(key uint32) {
	e.mrMu.Lock()
	defer e.mrMu.Unlock()
	delete(e.mrs, key)
}

func (e *Endpoint) region(key uint32) []uint64 {
	e.mrMu.RLock()
	defer e.mrMu.RUnlock()
	r, ok := e.mrs[key]
	if !ok {
		panic(fmt.Sprintf("fabric: node %d has no MR %d", e.id, key))
	}
	return r
}

// Post transmits m as a two-sided SEND. m.SendVT must hold the sender's
// virtual ready time (0 when no model). Delivery preserves per-pair FIFO
// because each node posts from a single Tx goroutine.
func (e *Endpoint) Post(m *Message) {
	m.From = e.id
	dst := e.fab.eps[m.To]
	if mdl := e.fab.cfg.Model; mdl != nil {
		_, end := e.tx[m.To].Acquire(m.SendVT, mdl.XferCost(m.Bytes()))
		m.VT = end + mdl.Wire
	}
	e.stats.MsgsSent.Add(1)
	e.stats.BytesSent.Add(int64(m.Bytes()))
	if int(m.Kind) < MaxMsgKinds {
		e.stats.perKind[m.Kind].Add(1)
	}
	e.linkBytes[m.To].Observe(int64(m.Bytes()))
	dst.rx.Push(m)
}

// Poll retrieves one received message without blocking.
func (e *Endpoint) Poll() (*Message, bool) { return e.rx.Pop() }

// PollWait blocks until a message arrives or the fabric is closed.
func (e *Endpoint) PollWait() (*Message, bool) { return e.rx.PopWait(e.stop) }

// Done exposes the endpoint's close channel (for Rx loops that select).
func (e *Endpoint) Done() <-chan struct{} { return e.stop }

// roundTrip charges clock for a one-sided verb moving n payload bytes and
// returns after the virtual round trip completes.
func (e *Endpoint) roundTrip(clock *vtime.Clock, to int, bytes int) {
	e.stats.OneSidedOps.Add(1)
	e.stats.OneSidedByte.Add(int64(bytes))
	mdl := e.fab.cfg.Model
	if mdl == nil || clock == nil {
		return
	}
	_, end := e.tx[to].Acquire(clock.Now()+mdl.SendCost(), mdl.XferCost(bytes))
	clock.AdvanceTo(end + mdl.RTT8 + mdl.PollCQ)
}

// ReadWord performs a one-sided 8-byte READ from (node to, region key,
// word offset off).
func (e *Endpoint) ReadWord(clock *vtime.Clock, to int, key uint32, off int64) uint64 {
	e.stats.Reads.Add(1)
	e.roundTrip(clock, to, 8)
	r := e.fab.eps[to].region(key)
	return atomic.LoadUint64(&r[off])
}

// WriteWord performs a one-sided 8-byte WRITE.
func (e *Endpoint) WriteWord(clock *vtime.Clock, to int, key uint32, off int64, v uint64) {
	e.stats.Writes.Add(1)
	e.roundTrip(clock, to, 8)
	r := e.fab.eps[to].region(key)
	atomic.StoreUint64(&r[off], v)
}

// CompareAndSwap performs a one-sided atomic CAS (used by baselines for
// remote read-modify-write without a coherence protocol).
func (e *Endpoint) CompareAndSwap(clock *vtime.Clock, to int, key uint32, off int64, old, new uint64) bool {
	e.stats.CASs.Add(1)
	e.roundTrip(clock, to, 8)
	r := e.fab.eps[to].region(key)
	return atomic.CompareAndSwapUint64(&r[off], old, new)
}

// ReadWords performs a one-sided READ of n words into dst.
func (e *Endpoint) ReadWords(clock *vtime.Clock, to int, key uint32, off int64, dst []uint64) {
	e.stats.Reads.Add(1)
	e.roundTrip(clock, to, 8*len(dst))
	r := e.fab.eps[to].region(key)
	for i := range dst {
		dst[i] = atomic.LoadUint64(&r[off+int64(i)])
	}
}

// WriteWords performs a one-sided WRITE of src.
func (e *Endpoint) WriteWords(clock *vtime.Clock, to int, key uint32, off int64, src []uint64) {
	e.stats.Writes.Add(1)
	e.roundTrip(clock, to, 8*len(src))
	r := e.fab.eps[to].region(key)
	for i, v := range src {
		atomic.StoreUint64(&r[off+int64(i)], v)
	}
}
