// Package fabric simulates an RDMA network: per-node endpoints (RNICs)
// connected by full-duplex links, two-sided SEND/RECV message delivery
// with per-queue-pair FIFO ordering, one-sided READ/WRITE/CAS verbs
// against registered memory regions, and the cost accounting the paper's
// communication layer relies on (selective signaling, doorbell posts,
// bandwidth serialization on links).
//
// Functionally the fabric is an in-process message switch; temporally it
// charges virtual time (see internal/vtime): every message carries the
// virtual instant it becomes visible at the receiver, computed from the
// sender's ready time, the per-direction link bandwidth resource, and the
// wire latency. One-sided verbs block the caller and advance the caller's
// clock by a full round trip, exactly like a synchronous ibv_post_send +
// completion poll.
//
// When a fault.Plan is configured the wire underneath becomes lossy, and
// the fabric behaves like an RC (reliable-connection) queue pair above
// it: per-pair sequence numbers with go-back-N retransmission hide loss
// from the protocol (charged as virtual-time penalty and counted in
// Retransmits), duplicates are discarded at the receiver, and only an
// exhausted retry budget — a peer unreachable longer than the
// retransmission schedule covers — surfaces as ErrRetryExceeded, exactly
// the contract a real RNIC gives software. See DESIGN.md "Fault model".
package fabric

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"darray/internal/buf"
	"darray/internal/fault"
	"darray/internal/queue"
	"darray/internal/telemetry"
	"darray/internal/vtime"
)

// Completion errors. A real RC queue pair reports these as work
// completion statuses (IBV_WC_RETRY_EXC_ERR, invalid rkey); callers must
// treat the QP as broken rather than retry blindly.
var (
	// ErrRetryExceeded means the retransmission budget ran out — the
	// peer was unreachable for longer than the retry schedule covers.
	ErrRetryExceeded = errors.New("fabric: retry budget exceeded")
	// ErrMRNotFound means a one-sided verb targeted an unregistered
	// memory region (the RDMA analogue of an invalid rkey).
	ErrMRNotFound = errors.New("fabric: memory region not found")
)

// Message is one two-sided SEND. The payload layout (Kind, Chunk, ...)
// belongs to the protocol layers; the fabric only reads From/To/Data
// sizes and the VT stamps.
type Message struct {
	From, To int
	Array    uint32 // which distributed array / data structure instance
	Kind     uint8  // protocol message kind (opaque here)
	Chunk    int64
	OpID     int32
	Seq      uint32
	Idx      int64
	Val      uint64
	Flag     bool
	Data     []uint64 // chunk payload, if any

	// Payload, when non-nil, is the refcounted pool buffer backing Data
	// (the simulated registered MR the payload lives in). The message
	// owns one reference: posting transfers it to the receiver, which
	// either releases it after copying or adopts the buffer outright.
	// Duplicate deliveries on a lossy wire retain an extra reference
	// instead of copying the words. Nil means Data is GC-managed (NoPool
	// mode, payload-free messages, and foreign protocol layers).
	Payload *buf.Ref

	// Coal marks a destination-coalesced command: the Tx thread merged
	// several adjacent payload-free protocol commands of the same kind to
	// the same peer into one SEND. Chunk carries the first command's
	// chunk; Data carries the remaining chunk indexes. The receiving
	// node's Rx loop fans the message back out per chunk, so the protocol
	// layers never see a coalesced message.
	Coal bool

	// VT is the virtual time at which the message is visible at the
	// receiver. Senders set SendVT (their ready time); Post fills VT.
	VT     int64
	SendVT int64

	// Causal-tracing context (internal/trace); zero means untraced.
	// Trace/PSpan identify the trace and parent span this message
	// belongs to. QueuedVT preserves the producer's ready time — the Tx
	// thread overwrites SendVT with the post-doorbell time, and the
	// receiver needs both ends of the doorbell-queue interval. RetransNs
	// is the share of the delivery latency the lossy wire added (filled
	// by Post); the receiver splits it out as its own trace stage.
	Trace     uint64
	PSpan     uint64
	QueuedVT  int64
	RetransNs int64

	// CoalTC carries the absorbed commands' trace contexts alongside a
	// coalesced message, as flat [trace, pspan, queuedVT] triples
	// parallel to Data's chunk indexes (shorter-than-Data means the tail
	// is untraced). Like the header context above it is metadata the
	// simulation threads out of band — it does not count toward Bytes(),
	// the way a real fabric carries trace IDs in fixed header space.
	CoalTC []uint64

	// wireSeq is the per-queue-pair sequence number stamped by Post and
	// verified by Poll: duplicates are discarded, gaps panic (the RC
	// layer must never reorder or lose an acknowledged SEND).
	wireSeq uint32
}

const msgHeaderBytes = 64 // wire size of a payload-free protocol message

// Bytes returns the message's wire size.
func (m *Message) Bytes() int { return msgHeaderBytes + 8*len(m.Data) }

// msgPool recycles Message structs across the whole process. Only
// pooled fabrics (Config.Pooled) allocate from and free to it, so a
// NoPool configuration keeps today's allocate-per-message behaviour
// untouched.
var msgPool = sync.Pool{New: func() any { return new(Message) }}

// NewMessage returns a zeroed Message from the process-wide pool. The
// caller owns it until it is posted; the consumer frees it with
// FreeMessage after releasing or adopting any Payload.
func NewMessage() *Message { return msgPool.Get().(*Message) }

// FreeMessage recycles m. The caller must have released (or taken over)
// m.Payload first and must not touch m afterwards.
func FreeMessage(m *Message) {
	*m = Message{}
	msgPool.Put(m)
}

// MaxMsgKinds bounds the per-kind message counters; protocol kinds are
// small consecutive integers (core uses 15), so 32 leaves headroom.
const MaxMsgKinds = 32

// Counters aggregates per-endpoint traffic statistics: aggregate
// message/byte totals, per-message-kind counts, and per-verb one-sided
// operation counts.
type Counters struct {
	MsgsSent     atomic.Int64
	BytesSent    atomic.Int64
	OneSidedOps  atomic.Int64
	OneSidedByte atomic.Int64

	// One-sided verbs, by type.
	Reads  atomic.Int64
	Writes atomic.Int64
	CASs   atomic.Int64

	// RC recovery over the lossy wire (all zero without a fault plan).
	Retransmits    atomic.Int64 // extra transmissions hidden from the protocol
	Timeouts       atomic.Int64 // retry budgets exhausted (surfaced as errors)
	FaultsInjected atomic.Int64 // fault events the plan injected on our sends
	DupsSuppressed atomic.Int64 // duplicate deliveries discarded at this receiver

	perKind [MaxMsgKinds]atomic.Int64

	// retries[k] is the distribution of transmission attempts per
	// message of kind k (1 = clean); the last slot covers one-sided
	// verbs. Only populated when a fault plan is active.
	retries [MaxMsgKinds + 1]telemetry.Histogram
}

// RetryHist returns the attempts-per-message histogram for protocol
// kind k; pass fault.KindOneSided (or any kind >= MaxMsgKinds) for the
// one-sided verb slot.
func (c *Counters) RetryHist(k uint8) *telemetry.Histogram {
	if int(k) >= MaxMsgKinds {
		return &c.retries[MaxMsgKinds]
	}
	return &c.retries[k]
}

// KindCount returns how many messages of protocol kind k were sent.
func (c *Counters) KindCount(k uint8) int64 {
	if int(k) >= MaxMsgKinds {
		return 0
	}
	return c.perKind[k].Load()
}

// Report renders the counters human-readably. namer maps protocol
// message kinds to names (nil falls back to "kind-N"); the fabric treats
// kinds as opaque, so the protocol layer supplies the vocabulary.
func (c *Counters) Report(namer func(uint8) string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "msgs=%d bytes=%d one-sided: ops=%d (read=%d write=%d cas=%d) bytes=%d",
		c.MsgsSent.Load(), c.BytesSent.Load(), c.OneSidedOps.Load(),
		c.Reads.Load(), c.Writes.Load(), c.CASs.Load(), c.OneSidedByte.Load())
	if rt, to, fi := c.Retransmits.Load(), c.Timeouts.Load(), c.FaultsInjected.Load(); rt|to|fi != 0 {
		fmt.Fprintf(&b, "\n  faults: injected=%d retransmits=%d timeouts=%d dups_suppressed=%d",
			fi, rt, to, c.DupsSuppressed.Load())
	}
	first := true
	for k := 0; k < MaxMsgKinds; k++ {
		n := c.perKind[k].Load()
		if n == 0 {
			continue
		}
		if first {
			b.WriteString("\n  per-kind:")
			first = false
		}
		name := ""
		if namer != nil {
			name = namer(uint8(k))
		}
		if name == "" {
			name = fmt.Sprintf("kind-%d", k)
		}
		fmt.Fprintf(&b, " %s=%d", name, n)
	}
	return b.String()
}

// Config describes a fabric instance.
type Config struct {
	Nodes  int
	Model  *vtime.Model // nil disables virtual-time charging
	Faults *fault.Plan  // nil means a perfect wire (no injection, zero overhead)

	// Pooled arms the zero-copy disciplines: receive queues recycle
	// their link nodes, duplicate deliveries share the payload buffer by
	// refcount instead of copying, and discarded duplicates are returned
	// to the message pool. Off, the fabric behaves exactly as before —
	// the ablation baseline.
	Pooled bool
}

// Fabric connects Nodes endpoints.
type Fabric struct {
	cfg Config
	eps []*Endpoint
}

// New builds a fabric with cfg.Nodes endpoints.
func New(cfg Config) *Fabric {
	if cfg.Nodes <= 0 {
		panic("fabric: Nodes must be positive")
	}
	f := &Fabric{cfg: cfg}
	newRx := queue.NewMPSC[*Message]
	if cfg.Pooled {
		newRx = queue.NewMPSCPooled[*Message]
	}
	f.eps = make([]*Endpoint, cfg.Nodes)
	for i := range f.eps {
		f.eps[i] = &Endpoint{
			fab:       f,
			id:        i,
			rx:        newRx(),
			tx:        make([]vtime.Resource, cfg.Nodes),
			txSeq:     make([]uint32, cfg.Nodes),
			txLastVT:  make([]int64, cfg.Nodes),
			rxSeq:     make([]uint32, cfg.Nodes),
			linkBytes: make([]telemetry.Histogram, cfg.Nodes),
			mrs:       make(map[uint32][]uint64),
			stop:      make(chan struct{}),
		}
	}
	return f
}

// Endpoint returns node id's NIC.
func (f *Fabric) Endpoint(id int) *Endpoint { return f.eps[id] }

// Nodes returns the endpoint count.
func (f *Fabric) Nodes() int { return f.cfg.Nodes }

// Model returns the fabric's virtual-time model (may be nil).
func (f *Fabric) Model() *vtime.Model { return f.cfg.Model }

// Close releases all endpoints, waking any parked receivers.
func (f *Fabric) Close() {
	for _, ep := range f.eps {
		ep.closeOnce.Do(func() { close(ep.stop) })
	}
}

// Endpoint is one node's simulated RNIC.
type Endpoint struct {
	fab *Fabric
	id  int

	rx *queue.MPSC[*Message]
	tx []vtime.Resource // per-destination egress bandwidth resource

	// Per-queue-pair sequence state. txSeq/txLastVT[dst] are written
	// only by this node's single Tx goroutine (the Post contract);
	// rxSeq[src] only by the single Poll consumer.
	txSeq    []uint32
	txLastVT []int64 // last arrival VT per destination (in-order clamp)
	rxSeq    []uint32

	// postRetrans counts posts since the last TakeRetransSignal whose
	// delivery needed go-back-N recovery. Tx-goroutine-only, like txSeq:
	// the adaptive doorbell budget reads it between bursts.
	postRetrans int64

	// linkBytes[dst] is the byte-size distribution of messages sent on
	// the (this endpoint -> dst) link.
	linkBytes []telemetry.Histogram

	mrMu sync.RWMutex
	mrs  map[uint32][]uint64 // registered memory regions, by key

	stats     Counters
	stop      chan struct{}
	closeOnce sync.Once
}

// ID returns the node id of this endpoint.
func (e *Endpoint) ID() int { return e.id }

// TakeRetransSignal reports whether any post since the previous call
// needed go-back-N recovery, and clears the signal. Like Post, it must
// only be called from the node's single Tx goroutine.
func (e *Endpoint) TakeRetransSignal() bool {
	hit := e.postRetrans > 0
	e.postRetrans = 0
	return hit
}

// Stats exposes the endpoint's traffic counters.
func (e *Endpoint) Stats() *Counters { return &e.stats }

// LinkBytes exposes the byte histogram of the (this endpoint -> dst)
// link.
func (e *Endpoint) LinkBytes(dst int) *telemetry.Histogram { return &e.linkBytes[dst] }

// RegisterMR registers a memory region for one-sided access under key.
// Keys are global per node (array id, typically).
func (e *Endpoint) RegisterMR(key uint32, words []uint64) {
	e.mrMu.Lock()
	defer e.mrMu.Unlock()
	e.mrs[key] = words
}

// DeregisterMR removes a region.
func (e *Endpoint) DeregisterMR(key uint32) {
	e.mrMu.Lock()
	defer e.mrMu.Unlock()
	delete(e.mrs, key)
}

func (e *Endpoint) region(key uint32) ([]uint64, error) {
	e.mrMu.RLock()
	defer e.mrMu.RUnlock()
	r, ok := e.mrs[key]
	if !ok {
		return nil, fmt.Errorf("%w: node %d has no MR %d", ErrMRNotFound, e.id, key)
	}
	return r, nil
}

// Post transmits m as a two-sided SEND. m.SendVT must hold the sender's
// virtual ready time (0 when no model). Delivery preserves per-pair FIFO
// because each node posts from a single Tx goroutine.
//
// With a fault plan configured, loss is absorbed by retransmission
// (charged into m.VT and the link's bandwidth resource, go-back-N
// style); Post fails with ErrRetryExceeded only when the retry budget
// runs out, in which case the message was not delivered.
func (e *Endpoint) Post(m *Message) error {
	m.From = e.id
	dst := e.fab.eps[m.To]
	mdl := e.fab.cfg.Model
	if mdl != nil {
		_, end := e.tx[m.To].Acquire(m.SendVT, mdl.XferCost(m.Bytes()))
		m.VT = end + mdl.Wire
	}
	var dup bool
	if fp := e.fab.cfg.Faults; fp != nil {
		faultFree := m.VT
		var err error
		if dup, err = e.faultWire(fp, m, mdl); err != nil {
			return err
		}
		// Everything faultWire folded into the delivery time —
		// go-back-N resends, stall windows, in-order clamping — is
		// retransmission-layer delay for latency attribution.
		m.RetransNs = m.VT - faultFree
		if m.RetransNs > 0 {
			e.postRetrans++
		}
	}
	e.stats.MsgsSent.Add(1)
	e.stats.BytesSent.Add(int64(m.Bytes()))
	if int(m.Kind) < MaxMsgKinds {
		e.stats.perKind[m.Kind].Add(1)
	}
	e.linkBytes[m.To].Observe(int64(m.Bytes()))
	m.wireSeq = e.txSeq[m.To]
	e.txSeq[m.To]++
	// The duplicate copy must be taken (and the payload retained) before
	// m is pushed: a pooled receiver may consume, release, and recycle m
	// the instant it is visible.
	var dupMsg *Message
	if dup {
		// The wire delivered the packet twice; the receiver's QP state
		// discards the copy by sequence number (see accept).
		if e.fab.cfg.Pooled {
			dupMsg = NewMessage()
			*dupMsg = *m
			m.Payload.Retain()
		} else {
			d := *m
			dupMsg = &d
		}
	}
	dst.rx.Push(m)
	if dupMsg != nil {
		dst.rx.Push(dupMsg)
	}
	return nil
}

// faultWire runs m through the fault plan's RC recovery loop: charges
// retransmission penalties into m.VT and the egress link (later traffic
// queues behind go-back-N resends), applies receiver stall windows, and
// reports whether the wire duplicated the delivery.
func (e *Endpoint) faultWire(fp *fault.Plan, m *Message, mdl *vtime.Model) (dup bool, err error) {
	ref := m.VT
	if mdl == nil {
		ref = m.SendVT
	}
	v := fp.Wire(e.id, m.To, m.Kind, ref)
	if v.Faults > 0 {
		e.stats.FaultsInjected.Add(v.Faults)
	}
	e.stats.RetryHist(m.Kind).Observe(int64(v.Attempts))
	if !v.Delivered {
		e.stats.Timeouts.Add(1)
		return false, fmt.Errorf("%w: SEND kind %d on link %d->%d after %d attempts",
			ErrRetryExceeded, m.Kind, e.id, m.To, v.Attempts)
	}
	if v.Attempts > 1 {
		e.stats.Retransmits.Add(int64(v.Attempts - 1))
		if mdl != nil {
			// Go-back-N: the resends re-occupy the link, so later
			// messages on this queue pair serialize behind them.
			e.tx[m.To].Acquire(m.VT, v.ExtraNs)
		}
	}
	m.VT += v.ExtraNs
	if s := fp.StallUntil(m.To, m.VT); s > m.VT {
		m.VT = s
	}
	// Go-back-N delivers in order: a packet cannot become visible before
	// its predecessor on the same queue pair, whatever jitter it drew.
	if m.VT < e.txLastVT[m.To] {
		m.VT = e.txLastVT[m.To]
	}
	e.txLastVT[m.To] = m.VT
	return v.Duplicated, nil
}

// accept runs the receiver half of the QP sequence check: true for the
// next in-order message, false for a duplicate (discarded, counted).
// A gap means the RC layer lost an acknowledged SEND — a fabric bug —
// and panics.
func (e *Endpoint) accept(m *Message) bool {
	d := int32(m.wireSeq - e.rxSeq[m.From])
	switch {
	case d == 0:
		e.rxSeq[m.From]++
		return true
	case d < 0:
		e.stats.DupsSuppressed.Add(1)
		return false
	default:
		panic(fmt.Sprintf("fabric: QP %d->%d sequence gap: got #%d, want #%d",
			m.From, e.id, m.wireSeq, e.rxSeq[m.From]))
	}
}

// discard drops a suppressed duplicate, returning its payload reference
// and Message struct to the pools when the fabric is pooled.
func (e *Endpoint) discard(m *Message) {
	if e.fab.cfg.Pooled {
		m.Payload.Release()
		FreeMessage(m)
	}
}

// Poll retrieves one received message without blocking. Duplicate
// deliveries from a lossy wire are discarded here, invisible to callers.
func (e *Endpoint) Poll() (*Message, bool) {
	for {
		m, ok := e.rx.Pop()
		if !ok {
			return nil, false
		}
		if e.accept(m) {
			return m, true
		}
		e.discard(m)
	}
}

// PollWait blocks until a message arrives or the fabric is closed.
func (e *Endpoint) PollWait() (*Message, bool) {
	for {
		m, ok := e.rx.PopWait(e.stop)
		if !ok {
			return nil, false
		}
		if e.accept(m) {
			return m, true
		}
		e.discard(m)
	}
}

// DrainRx empties the receive queue, releasing pooled payload
// references still in flight. It bypasses the QP sequence check, so it
// must only be called after the endpoint's Rx consumer has stopped —
// it is teardown plumbing for the pool leak check, not a receive path.
func (e *Endpoint) DrainRx() {
	for {
		m, ok := e.rx.Pop()
		if !ok {
			return
		}
		if e.fab.cfg.Pooled {
			m.Payload.Release()
			FreeMessage(m)
		}
	}
}

// Done exposes the endpoint's close channel (for Rx loops that select).
func (e *Endpoint) Done() <-chan struct{} { return e.stop }

// roundTrip charges clock for a one-sided verb moving n payload bytes and
// returns after the virtual round trip completes. With a fault plan, the
// verb retries through loss within its budget (penalty charged to the
// caller's clock) and fails with ErrRetryExceeded past it.
func (e *Endpoint) roundTrip(clock *vtime.Clock, to int, bytes int) error {
	e.stats.OneSidedOps.Add(1)
	e.stats.OneSidedByte.Add(int64(bytes))
	mdl := e.fab.cfg.Model
	if mdl != nil && clock != nil {
		_, end := e.tx[to].Acquire(clock.Now()+mdl.SendCost(), mdl.XferCost(bytes))
		clock.AdvanceTo(end + mdl.RTT8 + mdl.PollCQ)
	}
	fp := e.fab.cfg.Faults
	if fp == nil {
		return nil
	}
	var ref int64
	if clock != nil {
		ref = clock.Now()
	}
	v := fp.Wire(e.id, to, fault.KindOneSided, ref)
	if v.Faults > 0 {
		e.stats.FaultsInjected.Add(v.Faults)
	}
	e.stats.RetryHist(fault.KindOneSided).Observe(int64(v.Attempts))
	if !v.Delivered {
		e.stats.Timeouts.Add(1)
		return fmt.Errorf("%w: one-sided verb to node %d after %d attempts",
			ErrRetryExceeded, to, v.Attempts)
	}
	if v.Attempts > 1 {
		e.stats.Retransmits.Add(int64(v.Attempts - 1))
	}
	if clock != nil {
		clock.Advance(v.ExtraNs)
		clock.AdvanceTo(fp.StallUntil(to, clock.Now()))
	}
	return nil
}

// ReadWord performs a one-sided 8-byte READ from (node to, region key,
// word offset off).
func (e *Endpoint) ReadWord(clock *vtime.Clock, to int, key uint32, off int64) (uint64, error) {
	e.stats.Reads.Add(1)
	if err := e.roundTrip(clock, to, 8); err != nil {
		return 0, err
	}
	r, err := e.fab.eps[to].region(key)
	if err != nil {
		return 0, err
	}
	return atomic.LoadUint64(&r[off]), nil
}

// WriteWord performs a one-sided 8-byte WRITE.
func (e *Endpoint) WriteWord(clock *vtime.Clock, to int, key uint32, off int64, v uint64) error {
	e.stats.Writes.Add(1)
	if err := e.roundTrip(clock, to, 8); err != nil {
		return err
	}
	r, err := e.fab.eps[to].region(key)
	if err != nil {
		return err
	}
	atomic.StoreUint64(&r[off], v)
	return nil
}

// CompareAndSwap performs a one-sided atomic CAS (used by baselines for
// remote read-modify-write without a coherence protocol).
func (e *Endpoint) CompareAndSwap(clock *vtime.Clock, to int, key uint32, off int64, old, new uint64) (bool, error) {
	e.stats.CASs.Add(1)
	if err := e.roundTrip(clock, to, 8); err != nil {
		return false, err
	}
	r, err := e.fab.eps[to].region(key)
	if err != nil {
		return false, err
	}
	return atomic.CompareAndSwapUint64(&r[off], old, new), nil
}

// ReadWords performs a one-sided READ of n words into dst.
func (e *Endpoint) ReadWords(clock *vtime.Clock, to int, key uint32, off int64, dst []uint64) error {
	e.stats.Reads.Add(1)
	if err := e.roundTrip(clock, to, 8*len(dst)); err != nil {
		return err
	}
	r, err := e.fab.eps[to].region(key)
	if err != nil {
		return err
	}
	for i := range dst {
		dst[i] = atomic.LoadUint64(&r[off+int64(i)])
	}
	return nil
}

// WriteWords performs a one-sided WRITE of src.
func (e *Endpoint) WriteWords(clock *vtime.Clock, to int, key uint32, off int64, src []uint64) error {
	e.stats.Writes.Add(1)
	if err := e.roundTrip(clock, to, 8*len(src)); err != nil {
		return err
	}
	r, err := e.fab.eps[to].region(key)
	if err != nil {
		return err
	}
	for i, v := range src {
		atomic.StoreUint64(&r[off+int64(i)], v)
	}
	return nil
}
