package fabric

import (
	"errors"
	"testing"

	"darray/internal/fault"
	"darray/internal/vtime"
)

// Satellite: per-pair FIFO must survive the lossy wire. Under a seeded
// plan that drops and duplicates aggressively, receivers still observe
// exactly-once, in-order delivery per queue pair — the RC contract.
func TestFIFOSurvivesLossAndDuplication(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234} {
		plan := fault.New(fault.Config{
			Seed: seed, Nodes: 3,
			DropProb: 0.15, DupProb: 0.15, SpikeProb: 0.05, SpikeNs: 3000,
		})
		f := New(Config{Nodes: 3, Model: vtime.Default(), Faults: plan})
		const n = 2000
		for i := uint32(0); i < n; i++ {
			// Interleave two queue pairs into node 2 to check per-pair
			// isolation of the sequence streams.
			if err := f.Endpoint(0).Post(&Message{To: 2, Seq: i}); err != nil {
				t.Fatalf("seed %d: post 0->2 #%d: %v", seed, i, err)
			}
			if err := f.Endpoint(1).Post(&Message{To: 2, Seq: i}); err != nil {
				t.Fatalf("seed %d: post 1->2 #%d: %v", seed, i, err)
			}
		}
		var want [3]uint32
		got := 0
		var lastVT [3]int64
		for got < 2*n {
			m, ok := f.Endpoint(2).Poll()
			if !ok {
				t.Fatalf("seed %d: receiver starved after %d messages", seed, got)
			}
			if m.Seq != want[m.From] {
				t.Fatalf("seed %d: pair %d->2 out of order: got %d, want %d", seed, m.From, m.Seq, want[m.From])
			}
			if m.VT < lastVT[m.From] {
				t.Fatalf("seed %d: pair %d->2 VT regressed: %d after %d", seed, m.From, m.VT, lastVT[m.From])
			}
			lastVT[m.From] = m.VT
			want[m.From]++
			got++
		}
		if m, ok := f.Endpoint(2).Poll(); ok {
			t.Fatalf("seed %d: duplicate leaked to receiver: %+v", seed, m)
		}
		st2 := f.Endpoint(2).Stats()
		s := plan.Stats()
		if s.Drops == 0 || s.Dups == 0 {
			t.Fatalf("seed %d: fault plan injected nothing: %+v", seed, s)
		}
		if st2.DupsSuppressed.Load() == 0 {
			t.Fatalf("seed %d: no duplicates suppressed despite %d dups injected", seed, s.Dups)
		}
		sent := f.Endpoint(0).Stats().Retransmits.Load() + f.Endpoint(1).Stats().Retransmits.Load()
		if sent == 0 {
			t.Fatalf("seed %d: no retransmissions recorded despite %d drops", seed, s.Drops)
		}
		f.Close()
	}
}

// A permanent partition exhausts the retry budget: Post fails with
// ErrRetryExceeded and the message is not delivered.
func TestPostRetryExceeded(t *testing.T) {
	plan := fault.New(fault.Config{
		Seed: 1, Nodes: 2, RetryBudget: 4,
		Partitions: []fault.Partition{{A: 0, B: 1, Start: 0, End: 1 << 60}},
	})
	f := New(Config{Nodes: 2, Model: vtime.Default(), Faults: plan})
	defer f.Close()
	err := f.Endpoint(0).Post(&Message{To: 1, Kind: 3})
	if !errors.Is(err, ErrRetryExceeded) {
		t.Fatalf("Post under permanent partition: err = %v, want ErrRetryExceeded", err)
	}
	if _, ok := f.Endpoint(1).Poll(); ok {
		t.Fatal("undelivered message leaked to the receiver")
	}
	st := f.Endpoint(0).Stats()
	if st.Timeouts.Load() != 1 || st.MsgsSent.Load() != 0 {
		t.Fatalf("timeouts=%d msgs_sent=%d, want 1 and 0", st.Timeouts.Load(), st.MsgsSent.Load())
	}
	// The next message after the partition ends... never here: partition
	// is permanent, so a second Post fails too.
	if err := f.Endpoint(0).Post(&Message{To: 1}); !errors.Is(err, ErrRetryExceeded) {
		t.Fatalf("second Post: err = %v, want ErrRetryExceeded", err)
	}
}

// One-sided verbs consume the retry budget the same way and surface
// ErrRetryExceeded without touching remote memory.
func TestOneSidedRetryExceeded(t *testing.T) {
	plan := fault.New(fault.Config{
		Seed: 1, Nodes: 2, RetryBudget: 3,
		Partitions: []fault.Partition{{A: 0, B: 1, Start: 0, End: 1 << 60}},
	})
	f := New(Config{Nodes: 2, Model: vtime.Default(), Faults: plan})
	defer f.Close()
	mem := make([]uint64, 4)
	f.Endpoint(1).RegisterMR(1, mem)
	var clk vtime.Clock
	if err := f.Endpoint(0).WriteWord(&clk, 1, 1, 0, 99); !errors.Is(err, ErrRetryExceeded) {
		t.Fatalf("WriteWord: err = %v, want ErrRetryExceeded", err)
	}
	if mem[0] != 0 {
		t.Fatalf("failed WRITE mutated remote memory: %v", mem)
	}
	if _, err := f.Endpoint(0).ReadWord(&clk, 1, 1, 0); !errors.Is(err, ErrRetryExceeded) {
		t.Fatalf("ReadWord: err = %v, want ErrRetryExceeded", err)
	}
	st := f.Endpoint(0).Stats()
	if st.Timeouts.Load() != 2 {
		t.Fatalf("timeouts = %d, want 2", st.Timeouts.Load())
	}
	if h := st.RetryHist(fault.KindOneSided).Data(); h.Count != 2 {
		t.Fatalf("one-sided retry histogram count = %d, want 2", h.Count)
	}
}

// Retransmission is charged as virtual time: a targeted drop of the
// first SEND delays its arrival by at least the RTO, and a one-sided
// verb's retry advances the caller's clock.
func TestRetransmissionChargesVtime(t *testing.T) {
	const rto = 50_000
	plan := fault.New(fault.Config{
		Seed: 1, Nodes: 2, RTO: rto,
		Targeted: []fault.DropRule{{Kind: 5, Nth: 1}},
	})
	mdl := vtime.Default()
	f := New(Config{Nodes: 2, Model: mdl, Faults: plan})
	defer f.Close()
	if err := f.Endpoint(0).Post(&Message{To: 1, Kind: 5}); err != nil {
		t.Fatal(err)
	}
	if err := f.Endpoint(0).Post(&Message{To: 1, Kind: 6}); err != nil {
		t.Fatal(err)
	}
	a, _ := f.Endpoint(1).Poll()
	b, _ := f.Endpoint(1).Poll()
	if a.VT < rto {
		t.Fatalf("dropped-then-retransmitted message arrived at VT %d, want >= %d", a.VT, rto)
	}
	// Go-back-N: the later message on the same pair serializes behind
	// the retransmission.
	if b.VT < a.VT {
		t.Fatalf("later message overtook the retransmission: %d < %d", b.VT, a.VT)
	}
	st := f.Endpoint(0).Stats()
	if st.Retransmits.Load() != 1 || st.FaultsInjected.Load() != 1 {
		t.Fatalf("retransmits=%d faults=%d, want 1 and 1", st.Retransmits.Load(), st.FaultsInjected.Load())
	}
	if h := st.RetryHist(5).Data(); h.Count != 1 || h.Sum != 2 {
		t.Fatalf("kind-5 retry histogram = %+v, want one observation of 2 attempts", h)
	}
}

// A stalled receiver delays message visibility and one-sided completion
// until its stall window ends.
func TestStallWindowDelaysDelivery(t *testing.T) {
	plan := fault.New(fault.Config{
		Seed: 1, Nodes: 2,
		Stalls: []fault.Stall{{Node: 1, Start: 0, End: 500_000}},
	})
	f := New(Config{Nodes: 2, Model: vtime.Default(), Faults: plan})
	defer f.Close()
	if err := f.Endpoint(0).Post(&Message{To: 1}); err != nil {
		t.Fatal(err)
	}
	m, _ := f.Endpoint(1).Poll()
	if m.VT < 500_000 {
		t.Fatalf("message visible at VT %d inside the stall window", m.VT)
	}
	mem := make([]uint64, 4)
	f.Endpoint(1).RegisterMR(1, mem)
	var clk vtime.Clock
	if _, err := f.Endpoint(0).ReadWord(&clk, 1, 1, 0); err != nil {
		t.Fatal(err)
	}
	if clk.Now() < 500_000 {
		t.Fatalf("one-sided completion at %d inside the stall window", clk.Now())
	}
}

// With no fault plan the fast path must not observe any fault state:
// sequence numbers still verify, nothing is counted.
func TestNoPlanNoFaultAccounting(t *testing.T) {
	f := New(Config{Nodes: 2, Model: vtime.Default()})
	defer f.Close()
	for i := 0; i < 100; i++ {
		if err := f.Endpoint(0).Post(&Message{To: 1}); err != nil {
			t.Fatal(err)
		}
		if _, ok := f.Endpoint(1).Poll(); !ok {
			t.Fatal("delivery failed")
		}
	}
	st := f.Endpoint(0).Stats()
	if st.Retransmits.Load()|st.Timeouts.Load()|st.FaultsInjected.Load() != 0 {
		t.Fatal("fault counters nonzero without a plan")
	}
}
