package fabric

import (
	"errors"
	"sync"
	"testing"

	"darray/internal/vtime"
)

func newTestFabric(nodes int, model *vtime.Model) *Fabric {
	return New(Config{Nodes: nodes, Model: model})
}

func TestPostDeliver(t *testing.T) {
	f := newTestFabric(2, nil)
	defer f.Close()
	f.Endpoint(0).Post(&Message{To: 1, Kind: 7, Chunk: 42})
	m, ok := f.Endpoint(1).Poll()
	if !ok {
		t.Fatal("no message delivered")
	}
	if m.From != 0 || m.Kind != 7 || m.Chunk != 42 {
		t.Fatalf("bad message: %+v", m)
	}
	if _, ok := f.Endpoint(1).Poll(); ok {
		t.Fatal("spurious second message")
	}
}

func TestPerPairFIFO(t *testing.T) {
	f := newTestFabric(2, nil)
	defer f.Close()
	const n = 1000
	for i := uint32(0); i < n; i++ {
		f.Endpoint(0).Post(&Message{To: 1, Seq: i})
	}
	for i := uint32(0); i < n; i++ {
		m, ok := f.Endpoint(1).Poll()
		if !ok || m.Seq != i {
			t.Fatalf("message %d: got (%v,%v)", i, m, ok)
		}
	}
}

func TestPollWaitAndClose(t *testing.T) {
	f := newTestFabric(2, nil)
	got := make(chan *Message, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			m, ok := f.Endpoint(1).PollWait()
			if !ok {
				close(got)
				return
			}
			got <- m
		}
	}()
	f.Endpoint(0).Post(&Message{To: 1, Val: 9})
	if m := <-got; m.Val != 9 {
		t.Fatalf("got %+v", m)
	}
	f.Close()
	wg.Wait()
	if _, ok := <-got; ok {
		t.Fatal("receiver did not observe close")
	}
}

func TestOneSidedReadWrite(t *testing.T) {
	f := newTestFabric(3, nil)
	defer f.Close()
	mem := make([]uint64, 16)
	f.Endpoint(2).RegisterMR(5, mem)
	var clk vtime.Clock
	f.Endpoint(0).WriteWord(&clk, 2, 5, 3, 777)
	if mem[3] != 777 {
		t.Fatalf("WriteWord did not land: %v", mem)
	}
	if got, err := f.Endpoint(1).ReadWord(&clk, 2, 5, 3); err != nil || got != 777 {
		t.Fatalf("ReadWord = %d, %v, want 777", got, err)
	}
}

func TestOneSidedBulk(t *testing.T) {
	f := newTestFabric(2, nil)
	defer f.Close()
	mem := make([]uint64, 64)
	f.Endpoint(1).RegisterMR(1, mem)
	src := []uint64{10, 20, 30, 40}
	f.Endpoint(0).WriteWords(nil, 1, 1, 8, src)
	dst := make([]uint64, 4)
	f.Endpoint(0).ReadWords(nil, 1, 1, 8, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("bulk mismatch at %d: %d != %d", i, dst[i], src[i])
		}
	}
}

func TestOneSidedCAS(t *testing.T) {
	f := newTestFabric(2, nil)
	defer f.Close()
	mem := make([]uint64, 4)
	mem[0] = 5
	f.Endpoint(1).RegisterMR(9, mem)
	if ok, err := f.Endpoint(0).CompareAndSwap(nil, 1, 9, 0, 5, 6); err != nil || !ok {
		t.Fatalf("CAS with matching old failed: %v", err)
	}
	if ok, err := f.Endpoint(0).CompareAndSwap(nil, 1, 9, 0, 5, 7); err != nil || ok {
		t.Fatalf("CAS with stale old succeeded (err=%v)", err)
	}
	if mem[0] != 6 {
		t.Fatalf("mem[0] = %d, want 6", mem[0])
	}
}

func TestVirtualTimeRoundTrip(t *testing.T) {
	m := vtime.Default()
	f := newTestFabric(2, m)
	defer f.Close()
	mem := make([]uint64, 4)
	f.Endpoint(1).RegisterMR(1, mem)
	var clk vtime.Clock
	f.Endpoint(0).ReadWord(&clk, 1, 1, 0)
	min := m.RTT8 // at least a full round trip
	if clk.Now() < min {
		t.Fatalf("clock advanced %d ns, want >= %d", clk.Now(), min)
	}
	// A second op serializes behind the first on the same link.
	t1 := clk.Now()
	f.Endpoint(0).ReadWord(&clk, 1, 1, 0)
	if clk.Now() <= t1 {
		t.Fatal("second one-sided op did not advance the clock")
	}
}

func TestPostStampsArrivalVT(t *testing.T) {
	m := vtime.Default()
	f := newTestFabric(2, m)
	defer f.Close()
	msg := &Message{To: 1, SendVT: 1000, Data: make([]uint64, 512)}
	f.Endpoint(0).Post(msg)
	got, _ := f.Endpoint(1).Poll()
	wantMin := int64(1000) + m.Wire + m.XferCost(got.Bytes())
	if got.VT < wantMin {
		t.Fatalf("arrival VT = %d, want >= %d", got.VT, wantMin)
	}
}

func TestLinkBandwidthSerializes(t *testing.T) {
	m := vtime.Default()
	f := newTestFabric(2, m)
	defer f.Close()
	// Two large messages posted back-to-back at SendVT 0 must have
	// strictly increasing arrival VTs separated by at least XferCost.
	a := &Message{To: 1, Data: make([]uint64, 4096)}
	b := &Message{To: 1, Data: make([]uint64, 4096)}
	f.Endpoint(0).Post(a)
	f.Endpoint(0).Post(b)
	ra, _ := f.Endpoint(1).Poll()
	rb, _ := f.Endpoint(1).Poll()
	if rb.VT-ra.VT < m.XferCost(a.Bytes()) {
		t.Fatalf("no bandwidth serialization: %d then %d", ra.VT, rb.VT)
	}
}

func TestCounters(t *testing.T) {
	f := newTestFabric(2, nil)
	defer f.Close()
	mem := make([]uint64, 4)
	f.Endpoint(1).RegisterMR(1, mem)
	f.Endpoint(0).Post(&Message{To: 1})
	f.Endpoint(0).ReadWord(nil, 1, 1, 0)
	st := f.Endpoint(0).Stats()
	if st.MsgsSent.Load() != 1 || st.OneSidedOps.Load() != 1 {
		t.Fatalf("counters: %d msgs, %d one-sided", st.MsgsSent.Load(), st.OneSidedOps.Load())
	}
	if st.BytesSent.Load() != msgHeaderBytes {
		t.Fatalf("bytes = %d, want %d", st.BytesSent.Load(), msgHeaderBytes)
	}
}

// An unregistered MR is the RDMA analogue of an invalid rkey: the verb
// completes with a typed error, never a panic.
func TestUnknownMRError(t *testing.T) {
	f := newTestFabric(2, nil)
	defer f.Close()
	if _, err := f.Endpoint(0).ReadWord(nil, 1, 99, 0); !errors.Is(err, ErrMRNotFound) {
		t.Fatalf("ReadWord: err = %v, want ErrMRNotFound", err)
	}
	if err := f.Endpoint(0).WriteWord(nil, 1, 99, 0, 1); !errors.Is(err, ErrMRNotFound) {
		t.Fatalf("WriteWord: err = %v, want ErrMRNotFound", err)
	}
	if _, err := f.Endpoint(0).CompareAndSwap(nil, 1, 99, 0, 0, 1); !errors.Is(err, ErrMRNotFound) {
		t.Fatalf("CompareAndSwap: err = %v, want ErrMRNotFound", err)
	}
	buf := make([]uint64, 2)
	if err := f.Endpoint(0).ReadWords(nil, 1, 99, 0, buf); !errors.Is(err, ErrMRNotFound) {
		t.Fatalf("ReadWords: err = %v, want ErrMRNotFound", err)
	}
	if err := f.Endpoint(0).WriteWords(nil, 1, 99, 0, buf); !errors.Is(err, ErrMRNotFound) {
		t.Fatalf("WriteWords: err = %v, want ErrMRNotFound", err)
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Nodes=0")
		}
	}()
	New(Config{Nodes: 0})
}
