package fabric

import (
	"errors"
	"testing"

	"darray/internal/vtime"
)

func TestDeregisterMR(t *testing.T) {
	f := New(Config{Nodes: 2})
	defer f.Close()
	mem := make([]uint64, 4)
	f.Endpoint(1).RegisterMR(3, mem)
	f.Endpoint(0).WriteWord(nil, 1, 3, 0, 5)
	f.Endpoint(1).DeregisterMR(3)
	if _, err := f.Endpoint(0).ReadWord(nil, 1, 3, 0); !errors.Is(err, ErrMRNotFound) {
		t.Fatalf("access after deregister: err = %v, want ErrMRNotFound", err)
	}
}

func TestReRegisterMRReplaces(t *testing.T) {
	f := New(Config{Nodes: 2})
	defer f.Close()
	a := make([]uint64, 4)
	b := make([]uint64, 4)
	f.Endpoint(1).RegisterMR(3, a)
	f.Endpoint(1).RegisterMR(3, b) // replace
	f.Endpoint(0).WriteWord(nil, 1, 3, 0, 9)
	if a[0] != 0 || b[0] != 9 {
		t.Fatalf("write landed in wrong region: a=%v b=%v", a, b)
	}
}

func TestDoneSignalsAfterClose(t *testing.T) {
	f := New(Config{Nodes: 1})
	ep := f.Endpoint(0)
	select {
	case <-ep.Done():
		t.Fatal("Done fired before Close")
	default:
	}
	f.Close()
	select {
	case <-ep.Done():
	default:
		t.Fatal("Done not closed after Close")
	}
	f.Close() // idempotent
}

func TestMessageBytes(t *testing.T) {
	m := &Message{Data: make([]uint64, 10)}
	if m.Bytes() != msgHeaderBytes+80 {
		t.Fatalf("Bytes = %d", m.Bytes())
	}
	m2 := &Message{}
	if m2.Bytes() != msgHeaderBytes {
		t.Fatalf("empty Bytes = %d", m2.Bytes())
	}
}

func TestCrossTraffic(t *testing.T) {
	// Bidirectional simultaneous traffic must not interfere.
	f := New(Config{Nodes: 2, Model: vtime.Default()})
	defer f.Close()
	const n = 200
	for i := uint32(0); i < n; i++ {
		f.Endpoint(0).Post(&Message{To: 1, Seq: i})
		f.Endpoint(1).Post(&Message{To: 0, Seq: i})
	}
	for i := uint32(0); i < n; i++ {
		m0, ok0 := f.Endpoint(0).Poll()
		m1, ok1 := f.Endpoint(1).Poll()
		if !ok0 || !ok1 || m0.Seq != i || m1.Seq != i {
			t.Fatalf("cross traffic disorder at %d", i)
		}
		if m0.From != 1 || m1.From != 0 {
			t.Fatal("From not stamped")
		}
	}
}
