package fabric

import (
	"strings"
	"testing"
)

func TestPerKindAndLinkCounters(t *testing.T) {
	f := New(Config{Nodes: 2})
	defer f.Close()
	e0 := f.Endpoint(0)
	e0.Post(&Message{To: 1, Kind: 3})
	e0.Post(&Message{To: 1, Kind: 3})
	e0.Post(&Message{To: 1, Kind: 7, Data: make([]uint64, 8)})
	for i := 0; i < 3; i++ {
		if _, ok := f.Endpoint(1).PollWait(); !ok {
			t.Fatal("message lost")
		}
	}
	st := e0.Stats()
	if st.KindCount(3) != 2 || st.KindCount(7) != 1 || st.KindCount(0) != 0 {
		t.Errorf("per-kind counts: k3=%d k7=%d k0=%d", st.KindCount(3), st.KindCount(7), st.KindCount(0))
	}
	h := e0.LinkBytes(1).Data()
	if h.Count != 3 {
		t.Errorf("link 0->1 count = %d, want 3", h.Count)
	}
	if want := int64(64 + 64 + 64 + 8*8); h.Sum != want {
		t.Errorf("link 0->1 bytes = %d, want %d", h.Sum, want)
	}
	if got := e0.LinkBytes(0).Data().Count; got != 0 {
		t.Errorf("self-link count = %d, want 0", got)
	}
}

func TestOneSidedVerbCounters(t *testing.T) {
	f := New(Config{Nodes: 2})
	defer f.Close()
	f.Endpoint(1).RegisterMR(9, make([]uint64, 16))
	e := f.Endpoint(0)
	e.ReadWord(nil, 1, 9, 0)
	e.WriteWord(nil, 1, 9, 0, 5)
	e.CompareAndSwap(nil, 1, 9, 0, 5, 6)
	e.ReadWords(nil, 1, 9, 0, make([]uint64, 4))
	e.WriteWords(nil, 1, 9, 0, make([]uint64, 4))
	st := e.Stats()
	if st.Reads.Load() != 2 || st.Writes.Load() != 2 || st.CASs.Load() != 1 {
		t.Errorf("verb counts: r=%d w=%d cas=%d", st.Reads.Load(), st.Writes.Load(), st.CASs.Load())
	}
	if st.OneSidedOps.Load() != 5 {
		t.Errorf("one-sided ops = %d, want 5", st.OneSidedOps.Load())
	}
}

func TestCountersReport(t *testing.T) {
	f := New(Config{Nodes: 2})
	defer f.Close()
	e := f.Endpoint(0)
	e.Post(&Message{To: 1, Kind: 2})
	f.Endpoint(1).PollWait()

	rep := e.Stats().Report(nil)
	for _, want := range []string{"msgs=1", "kind-2=1", "one-sided"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	named := e.Stats().Report(func(k uint8) string {
		if k == 2 {
			return "operate-req"
		}
		return ""
	})
	if !strings.Contains(named, "operate-req=1") {
		t.Errorf("named report missing kind name:\n%s", named)
	}
}
