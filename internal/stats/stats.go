// Package stats provides the measurement helpers the benchmark harness
// uses: latency histograms with percentiles, throughput accounting over
// virtual time, and the scalability ratios the paper reports.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram collects latency samples (nanoseconds).
type Histogram struct {
	samples []int64
	sorted  bool
}

// Add records one sample.
func (h *Histogram) Add(ns int64) {
	h.samples = append(h.samples, ns)
	h.sorted = false
}

// AddAll records many samples.
func (h *Histogram) AddAll(ns []int64) {
	h.samples = append(h.samples, ns...)
	h.sorted = false
}

// Count returns the sample count.
func (h *Histogram) Count() int { return len(h.samples) }

// Mean returns the arithmetic mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range h.samples {
		sum += float64(s)
	}
	return sum / float64(len(h.samples))
}

func (h *Histogram) sort() {
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
}

// Percentile returns the p-th percentile (0 < p <= 100).
func (h *Histogram) Percentile(p float64) int64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.sort()
	idx := int(math.Ceil(p/100*float64(len(h.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.samples) {
		idx = len(h.samples) - 1
	}
	return h.samples[idx]
}

// Max returns the largest sample.
func (h *Histogram) Max() int64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.sort()
	return h.samples[len(h.samples)-1]
}

// Throughput converts an operation count over a virtual duration to
// operations per second.
func Throughput(ops int64, durNs int64) float64 {
	if durNs <= 0 {
		return 0
	}
	return float64(ops) / (float64(durNs) / 1e9)
}

// ScalabilityRatio is the paper's metric: throughput at n nodes divided
// by n times the single-node throughput (weak-scaling efficiency).
func ScalabilityRatio(tputN float64, n int, tput1 float64) float64 {
	if tput1 <= 0 || n <= 0 {
		return 0
	}
	return tputN / (float64(n) * tput1)
}

// Series is one labelled line of a figure: y-values indexed like the
// shared x-axis.
type Series struct {
	Label string
	Ys    []float64
}

// Table renders a paper-style figure as an aligned text table.
type Table struct {
	Title  string
	XLabel string
	Xs     []string
	Series []Series
	YFmt   string // e.g. "%.1f"; default "%.2f"
}

// Render formats the table for terminal output.
func (t *Table) Render() string {
	yfmt := t.YFmt
	if yfmt == "" {
		yfmt = "%.2f"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s\n", t.Title)
	w := 14
	fmt.Fprintf(&b, "%-*s", w, t.XLabel)
	for _, s := range t.Series {
		fmt.Fprintf(&b, "%*s", w, s.Label)
	}
	b.WriteByte('\n')
	for i, x := range t.Xs {
		fmt.Fprintf(&b, "%-*s", w, x)
		for _, s := range t.Series {
			if i < len(s.Ys) {
				fmt.Fprintf(&b, "%*s", w, fmt.Sprintf(yfmt, s.Ys[i]))
			} else {
				fmt.Fprintf(&b, "%*s", w, "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Speedup returns a/b guarding zero.
func Speedup(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
