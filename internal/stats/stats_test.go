package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramMeanPercentiles(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 100; i++ {
		h.Add(i)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if m := h.Mean(); m != 50.5 {
		t.Fatalf("mean = %v, want 50.5", m)
	}
	if p := h.Percentile(50); p != 50 {
		t.Fatalf("p50 = %d, want 50", p)
	}
	if p := h.Percentile(99); p != 99 {
		t.Fatalf("p99 = %d, want 99", p)
	}
	if h.Max() != 100 {
		t.Fatalf("max = %d", h.Max())
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Percentile(50) != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramAddAllInterleavedWithSort(t *testing.T) {
	var h Histogram
	h.AddAll([]int64{5, 1, 9})
	_ = h.Percentile(50) // forces sort
	h.Add(0)
	if h.Percentile(1) != 0 {
		t.Fatal("sample added after sort was lost")
	}
}

func TestThroughput(t *testing.T) {
	if tp := Throughput(1000, 1e9); tp != 1000 {
		t.Fatalf("1000 ops in 1s = %v ops/s", tp)
	}
	if tp := Throughput(100, 0); tp != 0 {
		t.Fatalf("zero duration should yield 0, got %v", tp)
	}
}

func TestScalabilityRatio(t *testing.T) {
	// Perfect weak scaling: n nodes do n times the work.
	if r := ScalabilityRatio(400, 4, 100); r != 1.0 {
		t.Fatalf("perfect scaling ratio = %v", r)
	}
	if r := ScalabilityRatio(200, 4, 100); r != 0.5 {
		t.Fatalf("half scaling ratio = %v", r)
	}
	if r := ScalabilityRatio(1, 0, 0); r != 0 {
		t.Fatalf("degenerate ratio = %v", r)
	}
}

func TestTableRender(t *testing.T) {
	tbl := Table{
		Title:  "Figure X",
		XLabel: "nodes",
		Xs:     []string{"1", "2"},
		Series: []Series{
			{Label: "DArray", Ys: []float64{10, 20}},
			{Label: "GAM", Ys: []float64{1}},
		},
	}
	out := tbl.Render()
	for _, want := range []string{"Figure X", "nodes", "DArray", "GAM", "10.00", "20.00"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "-") {
		t.Fatal("short series should render '-' for missing points")
	}
}

// Property: Percentile is monotone in p and bounded by [min, max].
func TestPercentileMonotoneQuick(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, v := range raw {
			h.Add(int64(v))
		}
		prev := h.Percentile(1)
		for p := 10.0; p <= 100; p += 10 {
			cur := h.Percentile(p)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return h.Percentile(100) == h.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
