package fault

import (
	"strings"
	"testing"
)

// Two plans with the same config, fed the same per-link traversal
// sequence, must make identical decisions and produce byte-identical
// fault logs.
func TestDeterministicReplay(t *testing.T) {
	cfg := Config{
		Seed: 42, Nodes: 3,
		DropProb: 0.2, DupProb: 0.1, SpikeProb: 0.1, SpikeNs: 5000,
	}
	run := func() (string, []Verdict) {
		p := New(cfg)
		var vs []Verdict
		vt := int64(0)
		for i := 0; i < 500; i++ {
			from := i % 3
			to := (i + 1) % 3
			vs = append(vs, p.Wire(from, to, uint8(i%7), vt))
			vt += 100
		}
		return p.Log(), vs
	}
	log1, vs1 := run()
	log2, vs2 := run()
	if log1 != log2 {
		t.Fatalf("fault logs differ for identical seed/traffic:\n--- run1 ---\n%s\n--- run2 ---\n%s", log1, log2)
	}
	for i := range vs1 {
		if vs1[i] != vs2[i] {
			t.Fatalf("verdict %d differs: %+v vs %+v", i, vs1[i], vs2[i])
		}
	}
	if !strings.Contains(log1, "seed=42") {
		t.Fatalf("log must embed the seed, got header %q", strings.SplitN(log1, "\n", 2)[0])
	}
}

// Independent links must have independent RNG streams: the decisions on
// link 0->1 must not change when traffic is added on link 1->0.
func TestLinkIsolation(t *testing.T) {
	cfg := Config{Seed: 7, Nodes: 2, DropProb: 0.3}
	collect := func(interleave bool) []Verdict {
		p := New(cfg)
		var vs []Verdict
		for i := 0; i < 200; i++ {
			if interleave {
				p.Wire(1, 0, 0, 0)
			}
			vs = append(vs, p.Wire(0, 1, 0, 0))
		}
		return vs
	}
	a := collect(false)
	b := collect(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("link 0->1 verdict %d affected by 1->0 traffic: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestPartitionWindowRetriesThrough(t *testing.T) {
	// Partition [1000, 50000) between nodes 0 and 1; RTO 20000 means the
	// first retransmission at vt=21000 is still blocked, the second at
	// vt=61000 goes through.
	p := New(Config{
		Seed: 1, Nodes: 2,
		Partitions: []Partition{{A: 0, B: 1, Start: 1000, End: 50_000}},
	})
	v := p.Wire(0, 1, 3, 2000)
	if !v.Delivered {
		t.Fatalf("expected delivery after partition window, got %+v", v)
	}
	if v.Attempts != 3 {
		t.Fatalf("expected 3 attempts (20000 + 40000 backoff), got %+v", v)
	}
	if v.ExtraNs != 20_000+40_000 {
		t.Fatalf("expected 60000ns penalty, got %+v", v)
	}
	// Symmetric: the reverse direction is blocked too.
	if r := p.Wire(1, 0, 3, 2000); r.Attempts == 1 {
		t.Fatalf("reverse direction not partitioned: %+v", r)
	}
	// Outside the window: clean.
	if c := p.Wire(0, 1, 3, 60_000); c.Attempts != 1 || !c.Delivered {
		t.Fatalf("traversal outside window not clean: %+v", c)
	}
}

func TestPermanentPartitionExhaustsBudget(t *testing.T) {
	p := New(Config{
		Seed: 1, Nodes: 2, RetryBudget: 4,
		Partitions: []Partition{{A: 0, B: 1, Start: 0, End: 1 << 60}},
	})
	v := p.Wire(0, 1, 0, 0)
	if v.Delivered {
		t.Fatalf("expected retry-exceeded under permanent partition, got %+v", v)
	}
	if v.Attempts != 4 {
		t.Fatalf("expected budget=4 attempts, got %+v", v)
	}
	if s := p.Stats(); s.Timeouts != 1 {
		t.Fatalf("expected 1 timeout, got %+v", s)
	}
	if !strings.Contains(p.Log(), "retry-exceeded") {
		t.Fatalf("log missing retry-exceeded entry:\n%s", p.Log())
	}
}

func TestTargetedDrop(t *testing.T) {
	p := New(Config{
		Seed: 9, Nodes: 2,
		Targeted: []DropRule{{Kind: 5, Nth: 3}},
	})
	for i := 1; i <= 5; i++ {
		v := p.Wire(0, 1, 5, 0)
		want := 1
		if i == 3 {
			want = 2 // dropped once, retransmitted clean
		}
		if v.Attempts != want || !v.Delivered {
			t.Fatalf("traversal %d: got %+v, want attempts=%d", i, v, want)
		}
	}
	// Other kinds unaffected.
	if v := p.Wire(0, 1, 4, 0); v.Attempts != 1 {
		t.Fatalf("kind 4 affected by targeted rule: %+v", v)
	}
}

func TestStallWindows(t *testing.T) {
	p := New(Config{
		Seed: 1, Nodes: 2,
		Stalls: []Stall{{Node: 1, Start: 100, End: 200}, {Node: 1, Start: 200, End: 300}},
	})
	if got := p.StallUntil(1, 150); got != 300 {
		t.Fatalf("chained stall windows: got %d, want 300", got)
	}
	if got := p.StallUntil(1, 50); got != 50 {
		t.Fatalf("before window: got %d, want 50", got)
	}
	if got := p.StallUntil(0, 150); got != 150 {
		t.Fatalf("other node stalled: got %d, want 150", got)
	}
	if s := p.Stats(); s.Stalls != 1 {
		t.Fatalf("expected 1 stall event, got %+v", s)
	}
}

func TestBackoffShiftCap(t *testing.T) {
	p := New(Config{
		Seed: 1, Nodes: 2, RetryBudget: 10, RTO: 100, BackoffShiftCap: 2,
		Partitions: []Partition{{A: 0, B: 1, Start: 0, End: 1 << 60}},
	})
	v := p.Wire(0, 1, 0, 0)
	// Penalties: 100, 200, 400, 400, ... (cap at shift 2), 9 retransmissions.
	want := int64(100 + 200 + 400*7)
	if v.ExtraNs != want {
		t.Fatalf("backoff penalty: got %d, want %d", v.ExtraNs, want)
	}
}

func TestCleanPlanInjectsNothing(t *testing.T) {
	p := New(Config{Seed: 3, Nodes: 2})
	for i := 0; i < 1000; i++ {
		v := p.Wire(0, 1, uint8(i%7), int64(i))
		if !v.Delivered || v.Attempts != 1 || v.ExtraNs != 0 || v.Faults != 0 {
			t.Fatalf("clean plan injected a fault: %+v", v)
		}
	}
	if s := p.Stats(); s.Total() != 0 {
		t.Fatalf("clean plan stats nonzero: %+v", s)
	}
}
