// Package fault is the deterministic fault-injection plan underneath the
// simulated fabric. A Plan decides, for every wire traversal (two-sided
// SEND or one-sided verb), whether the "packet" is dropped, duplicated,
// delayed by a latency spike, blocked by a link partition window, or
// stalled at a frozen receiver. The fabric consults the plan and models
// RC queue-pair recovery on top of it: lost traversals are retransmitted
// (charged as virtual-time penalty) until a bounded retry budget runs
// out, at which point the verb completes in error.
//
// Determinism contract: every (from, to) link owns an independent RNG
// stream seeded from Seed^linkID and a traversal sequence counter, so
// the verdict for the Nth traversal of a link depends only on the plan
// configuration and N — not on cross-link interleaving, wall-clock, or
// scheduler behaviour. Feeding a link the same traversal sequence twice
// yields byte-identical fault logs.
package fault

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
)

// KindOneSided tags one-sided verb traversals in fault decisions and
// logs. Protocol message kinds are small integers (core uses 15,
// fabric.MaxMsgKinds is 32), so 0xFF cannot collide.
const KindOneSided uint8 = 0xFF

// Defaults for the RC recovery model. The RTO doubles per retry up to
// DefaultBackoffShiftCap, so a default budget covers
// sum(20us<<min(i,6)) ≈ 2.8ms of virtual time — enough to ride out the
// partition windows the chaos harness schedules, while still bounded.
const (
	DefaultRetryBudget     = 16
	DefaultRTO             = 20_000 // ns of virtual time per base timeout
	DefaultBackoffShiftCap = 6
	DefaultLogCap          = 4096 // per-link fault log entries
)

// Partition blocks both directions of the (A, B) link while the
// traversal's virtual time lies in [Start, End).
type Partition struct {
	A, B       int
	Start, End int64
}

// Stall freezes node Node as a receiver: any traversal arriving at it
// with virtual time in [Start, End) is delayed until End.
type Stall struct {
	Node       int
	Start, End int64
}

// DropRule drops the Nth (1-based) traversal of the given message kind,
// counted plan-wide. Used for targeted regression repros ("drop the 3rd
// invalidation ack").
type DropRule struct {
	Kind uint8
	Nth  int64
}

// Config parameterises a Plan. Zero-value probabilities inject nothing;
// RetryBudget/RTO/BackoffShiftCap/LogCap fall back to the defaults
// above when zero.
type Config struct {
	Seed  int64
	Nodes int

	DropProb  float64 // per-traversal loss probability
	DupProb   float64 // per-delivery duplicate probability (receiver discards)
	SpikeProb float64 // per-delivery latency-spike probability
	SpikeNs   int64   // spike magnitude, ns of virtual time

	Partitions []Partition
	Stalls     []Stall
	Targeted   []DropRule

	RetryBudget     int
	RTO             int64
	BackoffShiftCap uint
	LogCap          int
}

// Verdict is the outcome of one wire traversal after RC recovery.
type Verdict struct {
	// Delivered is false only when the retry budget was exhausted; the
	// fabric must surface this as a completion error.
	Delivered bool
	// Attempts is the total number of transmissions (1 = clean).
	Attempts int
	// ExtraNs is the virtual-time penalty accumulated by retransmission
	// timeouts and latency spikes.
	ExtraNs int64
	// Faults counts injected fault events (drops, dups, spikes) on this
	// traversal.
	Faults int64
	// Duplicated reports that the wire delivered a duplicate; the
	// simulated RNIC discards it (counted, invisible to the protocol).
	Duplicated bool
}

// Stats aggregates injected-fault counts across a plan's lifetime.
type Stats struct {
	Drops, Dups, Spikes     int64
	Retransmits, Timeouts   int64
	Stalls, PartitionBlocks int64
}

// Total returns the total number of injected fault events.
func (s Stats) Total() int64 {
	return s.Drops + s.Dups + s.Spikes + s.Stalls
}

// Merge folds another snapshot into this one (for aggregating plans
// across the many short-lived clusters a benchmark sweep builds).
func (s Stats) Merge(o Stats) Stats {
	s.Drops += o.Drops
	s.Dups += o.Dups
	s.Spikes += o.Spikes
	s.Stalls += o.Stalls
	s.PartitionBlocks += o.PartitionBlocks
	s.Retransmits += o.Retransmits
	s.Timeouts += o.Timeouts
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("drops=%d dups=%d spikes=%d stalls=%d partition_blocks=%d retransmits=%d timeouts=%d",
		s.Drops, s.Dups, s.Spikes, s.Stalls, s.PartitionBlocks, s.Retransmits, s.Timeouts)
}

// Plan is a seeded, deterministic fault schedule shared by all endpoints
// of one fabric. Safe for concurrent use; each link serialises its own
// decisions.
type Plan struct {
	cfg   Config
	links []*link

	tgtMu     sync.Mutex
	kindCount map[uint8]int64 // traversals seen per kind (for Targeted)

	drops, dups, spikes     atomic.Int64
	retransmits, timeouts   atomic.Int64
	stalls, partitionBlocks atomic.Int64
}

type link struct {
	from, to int

	mu      sync.Mutex
	rng     *rand.Rand
	seq     int64
	log     []string
	clipped int64 // entries beyond LogCap
}

// New builds a plan. Nodes must be positive.
func New(cfg Config) *Plan {
	if cfg.Nodes <= 0 {
		panic("fault: Nodes must be positive")
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = DefaultRetryBudget
	}
	if cfg.RTO <= 0 {
		cfg.RTO = DefaultRTO
	}
	if cfg.BackoffShiftCap == 0 {
		cfg.BackoffShiftCap = DefaultBackoffShiftCap
	}
	if cfg.LogCap <= 0 {
		cfg.LogCap = DefaultLogCap
	}
	p := &Plan{
		cfg:       cfg,
		links:     make([]*link, cfg.Nodes*cfg.Nodes),
		kindCount: make(map[uint8]int64),
	}
	for from := 0; from < cfg.Nodes; from++ {
		for to := 0; to < cfg.Nodes; to++ {
			id := from*cfg.Nodes + to
			p.links[id] = &link{
				from: from,
				to:   to,
				rng:  rand.New(rand.NewSource(cfg.Seed ^ (int64(id)+1)*0x5851f42d4c957f2d)),
			}
		}
	}
	return p
}

// Seed returns the plan's seed (printed in failure reports).
func (p *Plan) Seed() int64 { return p.cfg.Seed }

// Config returns a copy of the effective configuration.
func (p *Plan) Config() Config { return p.cfg }

// Stats snapshots the aggregate fault counters.
func (p *Plan) Stats() Stats {
	return Stats{
		Drops:           p.drops.Load(),
		Dups:            p.dups.Load(),
		Spikes:          p.spikes.Load(),
		Retransmits:     p.retransmits.Load(),
		Timeouts:        p.timeouts.Load(),
		Stalls:          p.stalls.Load(),
		PartitionBlocks: p.partitionBlocks.Load(),
	}
}

func (p *Plan) link(from, to int) *link {
	return p.links[from*p.cfg.Nodes+to]
}

func (p *Plan) partitioned(from, to int, vt int64) bool {
	for _, w := range p.cfg.Partitions {
		if vt < w.Start || vt >= w.End {
			continue
		}
		if (w.A == from && w.B == to) || (w.A == to && w.B == from) {
			return true
		}
	}
	return false
}

// targetedDrop reports whether this traversal of kind matches a
// Targeted rule. Counted plan-wide in traversal order per kind.
func (p *Plan) targetedDrop(kind uint8) bool {
	if len(p.cfg.Targeted) == 0 {
		return false
	}
	p.tgtMu.Lock()
	defer p.tgtMu.Unlock()
	p.kindCount[kind]++
	n := p.kindCount[kind]
	for _, r := range p.cfg.Targeted {
		if r.Kind == kind && r.Nth == n {
			return true
		}
	}
	return false
}

func (l *link) logf(cap int, format string, args ...any) {
	if len(l.log) >= cap {
		l.clipped++
		return
	}
	l.log = append(l.log, fmt.Sprintf(format, args...))
}

// Wire decides the fate of one traversal of the (from, to) link carrying
// a message of the given kind whose first transmission lands at virtual
// time vt. It models the RC retransmission loop: each lost attempt
// charges an exponentially backed-off RTO and retries, until delivery or
// budget exhaustion.
func (p *Plan) Wire(from, to int, kind uint8, vt int64) Verdict {
	l := p.link(from, to)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	seq := l.seq

	v := Verdict{Attempts: 1}
	forced := p.targetedDrop(kind)
	at := vt
	for {
		cause := ""
		switch {
		case p.partitioned(from, to, at):
			cause = "partition"
			p.partitionBlocks.Add(1)
		case forced:
			cause = "targeted"
			forced = false
		case p.cfg.DropProb > 0 && l.rng.Float64() < p.cfg.DropProb:
			cause = "drop"
		}
		if cause == "" {
			break
		}
		v.Faults++
		p.drops.Add(1)
		l.logf(p.cfg.LogCap, "%d->%d #%d kind=%d %s attempt=%d vt=%d", from, to, seq, kind, cause, v.Attempts, at)
		if v.Attempts >= p.cfg.RetryBudget {
			p.timeouts.Add(1)
			l.logf(p.cfg.LogCap, "%d->%d #%d kind=%d retry-exceeded attempts=%d vt=%d", from, to, seq, kind, v.Attempts, at)
			return v
		}
		shift := uint(v.Attempts - 1)
		if shift > p.cfg.BackoffShiftCap {
			shift = p.cfg.BackoffShiftCap
		}
		pen := p.cfg.RTO << shift
		v.ExtraNs += pen
		at += pen
		v.Attempts++
		p.retransmits.Add(1)
	}
	v.Delivered = true
	if p.cfg.DupProb > 0 && l.rng.Float64() < p.cfg.DupProb {
		v.Duplicated = true
		v.Faults++
		p.dups.Add(1)
		l.logf(p.cfg.LogCap, "%d->%d #%d kind=%d dup vt=%d", from, to, seq, kind, at)
	}
	if p.cfg.SpikeProb > 0 && l.rng.Float64() < p.cfg.SpikeProb {
		v.ExtraNs += p.cfg.SpikeNs
		v.Faults++
		p.spikes.Add(1)
		l.logf(p.cfg.LogCap, "%d->%d #%d kind=%d spike=%dns vt=%d", from, to, seq, kind, p.cfg.SpikeNs, at)
	}
	return v
}

// StallUntil returns the virtual time at which a traversal arriving at
// node at virtual time vt becomes visible, accounting for stall windows
// (possibly chained). Returns vt unchanged when the node is live.
func (p *Plan) StallUntil(node int, vt int64) int64 {
	out := vt
	for changed := true; changed; {
		changed = false
		for _, s := range p.cfg.Stalls {
			if s.Node == node && out >= s.Start && out < s.End {
				out = s.End
				changed = true
			}
		}
	}
	if out != vt {
		p.stalls.Add(1)
	}
	return out
}

// Log renders the full fault log, deterministically ordered by
// (from, to, traversal sequence). Two runs that feed each link the same
// traversal sequence produce byte-identical logs.
func (p *Plan) Log() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fault plan seed=%d nodes=%d drop=%g dup=%g spike=%g budget=%d rto=%dns\n",
		p.cfg.Seed, p.cfg.Nodes, p.cfg.DropProb, p.cfg.DupProb, p.cfg.SpikeProb,
		p.cfg.RetryBudget, p.cfg.RTO)
	for _, l := range p.links {
		l.mu.Lock()
		for _, e := range l.log {
			b.WriteString(e)
			b.WriteByte('\n')
		}
		if l.clipped > 0 {
			fmt.Fprintf(&b, "%d->%d (+%d entries clipped)\n", l.from, l.to, l.clipped)
		}
		l.mu.Unlock()
	}
	fmt.Fprintf(&b, "stats: %s\n", p.Stats())
	return b.String()
}
