package kvs

import (
	"fmt"
	"testing"

	"darray/internal/cluster"
)

func TestScanCountsEntries(t *testing.T) {
	c := tc(t, 1)
	c.Run(func(n *cluster.Node) {
		s := NewDArray(n, Config{Buckets: 16, ByteWords: 1 << 16})
		ctx := n.NewCtx(0)
		st := s.Scan(ctx)
		if st.UsedEntries != 0 || st.OverflowBuckets != 0 {
			t.Fatalf("fresh store not empty: %+v", st)
		}
		const keys = 40
		for i := 0; i < keys; i++ {
			if err := s.Put(ctx, []byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
		st = s.Scan(ctx)
		if st.UsedEntries != keys {
			t.Fatalf("UsedEntries = %d, want %d", st.UsedEntries, keys)
		}
		if st.SlabUsedWords == 0 {
			t.Fatal("slab usage not reported")
		}
		for i := 0; i < keys/2; i++ {
			if err := s.Delete(ctx, []byte(fmt.Sprintf("k%02d", i))); err != nil {
				t.Fatal(err)
			}
		}
		st = s.Scan(ctx)
		if st.UsedEntries != keys/2 {
			t.Fatalf("after deletes: UsedEntries = %d, want %d", st.UsedEntries, keys/2)
		}
	})
}

func TestScanSeesOverflow(t *testing.T) {
	c := tc(t, 1)
	c.Run(func(n *cluster.Node) {
		s := NewDArray(n, Config{Buckets: 1, ByteWords: 1 << 16})
		ctx := n.NewCtx(0)
		for i := 0; i < 40; i++ { // > 15 entries forces chaining
			if err := s.Put(ctx, []byte(fmt.Sprintf("key%02d", i)), []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
		st := s.Scan(ctx)
		if st.OverflowBuckets == 0 {
			t.Fatal("expected overflow buckets in use")
		}
		if st.UsedEntries != 40 {
			t.Fatalf("UsedEntries = %d, want 40", st.UsedEntries)
		}
	})
}
