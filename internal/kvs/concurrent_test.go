package kvs

import (
	"fmt"
	"testing"

	"darray/internal/cluster"
)

// TestConcurrentPutDeleteGet mixes deletes into a concurrent workload:
// every (node, thread) owns a disjoint key range, so each worker can
// assert exact visibility of its own operations while cross-bucket
// traffic from the others exercises shared chains, slab reuse, and the
// lock service.
func TestConcurrentPutDeleteGet(t *testing.T) {
	const nodes, threads, keysPer = 2, 3, 30
	c := tc(t, nodes)
	c.Run(func(n *cluster.Node) {
		s := NewDArray(n, Config{Buckets: 32, ByteWords: 2 << 17})
		root := n.NewCtx(0)
		c.Barrier(root)
		n.RunThreads(threads, func(ctx *cluster.Ctx) {
			key := func(i int) []byte {
				return []byte(fmt.Sprintf("o%d-%d-%d", n.ID(), ctx.TID, i))
			}
			// Insert, verify, delete half, verify the split.
			for i := 0; i < keysPer; i++ {
				if err := s.Put(ctx, key(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
			for i := 0; i < keysPer; i++ {
				v, err := s.Get(ctx, key(i))
				if err != nil || string(v) != fmt.Sprintf("v%d", i) {
					t.Errorf("get own key %d: (%q, %v)", i, v, err)
					return
				}
			}
			for i := 0; i < keysPer; i += 2 {
				if err := s.Delete(ctx, key(i)); err != nil {
					t.Errorf("delete %d: %v", i, err)
					return
				}
			}
			for i := 0; i < keysPer; i++ {
				v, err := s.Get(ctx, key(i))
				if i%2 == 0 {
					if err != ErrNotFound {
						t.Errorf("deleted key %d still returns (%q, %v)", i, v, err)
						return
					}
				} else if err != nil || string(v) != fmt.Sprintf("v%d", i) {
					t.Errorf("surviving key %d: (%q, %v)", i, v, err)
					return
				}
			}
			// Re-insert the deleted half with new values (slab reuse).
			for i := 0; i < keysPer; i += 2 {
				if err := s.Put(ctx, key(i), []byte(fmt.Sprintf("w%d", i))); err != nil {
					t.Errorf("re-put: %v", err)
					return
				}
				v, err := s.Get(ctx, key(i))
				if err != nil || string(v) != fmt.Sprintf("w%d", i) {
					t.Errorf("re-get %d: (%q, %v)", i, v, err)
					return
				}
			}
		})
		c.Barrier(root)
		// Global count check.
		st := s.Scan(root)
		want := int64(nodes * threads * keysPer)
		if st.UsedEntries != want {
			t.Errorf("UsedEntries = %d, want %d", st.UsedEntries, want)
		}
		c.Barrier(root)
	})
}
