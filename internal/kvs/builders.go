package kvs

import (
	"darray/internal/cluster"
	"darray/internal/core"
)

// NewDArray collectively builds the KVS over DArray storage (the
// paper's DArray-based KVS).
func NewDArray(node *cluster.Node, cfg Config) *Store {
	entryWords, byteWords := Sizes(cfg, node.Cluster().Nodes())
	entries := core.New(node, entryWords)
	bytes := core.New(node, byteWords)
	return New(node, entries, bytes, cfg)
}
