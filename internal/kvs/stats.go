package kvs

import "darray/internal/cluster"

// Stats summarizes the store's occupancy as seen by a full scan of the
// entry array (a management operation, not a fast path).
type Stats struct {
	Buckets         int64 // main buckets
	UsedEntries     int64 // non-empty entries, including overflow chains
	OverflowBuckets int64 // chained buckets in use
	SlabUsedWords   int64 // words carved from this node's slab region
}

// Scan walks every bucket and returns occupancy statistics. Buckets are
// read under their reader locks, so a concurrent workload sees no
// inconsistency (but Scan is O(buckets) and meant for tests/tools).
func (s *Store) Scan(ctx *cluster.Ctx) Stats {
	st := Stats{Buckets: s.nBuckets, SlabUsedWords: s.slab.Used()}
	for b := int64(0); b < s.nBuckets; b++ {
		lockIdx := s.bucketBase(b)
		s.entries.RLock(ctx, lockIdx)
		cur := b
		for {
			base := s.bucketBase(cur)
			for e := int64(0); e < entriesPerBkt; e++ {
				if s.entries.Get(ctx, base+e) != 0 {
					st.UsedEntries++
				}
			}
			next := s.entries.Get(ctx, base+entriesPerBkt)
			if next == 0 {
				break
			}
			st.OverflowBuckets++
			cur = int64(next - 1)
		}
		s.entries.Unlock(ctx, lockIdx)
	}
	return st
}
