package kvs

import (
	"fmt"
	"sync"
)

// Slab is a Memcached-style slab allocator (paper §5.2 ports Memcached's
// SlabAllocator to manage the byte array). It manages a contiguous
// region of the distributed byte array — each node instantiates one over
// its own partition so allocation stays node-local — carving fixed-size
// pages into size-class chunks with per-class free lists.
//
// Units are 8-byte words, matching the array granularity.
type Slab struct {
	mu        sync.Mutex
	base      int64 // first word of the managed region (global index)
	limit     int64 // one past the last word
	next      int64 // bump pointer for page carving
	classes   []slabClass
	pageWords int64
}

type slabClass struct {
	chunkWords int64
	free       []int64 // global word offsets of free chunks
	page       int64   // current partially-carved page (global offset), -1 if none
	pageUsed   int64   // words carved from the current page
}

const (
	minChunkWords    = 8 // 64 B
	growthFactorNum  = 5 // 1.25 growth factor, as memcached's default-ish
	growthFactorDen  = 4
	defaultPageWords = 8192 // 64 KiB pages
)

// NewSlab manages words [base, limit) of a global array.
func NewSlab(base, limit int64) *Slab {
	s := &Slab{base: base, limit: limit, next: base, pageWords: defaultPageWords}
	for c := int64(minChunkWords); c < s.pageWords; c = c*growthFactorNum/growthFactorDen + 1 {
		s.classes = append(s.classes, slabClass{chunkWords: c, page: -1})
	}
	// A whole-page class caps the ladder so any object up to a page fits.
	s.classes = append(s.classes, slabClass{chunkWords: s.pageWords, page: -1})
	return s
}

// classFor returns the index of the smallest class fitting n words.
func (s *Slab) classFor(n int64) int {
	for i := range s.classes {
		if s.classes[i].chunkWords >= n {
			return i
		}
	}
	return -1
}

// Alloc returns the global word offset of a chunk of at least n words,
// or an error when the region is exhausted.
func (s *Slab) Alloc(n int64) (int64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("kvs: alloc of %d words", n)
	}
	ci := s.classFor(n)
	if ci < 0 {
		return 0, fmt.Errorf("kvs: object of %d words exceeds max chunk %d", n, s.pageWords)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cl := &s.classes[ci]
	if len(cl.free) > 0 {
		off := cl.free[len(cl.free)-1]
		cl.free = cl.free[:len(cl.free)-1]
		return off, nil
	}
	if cl.page < 0 || cl.pageUsed+cl.chunkWords > s.pageWords {
		if s.next+s.pageWords > s.limit {
			return 0, fmt.Errorf("kvs: slab region exhausted (%d of %d words used)",
				s.next-s.base, s.limit-s.base)
		}
		cl.page = s.next
		cl.pageUsed = 0
		s.next += s.pageWords
	}
	off := cl.page + cl.pageUsed
	cl.pageUsed += cl.chunkWords
	return off, nil
}

// Free returns a chunk of capacity n words (the n passed to Alloc) to
// its size class.
func (s *Slab) Free(off, n int64) {
	ci := s.classFor(n)
	if ci < 0 {
		panic("kvs: free of oversized chunk")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.classes[ci].free = append(s.classes[ci].free, off)
}

// ChunkWords reports the allocated capacity class for a request of n
// words (what Free must be called with is n itself; this helper exposes
// internal rounding for tests and stats).
func (s *Slab) ChunkWords(n int64) int64 {
	ci := s.classFor(n)
	if ci < 0 {
		return -1
	}
	return s.classes[ci].chunkWords
}

// Used reports words carved from the region so far (pages, not chunks).
func (s *Slab) Used() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next - s.base
}
