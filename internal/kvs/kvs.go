// Package kvs implements the paper's distributed key-value store (§5.2):
// an entry array partitioned into buckets of 15 entries plus an overflow
// pointer, and a byte array managed by a Memcached-style slab allocator.
// Each 8-byte entry packs an 8-bit tag, a 16-bit size, and a 40-bit word
// offset into the byte array. Gets probe a bucket under the distributed
// reader lock; puts update it under the writer lock.
//
// The store is generic over a WordStore, so the same code runs on
// DArray (internal/core) and on the GAM baseline (internal/gamkvs wires
// that up), which is exactly the comparison in the paper's Figure 17.
package kvs

import (
	"encoding/binary"
	"errors"
	"hash/fnv"
	"sync"

	"darray/internal/cluster"
)

// WordStore is the distributed-array interface the KVS is built on.
// Both *core.Array and *gam.Array satisfy it.
type WordStore interface {
	Get(ctx *cluster.Ctx, i int64) uint64
	Set(ctx *cluster.Ctx, i int64, v uint64)
	RLock(ctx *cluster.Ctx, i int64)
	WLock(ctx *cluster.Ctx, i int64)
	Unlock(ctx *cluster.Ctx, i int64)
	LocalRange() (int64, int64)
	Len() int64
}

const (
	// BucketWords is the bucket layout: 15 entries + 1 overflow pointer.
	BucketWords    = 16
	entriesPerBkt  = 15
	tagBits        = 8
	sizeBits       = 16
	offBits        = 40
	maxKVWords     = (1 << sizeBits) - 1
	overflowFactor = 4 // 1/overflowFactor of buckets reserved for chains
)

// entry packing: [ tag:8 | size:16 | off:40 ], zero means empty.
func packEntry(tag uint8, sizeWords int64, off int64) uint64 {
	return uint64(tag)<<56 | uint64(sizeWords)<<40 | uint64(off)
}

func unpackEntry(e uint64) (tag uint8, sizeWords int64, off int64) {
	return uint8(e >> 56), int64(e>>40) & 0xffff, int64(e & ((1 << offBits) - 1))
}

// Store is one node's handle to the distributed KVS.
type Store struct {
	entries WordStore
	bytes   WordStore
	slab    *Slab
	node    *cluster.Node

	nBuckets   int64 // main buckets
	oflowBase  int64 // first overflow bucket index
	oflowLimit int64
	oflowMu    sync.Mutex
	oflowNext  int64 // local overflow cursor into this node's share
}

// Node returns this handle's node.
func (s *Store) Node() *cluster.Node { return s.node }

// WordStores exposes the underlying entry and byte stores, so harnesses
// (chaos testing) can reach the backing arrays for invariant checks.
func (s *Store) WordStores() (entries, bytes WordStore) { return s.entries, s.bytes }

// ErrNotFound is returned by Get/Delete when the key is absent.
var ErrNotFound = errors.New("kvs: key not found")

// Config sizes the store.
type Config struct {
	Buckets   int64 // main bucket count (rounded up to a power of two)
	ByteWords int64 // byte-array capacity in words
}

// New collectively creates the KVS over the given stores. entries must
// have (Buckets + Buckets/overflowFactor) * BucketWords elements and
// bytes must have ByteWords elements; use Sizes to compute them.
func New(node *cluster.Node, entries, bytes WordStore, cfg Config) *Store {
	nb := ceilPow2(cfg.Buckets)
	s := &Store{
		entries:   entries,
		bytes:     bytes,
		node:      node,
		nBuckets:  nb,
		oflowBase: nb,
	}
	s.oflowLimit = nb + overflowCount(nb, node.Cluster().Nodes())
	// Slab manages this node's local partition of the byte array.
	lo, hi := bytes.LocalRange()
	s.slab = NewSlab(lo, hi)
	// Per-node overflow slice: node v allocates overflow buckets from
	// its own 1/n share of the overflow area.
	c := node.Cluster()
	share := (s.oflowLimit - s.oflowBase) / int64(c.Nodes())
	s.oflowNext = s.oflowBase + int64(node.ID())*share
	return s
}

// Sizes returns the required entry-array and byte-array lengths for cfg
// on a cluster with the given node count.
func Sizes(cfg Config, nodes int) (entryWords, byteWords int64) {
	nb := ceilPow2(cfg.Buckets)
	return (nb + overflowCount(nb, nodes)) * BucketWords, cfg.ByteWords
}

// overflowCount reserves chain buckets: a quarter of the main buckets,
// with a floor of eight per node so tiny tables can still chain.
func overflowCount(nb int64, nodes int) int64 {
	n := nb / overflowFactor
	if min := int64(8 * nodes); n < min {
		n = min
	}
	return n
}

func ceilPow2(n int64) int64 {
	p := int64(1)
	for p < n {
		p <<= 1
	}
	return p
}

// hashKey maps a key to (bucket, tag). Tag 0 is reserved for empty
// entries, so tags are folded into 1..255.
func (s *Store) hashKey(key []byte) (bucket int64, tag uint8) {
	h := fnv.New64a()
	h.Write(key)
	v := h.Sum64()
	bucket = int64(v & uint64(s.nBuckets-1))
	tag = uint8(v >> 56)
	if tag == 0 {
		tag = 1
	}
	return bucket, tag
}

func (s *Store) bucketBase(b int64) int64 { return b * BucketWords }

// kv layout in the byte array: word 0 = [keyBytes u32 | valBytes u32],
// then the key words, then the value words.
func kvWords(keyLen, valLen int) int64 {
	return 1 + wordsFor(keyLen) + wordsFor(valLen)
}

func wordsFor(n int) int64 { return int64((n + 7) / 8) }

func packBytes(dst func(i int64, v uint64), base int64, b []byte) {
	for w := int64(0); w*8 < int64(len(b)); w++ {
		var buf [8]byte
		copy(buf[:], b[w*8:])
		dst(base+w, binary.LittleEndian.Uint64(buf[:]))
	}
}

func unpackBytes(src func(i int64) uint64, base int64, n int) []byte {
	out := make([]byte, n)
	for w := int64(0); w*8 < int64(n); w++ {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], src(base+w))
		copy(out[w*8:], buf[:])
	}
	return out
}

// writeKV stores key/val into the byte array at off.
func (s *Store) writeKV(ctx *cluster.Ctx, off int64, key, val []byte) {
	s.bytes.Set(ctx, off, uint64(len(key))<<32|uint64(len(val)))
	set := func(i int64, v uint64) { s.bytes.Set(ctx, i, v) }
	packBytes(set, off+1, key)
	packBytes(set, off+1+wordsFor(len(key)), val)
}

// readKV loads the key/value pair stored at off.
func (s *Store) readKV(ctx *cluster.Ctx, off int64) (key, val []byte) {
	hdr := s.bytes.Get(ctx, off)
	kl, vl := int(hdr>>32), int(hdr&0xffffffff)
	get := func(i int64) uint64 { return s.bytes.Get(ctx, i) }
	key = unpackBytes(get, off+1, kl)
	val = unpackBytes(get, off+1+wordsFor(kl), vl)
	return key, val
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// probe walks bucket b (and its overflow chain) looking for key, and
// returns the entry's global index, its contents, and whether it
// matched. When no match is found, firstFree is the index of the first
// empty slot on the chain (or -1) and lastBucket is the chain's tail.
func (s *Store) probe(ctx *cluster.Ctx, b int64, tag uint8, key []byte) (idx int64, ent uint64, found bool, firstFree int64, lastBucket int64) {
	firstFree = -1
	for {
		base := s.bucketBase(b)
		for e := int64(0); e < entriesPerBkt; e++ {
			ent = s.entries.Get(ctx, base+e)
			if ent == 0 {
				if firstFree < 0 {
					firstFree = base + e
				}
				continue
			}
			t, _, off := unpackEntry(ent)
			if t != tag {
				continue
			}
			k, _ := s.readKV(ctx, off)
			if bytesEqual(k, key) {
				return base + e, ent, true, firstFree, b
			}
		}
		next := s.entries.Get(ctx, base+entriesPerBkt)
		if next == 0 {
			return 0, 0, false, firstFree, b
		}
		b = int64(next - 1) // stored as bucket+1 so 0 means "none"
	}
}

// Get returns the value stored under key (paper Figure 11's flow: hash,
// probe entries under the reader lock, follow the overflow pointer).
func (s *Store) Get(ctx *cluster.Ctx, key []byte) ([]byte, error) {
	b, tag := s.hashKey(key)
	lockIdx := s.bucketBase(b)
	s.entries.RLock(ctx, lockIdx)
	_, ent, found, _, _ := s.probe(ctx, b, tag, key)
	if !found {
		s.entries.Unlock(ctx, lockIdx)
		return nil, ErrNotFound
	}
	_, _, off := unpackEntry(ent)
	_, val := s.readKV(ctx, off)
	s.entries.Unlock(ctx, lockIdx)
	return val, nil
}

// Put inserts or replaces key's value.
func (s *Store) Put(ctx *cluster.Ctx, key, val []byte) error {
	words := kvWords(len(key), len(val))
	if words > maxKVWords {
		return errors.New("kvs: key-value pair too large")
	}
	off, err := s.slab.Alloc(words)
	if err != nil {
		return err
	}
	s.writeKV(ctx, off, key, val)

	b, tag := s.hashKey(key)
	lockIdx := s.bucketBase(b)
	s.entries.WLock(ctx, lockIdx)
	idx, old, found, firstFree, lastBucket := s.probe(ctx, b, tag, key)
	switch {
	case found:
		s.entries.Set(ctx, idx, packEntry(tag, words, off))
		s.entries.Unlock(ctx, lockIdx)
		_, oldWords, oldOff := unpackEntry(old)
		s.freeKV(oldOff, oldWords)
		return nil
	case firstFree >= 0:
		s.entries.Set(ctx, firstFree, packEntry(tag, words, off))
		s.entries.Unlock(ctx, lockIdx)
		return nil
	default:
		// Chain a fresh overflow bucket onto the tail.
		nb, err := s.allocOverflow()
		if err != nil {
			s.entries.Unlock(ctx, lockIdx)
			s.freeKV(off, words)
			return err
		}
		s.entries.Set(ctx, s.bucketBase(nb), packEntry(tag, words, off))
		s.entries.Set(ctx, s.bucketBase(lastBucket)+entriesPerBkt, uint64(nb+1))
		s.entries.Unlock(ctx, lockIdx)
		return nil
	}
}

// Delete removes key.
func (s *Store) Delete(ctx *cluster.Ctx, key []byte) error {
	b, tag := s.hashKey(key)
	lockIdx := s.bucketBase(b)
	s.entries.WLock(ctx, lockIdx)
	idx, ent, found, _, _ := s.probe(ctx, b, tag, key)
	if !found {
		s.entries.Unlock(ctx, lockIdx)
		return ErrNotFound
	}
	s.entries.Set(ctx, idx, 0)
	s.entries.Unlock(ctx, lockIdx)
	_, words, off := unpackEntry(ent)
	s.freeKV(off, words)
	return nil
}

// freeKV returns a KV chunk to its owning node's slab. Chunks allocated
// by other nodes are leaked by design: Memcached-style slabs are
// node-local, and cross-node frees would need a message we account as
// deferred reclamation (the paper's KVS does not evaluate deletes).
func (s *Store) freeKV(off, words int64) {
	lo, hi := s.bytes.LocalRange()
	if off >= lo && off < hi {
		s.slab.Free(off, words)
	}
}

// allocOverflow hands out an overflow bucket from this node's share.
func (s *Store) allocOverflow() (int64, error) {
	c := s.node.Cluster()
	share := (s.oflowLimit - s.oflowBase) / int64(c.Nodes())
	end := s.oflowBase + int64(s.node.ID()+1)*share
	s.oflowMu.Lock()
	defer s.oflowMu.Unlock()
	if s.oflowNext >= end {
		return 0, errors.New("kvs: overflow buckets exhausted")
	}
	nb := s.oflowNext
	s.oflowNext++
	return nb, nil
}
