package kvs

import (
	"fmt"
	"testing"
	"testing/quick"

	"darray/internal/cluster"
	"darray/internal/ycsb"
)

func tc(t *testing.T, nodes int) *cluster.Cluster {
	t.Helper()
	c := cluster.New(cluster.Config{Nodes: nodes, ChunkWords: 64, CacheChunks: 256})
	t.Cleanup(c.Close)
	return c
}

func smallCfg() Config { return Config{Buckets: 64, ByteWords: 1 << 17} }

func TestPutGetSingleNode(t *testing.T) {
	c := tc(t, 1)
	c.Run(func(n *cluster.Node) {
		s := NewDArray(n, smallCfg())
		ctx := n.NewCtx(0)
		if err := s.Put(ctx, []byte("hello"), []byte("world")); err != nil {
			t.Fatal(err)
		}
		v, err := s.Get(ctx, []byte("hello"))
		if err != nil || string(v) != "world" {
			t.Fatalf("Get = (%q, %v), want world", v, err)
		}
		if _, err := s.Get(ctx, []byte("absent")); err != ErrNotFound {
			t.Fatalf("missing key: err = %v, want ErrNotFound", err)
		}
	})
}

func TestPutReplace(t *testing.T) {
	c := tc(t, 1)
	c.Run(func(n *cluster.Node) {
		s := NewDArray(n, smallCfg())
		ctx := n.NewCtx(0)
		k := []byte("key")
		s.Put(ctx, k, []byte("v1"))
		s.Put(ctx, k, []byte("a-considerably-longer-second-value"))
		v, err := s.Get(ctx, k)
		if err != nil || string(v) != "a-considerably-longer-second-value" {
			t.Fatalf("after replace: (%q, %v)", v, err)
		}
	})
}

func TestDelete(t *testing.T) {
	c := tc(t, 1)
	c.Run(func(n *cluster.Node) {
		s := NewDArray(n, smallCfg())
		ctx := n.NewCtx(0)
		k := []byte("doomed")
		s.Put(ctx, k, []byte("v"))
		if err := s.Delete(ctx, k); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Get(ctx, k); err != ErrNotFound {
			t.Fatalf("deleted key still present: %v", err)
		}
		if err := s.Delete(ctx, k); err != ErrNotFound {
			t.Fatalf("double delete: %v, want ErrNotFound", err)
		}
	})
}

func TestOverflowChaining(t *testing.T) {
	// One main bucket forces every key onto one chain (15 entries per
	// bucket, so 100 keys need overflow buckets).
	c := tc(t, 1)
	c.Run(func(n *cluster.Node) {
		s := NewDArray(n, Config{Buckets: 1, ByteWords: 1 << 17})
		ctx := n.NewCtx(0)
		const keys = 100
		for i := 0; i < keys; i++ {
			k := []byte(fmt.Sprintf("key-%03d", i))
			if err := s.Put(ctx, k, []byte(fmt.Sprintf("val-%03d", i))); err != nil {
				t.Fatalf("put %d: %v", i, err)
			}
		}
		for i := 0; i < keys; i++ {
			k := []byte(fmt.Sprintf("key-%03d", i))
			v, err := s.Get(ctx, k)
			if err != nil || string(v) != fmt.Sprintf("val-%03d", i) {
				t.Fatalf("get %d: (%q, %v)", i, v, err)
			}
		}
	})
}

func TestDistributedPutGet(t *testing.T) {
	const nodes, per = 3, 60
	c := tc(t, nodes)
	c.Run(func(n *cluster.Node) {
		s := NewDArray(n, Config{Buckets: 256, ByteWords: 3 * (1 << 17)})
		ctx := n.NewCtx(0)
		c.Barrier(ctx)
		for i := 0; i < per; i++ {
			k := []byte(fmt.Sprintf("n%d-k%d", n.ID(), i))
			if err := s.Put(ctx, k, []byte(fmt.Sprintf("v%d-%d", n.ID(), i))); err != nil {
				t.Fatalf("put: %v", err)
			}
		}
		c.Barrier(ctx)
		// Every node reads every other node's keys.
		for v := 0; v < nodes; v++ {
			for i := 0; i < per; i++ {
				k := []byte(fmt.Sprintf("n%d-k%d", v, i))
				got, err := s.Get(ctx, k)
				if err != nil || string(got) != fmt.Sprintf("v%d-%d", v, i) {
					t.Fatalf("get %s: (%q, %v)", k, got, err)
				}
			}
		}
		c.Barrier(ctx)
	})
}

func TestConcurrentMixedWorkload(t *testing.T) {
	const nodes = 2
	c := tc(t, nodes)
	c.Run(func(n *cluster.Node) {
		s := NewDArray(n, Config{Buckets: 128, ByteWords: 2 << 17})
		root := n.NewCtx(0)
		gen := ycsb.NewGenerator(ycsb.Config{Records: 50, GetRatio: 0, Seed: 1})
		// Preload all records.
		if n.ID() == 0 {
			for r := int64(0); r < 50; r++ {
				if err := s.Put(root, ycsb.Key(r), gen.LoadValue(r)); err != nil {
					t.Fatal(err)
				}
			}
		}
		c.Barrier(root)
		n.RunThreads(3, func(ctx *cluster.Ctx) {
			g := ycsb.NewGenerator(ycsb.Config{
				Records: 50, GetRatio: 0.5,
				Seed: int64(n.ID()*10 + ctx.TID),
			})
			for k := 0; k < 200; k++ {
				op := g.Next()
				switch op.Kind {
				case ycsb.OpGet:
					v, err := s.Get(ctx, op.Key)
					if err != nil {
						t.Errorf("get %s: %v", op.Key, err)
						return
					}
					if !ycsb.ValidValue(ycsb.KeyID(op.Key), v) {
						t.Errorf("get %s returned foreign value", op.Key)
						return
					}
				case ycsb.OpPut:
					if err := s.Put(ctx, op.Key, op.Val); err != nil {
						t.Errorf("put: %v", err)
						return
					}
				}
			}
		})
		c.Barrier(root)
	})
}

func TestEntryPackingRoundTrip(t *testing.T) {
	f := func(tag uint8, size uint16, off uint32) bool {
		e := packEntry(tag, int64(size), int64(off))
		t2, s2, o2 := unpackEntry(e)
		return t2 == tag && s2 == int64(size) && o2 == int64(off)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSlabAllocFree(t *testing.T) {
	s := NewSlab(0, 1<<20)
	a, err := s.Alloc(10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Alloc(10)
	if err != nil || a == b {
		t.Fatalf("second alloc = (%d, %v)", b, err)
	}
	s.Free(a, 10)
	c2, err := s.Alloc(10)
	if err != nil || c2 != a {
		t.Fatalf("free list not reused: got %d, want %d", c2, a)
	}
}

func TestSlabSizeClasses(t *testing.T) {
	s := NewSlab(0, 1<<20)
	if s.ChunkWords(1) != minChunkWords {
		t.Errorf("min class = %d, want %d", s.ChunkWords(1), minChunkWords)
	}
	last := int64(0)
	for n := int64(1); n <= defaultPageWords; n *= 2 {
		c := s.ChunkWords(n)
		if c < n {
			t.Errorf("class for %d words is %d (< requested)", n, c)
		}
		if c < last {
			t.Errorf("class sizes not monotone")
		}
		last = c
	}
	if s.ChunkWords(defaultPageWords+1) != -1 {
		t.Error("oversize request should have no class")
	}
}

func TestSlabExhaustion(t *testing.T) {
	s := NewSlab(0, defaultPageWords) // exactly one page
	if _, err := s.Alloc(minChunkWords); err != nil {
		t.Fatal(err)
	}
	// Allocating a different class needs a second page → must fail.
	if _, err := s.Alloc(defaultPageWords / 2); err == nil {
		t.Fatal("expected exhaustion error")
	}
}

// Property: distinct live allocations never overlap.
func TestSlabNoOverlapQuick(t *testing.T) {
	f := func(sizes []uint8) bool {
		s := NewSlab(0, 1<<22)
		type alloc struct{ off, cap, n int64 }
		var live []alloc
		for _, raw := range sizes {
			n := int64(raw%200) + 1
			off, err := s.Alloc(n)
			if err != nil {
				return true // exhaustion is fine
			}
			capW := s.ChunkWords(n)
			for _, l := range live {
				if off < l.off+l.cap && l.off < off+capW {
					return false // overlap
				}
			}
			live = append(live, alloc{off, capW, n})
			if len(live) > 4 && raw%3 == 0 {
				l := live[0]
				live = live[1:]
				s.Free(l.off, l.n)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
