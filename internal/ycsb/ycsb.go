// Package ycsb generates YCSB-style key-value workloads: Zipfian key
// popularity (the Gray et al. incremental algorithm YCSB itself uses,
// with the paper's default skew of 0.99) and configurable get/put mixes,
// matching the Figure 17 evaluation.
package ycsb

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
)

// Zipfian draws from a Zipfian distribution over [0, n) with parameter
// theta, using the YCSB/Gray algorithm (constant time per sample).
type Zipfian struct {
	n     int64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	zeta2 float64
	rng   *rand.Rand
}

// NewZipfian builds a generator over n items with skew theta (0.99 is
// the YCSB default and what the paper uses).
func NewZipfian(n int64, theta float64, seed int64) *Zipfian {
	z := &Zipfian{n: n, theta: theta, rng: rand.New(rand.NewSource(seed))}
	z.zetan = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zeta(n int64, theta float64) float64 {
	sum := 0.0
	for i := int64(1); i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next returns the next sample; item 0 is the most popular.
func (z *Zipfian) Next() int64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// OpKind is a workload operation type.
type OpKind uint8

// Workload operation kinds.
const (
	OpGet OpKind = iota
	OpPut
	// OpRMW is a YCSB-F style read-modify-write: read the record, apply a
	// commutative update (the store maps it onto an Operate add).
	OpRMW
)

// Op is one generated operation.
type Op struct {
	Kind OpKind
	Key  []byte
	Val  []byte
	ID   int64 // record id behind Key
}

// Config describes a YCSB workload.
type Config struct {
	Records  int64   // distinct keys
	GetRatio float64 // fraction of gets (paper sweeps 0.5, 0.95, 1.0)
	RMWRatio float64 // fraction of read-modify-writes (YCSB-F; rest are puts)
	Theta    float64 // Zipfian skew (default 0.99)
	ValueLen int     // value size in bytes (YCSB default-ish 100)
	Seed     int64
}

// Generator produces a deterministic operation stream.
type Generator struct {
	cfg Config
	zip *Zipfian
	rng *rand.Rand
	val []byte
}

// NewGenerator builds a workload generator.
func NewGenerator(cfg Config) *Generator {
	if cfg.Theta == 0 {
		cfg.Theta = 0.99
	}
	if cfg.ValueLen == 0 {
		cfg.ValueLen = 100
	}
	g := &Generator{
		cfg: cfg,
		zip: NewZipfian(cfg.Records, cfg.Theta, cfg.Seed),
		rng: rand.New(rand.NewSource(cfg.Seed ^ 0x5bd1e995)),
	}
	g.val = make([]byte, cfg.ValueLen)
	for i := range g.val {
		g.val[i] = byte('a' + i%26)
	}
	return g
}

// Key renders record id r as the YCSB-style key "user<r>".
func Key(r int64) []byte {
	return []byte(fmt.Sprintf("user%016d", r))
}

// KeyID recovers the record id from a key (testing helper).
func KeyID(k []byte) int64 {
	var id int64
	fmt.Sscanf(string(k), "user%d", &id)
	return id
}

// Next produces the next operation. Values embed the record id so reads
// can be validated. One uniform draw partitions [0,1) into get / rmw /
// put bands, so a workload with RMWRatio zero generates a stream
// byte-identical to one configured before the RMW band existed.
func (g *Generator) Next() Op {
	r := g.zip.Next()
	u := g.rng.Float64()
	if u < g.cfg.GetRatio {
		return Op{Kind: OpGet, Key: Key(r), ID: r}
	}
	if u < g.cfg.GetRatio+g.cfg.RMWRatio {
		return Op{Kind: OpRMW, Key: Key(r), ID: r}
	}
	v := make([]byte, len(g.val))
	copy(v, g.val)
	binary.LittleEndian.PutUint64(v, uint64(r))
	return Op{Kind: OpPut, Key: Key(r), Val: v, ID: r}
}

// ValidValue reports whether v is a value Next could have written for
// record id r.
func ValidValue(r int64, v []byte) bool {
	return len(v) >= 8 && binary.LittleEndian.Uint64(v) == uint64(r)
}

// LoadValue returns the canonical initial value for record r (used to
// preload the store before measurement).
func (g *Generator) LoadValue(r int64) []byte {
	v := make([]byte, len(g.val))
	copy(v, g.val)
	binary.LittleEndian.PutUint64(v, uint64(r))
	return v
}
