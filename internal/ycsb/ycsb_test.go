package ycsb

import (
	"testing"
)

func TestZipfianRange(t *testing.T) {
	z := NewZipfian(1000, 0.99, 1)
	for i := 0; i < 100000; i++ {
		v := z.Next()
		if v < 0 || v >= 1000 {
			t.Fatalf("sample %d out of range", v)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	const n, draws = 1000, 200000
	z := NewZipfian(n, 0.99, 7)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	// Hot item should dwarf the median item and take a noticeable share.
	if counts[0] < draws/20 {
		t.Errorf("hottest item got %d of %d draws; not skewed enough", counts[0], draws)
	}
	if counts[0] <= counts[n/2]*10 {
		t.Errorf("head/median ratio too flat: %d vs %d", counts[0], counts[n/2])
	}
}

func TestZipfianUniformWhenThetaZero(t *testing.T) {
	const n, draws = 100, 100000
	z := NewZipfian(n, 0.01, 3) // near-uniform
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("item %d never drawn under near-uniform skew", i)
		}
	}
}

func TestZipfianDeterministic(t *testing.T) {
	a, b := NewZipfian(500, 0.99, 42), NewZipfian(500, 0.99, 42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed, different streams")
		}
	}
}

func TestGeneratorMix(t *testing.T) {
	g := NewGenerator(Config{Records: 100, GetRatio: 0.95, Seed: 1})
	gets := 0
	const n = 20000
	for i := 0; i < n; i++ {
		op := g.Next()
		if op.Kind == OpGet {
			gets++
			if op.Val != nil {
				t.Fatal("get op carries a value")
			}
		} else if len(op.Val) != 100 {
			t.Fatalf("put value len = %d, want 100", len(op.Val))
		}
	}
	ratio := float64(gets) / n
	if ratio < 0.93 || ratio > 0.97 {
		t.Fatalf("get ratio = %v, want ~0.95", ratio)
	}
}

func TestKeyRoundTrip(t *testing.T) {
	for _, r := range []int64{0, 1, 99, 123456789} {
		if got := KeyID(Key(r)); got != r {
			t.Errorf("KeyID(Key(%d)) = %d", r, got)
		}
	}
}

func TestValidValue(t *testing.T) {
	g := NewGenerator(Config{Records: 10, GetRatio: 0, Seed: 1})
	v := g.LoadValue(7)
	if !ValidValue(7, v) {
		t.Error("LoadValue not valid for its own record")
	}
	if ValidValue(8, v) {
		t.Error("value valid for wrong record")
	}
	if ValidValue(7, []byte("short")) {
		t.Error("short value accepted")
	}
}
