package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Chrome trace-event JSON export (the format Perfetto and
// chrome://tracing load). One process (pid) per node, spans packed
// greedily into lanes (tid) so overlapping spans on a node render on
// separate tracks, and flow events ("s"/"f" pairs) drawing an arrow for
// every parent→child edge that crosses nodes — the causal hops of the
// protocol. Timestamps are microsecond floats as the format demands;
// the exact integer span fields ride in args so ReadFile can
// reconstruct spans losslessly.

type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int64          `json:"pid"`
	TID   int64          `json:"tid"`
	ID    uint64         `json:"id,omitempty"`
	BP    string         `json:"bp,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	DisplayUnit string        `json:"displayTimeUnit,omitempty"`
}

// laneOf assigns each span on one node to the first lane whose previous
// span has ended — the usual greedy interval-graph coloring, so
// concurrent transactions stack instead of overdrawing each other.
func assignLanes(spans []Span) map[uint64]int64 {
	byNode := map[int32][]int{}
	for i := range spans {
		byNode[spans[i].Node] = append(byNode[spans[i].Node], i)
	}
	lanes := make(map[uint64]int64, len(spans))
	for _, idxs := range byNode {
		sort.SliceStable(idxs, func(a, b int) bool {
			si, sj := spans[idxs[a]], spans[idxs[b]]
			if si.Begin != sj.Begin {
				return si.Begin < sj.Begin
			}
			return sj.End < si.End // wider first so parents take lane 0
		})
		var laneEnd []int64
		for _, i := range idxs {
			s := spans[i]
			placed := false
			for ln := range laneEnd {
				if laneEnd[ln] <= s.Begin {
					laneEnd[ln] = s.End
					lanes[s.ID] = int64(ln)
					placed = true
					break
				}
			}
			if !placed {
				lanes[s.ID] = int64(len(laneEnd))
				laneEnd = append(laneEnd, s.End)
			}
		}
	}
	return lanes
}

// WriteJSON writes spans as Chrome trace-event JSON to w.
func WriteJSON(w io.Writer, spans []Span) error {
	lanes := assignLanes(spans)
	byID := make(map[uint64]*Span, len(spans))
	for i := range spans {
		byID[spans[i].ID] = &spans[i]
	}
	nodes := map[int32]bool{}
	out := chromeFile{DisplayUnit: "ns"}
	for i := range spans {
		s := &spans[i]
		if !nodes[s.Node] {
			nodes[s.Node] = true
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "process_name", Phase: "M", PID: int64(s.Node),
				Args: map[string]any{"name": fmt.Sprintf("node %d", s.Node)},
			})
		}
		dur := float64(s.Dur()) / 1e3
		if dur == 0 {
			dur = 0.001 // keep zero-length roots visible
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: s.Name, Cat: s.Stage.String(), Phase: "X",
			TS: float64(s.Begin) / 1e3, Dur: dur,
			PID: int64(s.Node), TID: lanes[s.ID],
			Args: map[string]any{
				"trace": s.Trace, "span": s.ID, "parent": s.Parent,
				"chunk": s.Chunk, "stage": int(s.Stage),
				"begin_ns": s.Begin, "end_ns": s.End,
			},
		})
		// Cross-node causal edge: arrow from the parent's end to this
		// span's begin.
		if p, ok := byID[s.Parent]; ok && p.Node != s.Node {
			out.TraceEvents = append(out.TraceEvents,
				chromeEvent{Name: "causal", Cat: "flow", Phase: "s", ID: s.ID,
					TS: float64(p.End) / 1e3, PID: int64(p.Node), TID: lanes[p.ID]},
				chromeEvent{Name: "causal", Cat: "flow", Phase: "f", BP: "e", ID: s.ID,
					TS: float64(s.Begin) / 1e3, PID: int64(s.Node), TID: lanes[s.ID]})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ExportFile writes spans as Chrome trace-event JSON to path.
func ExportFile(path string, spans []Span) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := WriteJSON(bw, spans); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteFile exports the tracer's retained spans to path.
func (t *Tracer) WriteFile(path string) error { return ExportFile(path, t.Spans()) }

// ReadFile loads spans back from an exported Chrome trace-event file,
// reconstructing them from the exact integer fields carried in args.
// Metadata and flow events are skipped.
func ReadFile(path string) ([]Span, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var file struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
			PID   int64  `json:"pid"`
			Args  struct {
				Trace   uint64 `json:"trace"`
				Span    uint64 `json:"span"`
				Parent  uint64 `json:"parent"`
				Chunk   int64  `json:"chunk"`
				Stage   int    `json:"stage"`
				BeginNS int64  `json:"begin_ns"`
				EndNS   int64  `json:"end_ns"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &file); err != nil {
		return nil, fmt.Errorf("trace: %s is not a Chrome trace-event file: %w", path, err)
	}
	var spans []Span
	for _, ev := range file.TraceEvents {
		if ev.Phase != "X" || ev.Args.Span == 0 {
			continue
		}
		spans = append(spans, Span{
			Trace: ev.Args.Trace, ID: ev.Args.Span, Parent: ev.Args.Parent,
			Node: int32(ev.PID), Stage: Stage(ev.Args.Stage), Name: ev.Name,
			Chunk: ev.Args.Chunk, Begin: ev.Args.BeginNS, End: ev.Args.EndNS,
		})
	}
	return spans, nil
}
