// Acceptance tests for the tracing subsystem as threaded through the
// real protocol stack: a YCSB-B-shaped KVS run and a bulk GetRange run
// each produce a Perfetto-loadable export whose span graph is fully
// linked and whose critical path attributes >= 95% of the longest root
// op's virtual time to named stages.
package trace_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"darray/internal/cluster"
	"darray/internal/core"
	"darray/internal/kvs"
	"darray/internal/trace"
	"darray/internal/vtime"
	"darray/internal/ycsb"
)

// checkExport exercises the full acceptance pipeline on a recorded
// tracer: write the Chrome trace, parse the raw JSON, reload the spans,
// verify linkage, and require critical-path coverage of the longest
// root.
func checkExport(t *testing.T, trc *trace.Tracer) {
	t.Helper()
	spans := trc.Spans()
	if len(spans) == 0 {
		t.Fatal("workload recorded no spans")
	}

	path := filepath.Join(t.TempDir(), "trace.json")
	if err := trc.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	// The raw bytes must be valid Chrome trace-event JSON.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("exported file is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < len(spans) {
		t.Fatalf("export holds %d events for %d spans", len(doc.TraceEvents), len(spans))
	}

	// Round-trip: reloaded spans must match what the tracer holds.
	loaded, err := trace.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if len(loaded) != len(spans) {
		t.Fatalf("round-trip lost spans: wrote %d, read %d", len(spans), len(loaded))
	}

	// Every non-root span's parent must be a live span of the same trace
	// (only guaranteed when the ring did not drop).
	if trc.Dropped() == 0 {
		byID := make(map[uint64]trace.Span, len(loaded))
		for _, s := range loaded {
			byID[s.ID] = s
		}
		for _, s := range loaded {
			if s.Parent == 0 {
				continue
			}
			p, ok := byID[s.Parent]
			if !ok {
				t.Fatalf("span %x (%s) has dangling parent %x", s.ID, s.Name, s.Parent)
			}
			if p.Trace != s.Trace {
				t.Fatalf("span %x parent crosses traces: %x vs %x", s.ID, s.Trace, p.Trace)
			}
		}
	}

	// The critical path of the slowest sampled op must attribute >= 95%
	// of its virtual time to named stages.
	root := trace.LongestRoot(loaded)
	if root.Trace == 0 {
		t.Fatal("no root spans in export")
	}
	cp := trace.CriticalPath(loaded, root)
	if cov := cp.Coverage(); cov < 0.95 {
		t.Errorf("critical path covers %.1f%% of root %s (%.0fns), want >= 95%%\n%s",
			100*cov, root.Name, float64(root.Dur()), cp.Report())
		dumpGaps(t, loaded, root)
	}
	for stage, ns := range cp.ByStage {
		if ns < 0 {
			t.Errorf("stage %s blamed negative time %d", stage, ns)
		}
	}
}

// TestAcceptanceYCSB runs a small YCSB-B-shaped workload (95% gets,
// zipfian keys) on the DArray KVS with tracing on.
func TestAcceptanceYCSB(t *testing.T) {
	trc := trace.New(0)
	trc.Enable(1)
	c := cluster.New(cluster.Config{
		Nodes: 3, ChunkWords: 64, CacheChunks: 64,
		Model:       vtime.Default(),
		Tracer:      trc,
		MsgKindName: core.KindName,
	})
	defer c.Close()

	const records = 512
	c.Run(func(n *cluster.Node) {
		store := kvs.NewDArray(n, kvs.Config{Buckets: 64, ByteWords: 3 * records * 24})
		ctx := n.NewCtx(0)
		gen := ycsb.NewGenerator(ycsb.Config{Records: records, ValueLen: 64, Seed: 7})
		per := int64(records / 3)
		lo := int64(n.ID()) * per
		hi := lo + per
		if n.ID() == 2 {
			hi = records
		}
		for r := lo; r < hi; r++ {
			if err := store.Put(ctx, ycsb.Key(r), gen.LoadValue(r)); err != nil {
				t.Errorf("load Put: %v", err)
				return
			}
		}
		c.Barrier(ctx)
		g := ycsb.NewGenerator(ycsb.Config{
			Records: records, GetRatio: 0.95, Theta: 0.99,
			ValueLen: 64, Seed: int64(n.ID() + 1),
		})
		for k := 0; k < 300; k++ {
			op := g.Next()
			switch op.Kind {
			case ycsb.OpGet:
				_, _ = store.Get(ctx, op.Key)
			case ycsb.OpPut:
				if err := store.Put(ctx, op.Key, op.Val); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}
		c.Barrier(ctx)
	})

	checkExport(t, trc)
}

// TestAcceptanceGetRange runs a cross-node bulk read with tracing on.
func TestAcceptanceGetRange(t *testing.T) {
	trc := trace.New(0)
	trc.Enable(1)
	c := cluster.New(cluster.Config{
		Nodes: 3, ChunkWords: 64, CacheChunks: 64,
		Model:       vtime.Default(),
		Tracer:      trc,
		MsgKindName: core.KindName,
	})
	defer c.Close()

	const n = 3 * 64 * 8
	c.Run(func(node *cluster.Node) {
		a := core.New(node, n)
		ctx := node.NewCtx(0)
		lo, hi := a.LocalRange()
		for i := lo; i < hi; i++ {
			a.Set(ctx, i, uint64(i)+1)
		}
		c.Barrier(ctx)
		if node.ID() == 0 {
			dst := make([]uint64, n)
			a.GetRange(ctx, 0, dst)
			for i, v := range dst {
				if v != uint64(i)+1 {
					t.Errorf("dst[%d] = %d, want %d", i, v, i+1)
					break
				}
			}
		}
		c.Barrier(ctx)
	})

	checkExport(t, trc)
}
