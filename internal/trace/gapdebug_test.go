package trace_test

// Temporary debug helper: prints the uncovered sub-intervals of a root.

import (
	"sort"
	"testing"

	"darray/internal/trace"
)

func dumpGaps(t *testing.T, spans []trace.Span, root trace.Span) {
	t.Helper()
	var same []trace.Span
	for _, s := range spans {
		if s.Trace == root.Trace && s.ID != root.ID {
			same = append(same, s)
		}
	}
	sort.Slice(same, func(i, j int) bool { return same[i].Begin < same[j].Begin })
	t.Logf("root %s [%d,%d] dur=%d, %d spans in trace", root.Name, root.Begin, root.End, root.Dur(), len(same))
	cur := root.Begin
	for _, s := range same {
		if s.End <= cur || s.Begin >= root.End {
			continue
		}
		if s.Begin > cur {
			t.Logf("  GAP [%d,%d] dur=%d (before %s@n%d [%d,%d])", cur, s.Begin, s.Begin-cur, s.Name, s.Node, s.Begin, s.End)
		}
		if s.End > cur {
			cur = s.End
		}
	}
	if cur < root.End {
		t.Logf("  GAP [%d,%d] dur=%d (tail)", cur, root.End, root.End-cur)
	}
	for _, s := range same {
		t.Logf("  span %s@n%d stage=%v [%d,%d] id=%x par=%x", s.Name, s.Node, s.Stage, s.Begin, s.End, s.ID, s.Parent)
	}
}
