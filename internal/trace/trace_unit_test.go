package trace

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"darray/internal/telemetry"
)

func TestDisabledTracerEmitsNothing(t *testing.T) {
	tr := New(16)
	if tc := tr.SampleRoot(); tc.Valid() {
		t.Fatalf("disabled tracer sampled a root: %+v", tc)
	}
	tc := Ctx{Trace: 1, Span: 1}
	if got := tr.Child(tc, 0, StageService, "x", 0, 0, 10); got != tc {
		t.Fatalf("disabled Child changed ctx: %+v", got)
	}
	if tr.Len() != 0 {
		t.Fatalf("disabled tracer recorded %d spans", tr.Len())
	}
}

func TestSampling(t *testing.T) {
	tr := New(0)
	tr.Enable(4)
	sampled := 0
	for i := 0; i < 100; i++ {
		if tr.SampleRoot().Valid() {
			sampled++
		}
	}
	if sampled != 25 {
		t.Fatalf("sample=4 over 100 ops sampled %d, want 25", sampled)
	}
}

func TestChildChainsAndSkipsEmpty(t *testing.T) {
	tr := New(0)
	tr.Enable(1)
	root := tr.SampleRoot()
	c1 := tr.Child(root, 0, StageQueue, "q", 7, 100, 200)
	if c1 == root {
		t.Fatal("nonzero child did not advance the chain")
	}
	// Zero-length interval: skipped, chain unchanged.
	c2 := tr.Child(c1, 0, StageWire, "w", 7, 200, 200)
	if c2 != c1 {
		t.Fatalf("zero-length child advanced the chain: %+v", c2)
	}
	c3 := tr.Child(c2, 1, StageService, "s", 7, 200, 450)
	tr.RecordRoot(root, 0, "Get", 7, 100, 500)
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Parent != root.Span || spans[1].Parent != spans[0].ID {
		t.Fatalf("bad parent chain: %+v", spans)
	}
	if c3.Trace != root.Trace {
		t.Fatal("chain changed trace id")
	}
	// Root: ID == Trace, Parent == 0.
	var rs *Span
	for i := range spans {
		if spans[i].Stage == StageOp {
			rs = &spans[i]
		}
	}
	if rs == nil || rs.ID != rs.Trace || rs.Parent != 0 {
		t.Fatalf("bad root span: %+v", rs)
	}
}

func TestCapacityDropsKeepLinks(t *testing.T) {
	tr := New(2)
	tr.Enable(1)
	root := tr.SampleRoot()
	c := root
	for i := 0; i < 10; i++ {
		c = tr.Child(c, 0, StageService, "s", 0, int64(i*10), int64(i*10+5))
	}
	if tr.Dropped() != 8 {
		t.Fatalf("dropped=%d, want 8", tr.Dropped())
	}
	spans := tr.Spans()
	ids := map[uint64]bool{root.Span: true}
	for _, s := range spans {
		if !ids[s.Parent] {
			t.Fatalf("span %+v parents a dropped span", s)
		}
		ids[s.ID] = true
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr := New(0)
	tr.Enable(1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				root := tr.SampleRoot()
				c := tr.Child(root, 0, StageQueue, "q", 0, 0, 10)
				tr.Child(c, 1, StageService, "s", 0, 10, 20)
				tr.RecordRoot(root, 0, "op", 0, 0, 20)
			}
		}()
	}
	wg.Wait()
	if got := tr.Len(); got != 8*200*3 {
		t.Fatalf("got %d spans, want %d", got, 8*200*3)
	}
}

func TestCollector(t *testing.T) {
	tr := New(0)
	tr.Enable(1)
	root := tr.SampleRoot()
	tr.Child(root, 0, StageWire, "w", 0, 0, 900)
	tr.RecordRoot(root, 0, "Get", 0, 0, 1000)
	reg := telemetry.New()
	reg.AddCollector(tr.Collector())
	snap := reg.Snapshot()
	if m, ok := snap.Get("trace/spans"); !ok || m.Total() != 2 {
		t.Fatalf("trace/spans metric missing or wrong: %+v", m)
	}
	if m, ok := snap.Get("trace/stage/wire"); !ok || m.Hist == nil || m.Hist.Count != 1 {
		t.Fatalf("trace/stage/wire histogram missing: %+v", m)
	}
}

func TestExportRoundTrip(t *testing.T) {
	tr := New(0)
	tr.Enable(1)
	root := tr.SampleRoot()
	c := tr.Child(root, 0, StageQueue, "txq", 3, 100, 180)
	c = tr.Child(c, 0, StageWire, "wire", 3, 180, 1080)
	c = tr.Child(c, 1, StageService, "read-req", 3, 1080, 1330)
	tr.Child(c, 1, StageFanout, "inv-fanout", 3, 1330, 2330)
	tr.RecordRoot(root, 0, "Get", 3, 50, 2500)

	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	// The file must be generic valid JSON with a traceEvents array.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var generic map[string]any
	if err := json.Unmarshal(raw, &generic); err != nil {
		t.Fatalf("exported file is not valid JSON: %v", err)
	}
	if _, ok := generic["traceEvents"].([]any); !ok {
		t.Fatal("exported file has no traceEvents array")
	}

	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	orig := tr.Spans()
	if len(back) != len(orig) {
		t.Fatalf("round trip lost spans: %d != %d", len(back), len(orig))
	}
	byID := map[uint64]Span{}
	for _, s := range back {
		byID[s.ID] = s
	}
	for _, s := range orig {
		if byID[s.ID] != s {
			t.Fatalf("span %v came back as %v", s, byID[s.ID])
		}
	}
}

func TestFlowEventsForCrossNodeEdges(t *testing.T) {
	tr := New(0)
	tr.Enable(1)
	root := tr.SampleRoot()
	c := tr.Child(root, 0, StageQueue, "txq", 0, 0, 100)
	tr.Child(c, 1, StageService, "read-req", 0, 100, 300) // node 0 -> node 1 edge
	tr.RecordRoot(root, 0, "Get", 0, 0, 400)
	path := filepath.Join(t.TempDir(), "t.json")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	var f struct {
		TraceEvents []struct {
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatal(err)
	}
	var flows int
	for _, ev := range f.TraceEvents {
		if ev.Phase == "s" || ev.Phase == "f" {
			flows++
		}
	}
	if flows != 2 {
		t.Fatalf("got %d flow events, want 2 (one s/f pair)", flows)
	}
}

func TestCriticalPathBlame(t *testing.T) {
	// Root [0,1000): queue [0,200) -> wire [200,500) -> service [500,950),
	// gap [950,1000) unattributed.
	spans := []Span{
		{Trace: 1, ID: 1, Stage: StageOp, Name: "Get", Begin: 0, End: 1000},
		{Trace: 1, ID: 2, Parent: 1, Stage: StageQueue, Begin: 0, End: 200},
		{Trace: 1, ID: 3, Parent: 2, Stage: StageWire, Begin: 200, End: 500},
		{Trace: 1, ID: 4, Parent: 3, Stage: StageService, Begin: 500, End: 950},
		// A span from another trace must be ignored.
		{Trace: 2, ID: 5, Stage: StageService, Begin: 0, End: 1000},
	}
	root := LongestRoot(spans)
	if root.ID != 1 {
		t.Fatalf("LongestRoot picked %+v", root)
	}
	cp := CriticalPath(spans, root)
	if cp.ByStage[StageQueue] != 200 || cp.ByStage[StageWire] != 300 || cp.ByStage[StageService] != 450 {
		t.Fatalf("bad blame: %+v", cp.ByStage)
	}
	if cp.Unattributed != 50 {
		t.Fatalf("unattributed=%d, want 50", cp.Unattributed)
	}
	if got, want := cp.Coverage(), 0.95; got != want {
		t.Fatalf("coverage=%v, want %v", got, want)
	}
	if len(cp.Steps) != 3 || cp.Steps[0].Span.ID != 2 || cp.Steps[2].Span.ID != 4 {
		t.Fatalf("bad step order: %+v", cp.Steps)
	}
	if r := cp.Report(); r == "" {
		t.Fatal("empty report")
	}
}

func TestCriticalPathPrefersOverlappingCoverage(t *testing.T) {
	// Two spans end at the same instant; the one beginning earlier must
	// win so more of the window is explained in one step.
	spans := []Span{
		{Trace: 1, ID: 1, Stage: StageOp, Begin: 0, End: 100},
		{Trace: 1, ID: 2, Stage: StageService, Begin: 60, End: 100},
		{Trace: 1, ID: 3, Stage: StageQueue, Begin: 0, End: 100},
	}
	cp := CriticalPath(spans, spans[0])
	if cp.Unattributed != 0 {
		t.Fatalf("unattributed=%d, want 0", cp.Unattributed)
	}
	if len(cp.Steps) != 1 || cp.Steps[0].Span.ID != 3 {
		t.Fatalf("expected single full-window step, got %+v", cp.Steps)
	}
}

func TestSummarize(t *testing.T) {
	spans := []Span{
		{Trace: 1, ID: 1, Stage: StageOp, Name: "Get", Begin: 0, End: 100},
		{Trace: 1, ID: 2, Parent: 1, Stage: StageService, Name: "s", Begin: 0, End: 100},
	}
	s := Summarize(spans)
	if s == "" || !contains(s, "critical path") || !contains(s, "service") {
		t.Fatalf("bad summary:\n%s", s)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		}())
}
