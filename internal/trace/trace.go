// Package trace is the causal distributed-tracing subsystem: every
// sampled public array operation opens a root span, and the protocol
// layers it flows through — local request queues, the Tx doorbell path,
// the wire (including retransmission stalls), remote runtime service,
// directory fan-outs — emit child spans stamped with virtual-time
// begin/end. The trace context (trace id + parent span id) rides in the
// fabric message header, so a span recorded on node 3 links causally to
// the op that started on node 0.
//
// Where telemetry (PR 1) answers "how often and how slow", trace
// answers "where did the time go": each span carries a Stage, and the
// per-stage duration histograms decompose a slow-path miss into
// queue-wait vs. wire vs. retransmit vs. service vs. fan-out — the
// RDMA-vs-RPC cost accounting of the paper's §2 comparison, measured on
// this implementation.
//
// Cost discipline matches the repository's telemetry rule: a tracer
// that is attached but disabled costs one atomic load per public op and
// nothing on the protocol paths (context values stay zero, and zero
// contexts short-circuit); no tracer attached costs one nil check.
package trace

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"darray/internal/stats"
	"darray/internal/telemetry"
)

// Stage classifies where a span's virtual time was spent. The names are
// the vocabulary of the per-stage latency attribution (and of the
// critical-path blame report), so they are stable strings.
type Stage uint8

const (
	// StageOp is a root span: one public array operation end to end.
	StageOp Stage = iota
	// StageQueue is time spent waiting in line without being serviced:
	// the Tx doorbell queue, a runtime's RPC backlog, a waiter parked on
	// a busy chunk, a lock queue.
	StageQueue
	// StageWire is fault-free time on the wire: bandwidth serialization
	// plus propagation latency.
	StageWire
	// StageRetransmit is the extra delivery delay a lossy wire added:
	// go-back-N resends, stall windows, in-order clamping.
	StageRetransmit
	// StageService is productive work: runtime message handling, chunk
	// copies, grant installs, lock table operations.
	StageService
	// StageFanout is a directory transaction waiting on a multicast:
	// invalidation acks or Operated-collapse flushes from several nodes.
	StageFanout
	// StageShip is function-shipping work: a shipped Operate applied
	// against the authoritative backing at the chunk's home, and the
	// requester-side submission that routed it there.
	StageShip
	// StageCC is time a bulk pipeline spent blocked on its congestion
	// window: the next chunk was ready to issue but the adaptive
	// controller's cwnd was full. Distinct from StageQueue so the
	// critical-path report separates self-imposed pacing from fabric
	// queueing.
	StageCC

	numStages
)

var stageNames = [numStages]string{"op", "queue", "wire", "retransmit", "service", "fanout", "ship", "cc"}

// String returns the stage's stable name.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("stage-%d", uint8(s))
}

// Stages lists every stage in declaration order (for reports).
func Stages() []Stage {
	out := make([]Stage, numStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// Ctx is the causal context threaded through the protocol: the trace it
// belongs to and the span the next emitted span should name as parent.
// The zero Ctx means "untraced" and makes every emission a no-op, so it
// can be threaded unconditionally.
type Ctx struct {
	Trace uint64
	Span  uint64
}

// Valid reports whether the context belongs to a sampled trace.
func (c Ctx) Valid() bool { return c.Trace != 0 }

// Span is one completed interval of a trace. Begin/End are virtual
// nanoseconds; Node is where the time was spent (for wire and Tx-queue
// spans, the sending node). Parent is 0 only on root spans; for a root
// span ID == Trace.
type Span struct {
	Trace  uint64
	ID     uint64
	Parent uint64
	Node   int32
	Stage  Stage
	Name   string
	Chunk  int64
	Begin  int64
	End    int64
}

// Dur returns the span's duration in virtual nanoseconds.
func (s Span) Dur() int64 { return s.End - s.Begin }

// String renders the span for logs.
func (s Span) String() string {
	return fmt.Sprintf("t%d #%d<-%d n%d %s/%s chunk=%d [%d,%d)",
		s.Trace, s.ID, s.Parent, s.Node, s.Stage, s.Name, s.Chunk, s.Begin, s.End)
}

// DefaultCapacity bounds the span buffer when New is given cap <= 0:
// generous enough for the smoke workloads (a span is ~100 bytes), small
// enough to stay harmless if tracing is left on by accident.
const DefaultCapacity = 1 << 17

// Tracer records spans for one cluster. All methods are safe for
// concurrent use from application threads and runtime goroutines.
type Tracer struct {
	on     atomic.Bool
	sample atomic.Int64 // trace every Nth sampled root (>= 1)
	opSeq  atomic.Uint64
	ids    atomic.Uint64

	// Lock-free per-stage aggregates, collected into telemetry
	// snapshots without taking mu.
	spanCount atomic.Int64
	dropCount atomic.Int64
	stageTel  [numStages]telemetry.Histogram

	mu       sync.Mutex
	spans    []Span
	capacity int
	stageNS  [numStages]stats.Histogram // exact samples for percentile reports
}

// New creates a disabled tracer holding at most capacity spans
// (DefaultCapacity when capacity <= 0). When the buffer fills, further
// spans are counted in Dropped and discarded — never overwritten, so
// the retained prefix keeps its parent links intact.
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	t := &Tracer{capacity: capacity}
	t.sample.Store(1)
	return t
}

// Enable starts sampling: every sampleEvery-th public op (1 = all)
// opens a trace. Safe to call while traffic is running.
func (t *Tracer) Enable(sampleEvery int) {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	t.sample.Store(int64(sampleEvery))
	t.on.Store(true)
}

// Disable stops sampling new roots. In-flight traces stop growing as
// their contexts hit the disabled check.
func (t *Tracer) Disable() { t.on.Store(false) }

// Enabled reports whether the tracer is sampling: one atomic load, the
// only cost tracing adds to an op when off.
func (t *Tracer) Enabled() bool { return t.on.Load() }

// SampleRoot decides whether the next public op is traced. It returns
// a fresh root context (Trace == Span == the new trace id) for sampled
// ops and the zero Ctx otherwise.
func (t *Tracer) SampleRoot() Ctx {
	if !t.on.Load() {
		return Ctx{}
	}
	n := t.opSeq.Add(1)
	if s := t.sample.Load(); s > 1 && n%uint64(s) != 0 {
		return Ctx{}
	}
	id := t.ids.Add(1)
	return Ctx{Trace: id, Span: id}
}

// Child records a completed child span of tc and returns the context
// the next span in the causal chain should use as parent. Zero-length
// intervals are skipped (returning tc unchanged), so stages that did
// not occur — no retransmission, no queueing — leave no span behind.
func (t *Tracer) Child(tc Ctx, node int32, stage Stage, name string, chunk, begin, end int64) Ctx {
	if !tc.Valid() || !t.on.Load() || end <= begin {
		return tc
	}
	id := t.ids.Add(1)
	if !t.record(Span{Trace: tc.Trace, ID: id, Parent: tc.Span, Node: node,
		Stage: stage, Name: name, Chunk: chunk, Begin: begin, End: end}) {
		return tc // dropped: keep chaining from the recorded parent
	}
	return Ctx{Trace: tc.Trace, Span: id}
}

// RecordRoot records the root span of a sampled op, closing the trace
// opened by SampleRoot. Roots are recorded even when zero-length (a
// fully fast-path op under a nil-cost stage still happened).
func (t *Tracer) RecordRoot(tc Ctx, node int32, name string, chunk, begin, end int64) {
	if !tc.Valid() {
		return
	}
	if end < begin {
		end = begin
	}
	t.record(Span{Trace: tc.Trace, ID: tc.Span, Node: node,
		Stage: StageOp, Name: name, Chunk: chunk, Begin: begin, End: end})
}

func (t *Tracer) record(s Span) bool {
	t.stageTel[s.Stage].Observe(s.Dur())
	t.mu.Lock()
	if len(t.spans) >= t.capacity {
		t.mu.Unlock()
		t.dropCount.Add(1)
		return false
	}
	t.spans = append(t.spans, s)
	t.stageNS[s.Stage].Add(s.Dur())
	t.mu.Unlock()
	t.spanCount.Add(1)
	return true
}

// Spans returns a copy of the recorded spans, in recording order.
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Len returns the number of retained spans.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Dropped returns how many spans were discarded because the buffer was
// full. A nonzero value means parent links of retained spans are still
// intact but traces may be incomplete.
func (t *Tracer) Dropped() int64 { return t.dropCount.Load() }

// Reset discards all recorded spans and stage statistics (the
// telemetry-side aggregates keep accumulating; they are cluster-
// lifetime totals like every other collector).
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.spans = nil
	for i := range t.stageNS {
		t.stageNS[i] = stats.Histogram{}
	}
	t.mu.Unlock()
	t.dropCount.Store(0)
}

// Collector contributes the tracer's aggregates to telemetry snapshots:
// trace/spans, trace/dropped, and one trace/stage/<name> duration
// histogram per stage.
func (t *Tracer) Collector() telemetry.CollectorFunc {
	return func(emit telemetry.Emit) {
		one := func(name string, v int64) {
			if v == 0 {
				return
			}
			emit(telemetry.Metric{Name: name, Kind: telemetry.KindCounter, PerNode: []int64{v}})
		}
		one("trace/spans", t.spanCount.Load())
		one("trace/dropped", t.dropCount.Load())
		for st := Stage(0); st < numStages; st++ {
			h := t.stageTel[st].Data()
			if h.Count == 0 {
				continue
			}
			emit(telemetry.Metric{
				Name:    "trace/stage/" + st.String(),
				Kind:    telemetry.KindHistogram,
				PerNode: []int64{h.Count},
				Hist:    h,
			})
		}
	}
}

// StageReport renders the per-stage latency decomposition of the
// retained spans as an aligned text table with exact p50/p95/p99.
func (t *Tracer) StageReport() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %10s %10s %10s %10s %12s\n",
		"stage", "spans", "p50(ns)", "p95(ns)", "p99(ns)", "max(ns)", "total(ns)")
	for st := Stage(0); st < numStages; st++ {
		h := &t.stageNS[st]
		if h.Count() == 0 {
			continue
		}
		var total float64
		total = h.Mean() * float64(h.Count())
		fmt.Fprintf(&b, "%-12s %8d %10d %10d %10d %10d %12.0f\n",
			st.String(), h.Count(), h.Percentile(50), h.Percentile(95),
			h.Percentile(99), h.Max(), total)
	}
	if d := t.dropCount.Load(); d > 0 {
		fmt.Fprintf(&b, "(%d spans dropped: buffer full)\n", d)
	}
	return b.String()
}
