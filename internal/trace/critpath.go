package trace

import (
	"fmt"
	"strings"
)

// Critical-path analysis: given a finished trace, walk backwards from
// the root span's end picking, at every instant, the span that extends
// the causal chain furthest back in virtual time. The result blames
// each segment of the root's latency on one span (and its Stage), which
// is the decomposition the paper's round-trip accounting talks about:
// a slow Get is some mix of runtime queueing, wire time, retransmit
// stalls, home-directory service, and invalidation fan-out.
//
// The walk is time-window greedy rather than a strict DAG walk: any
// same-trace span overlapping the unexplained window may be chosen,
// whether it descends from the request chain or from the grant chain
// the home node started — both causally feed the op's completion.

// CritStep is one blamed segment of a critical path.
type CritStep struct {
	Span  Span
	Begin int64 // blamed interval (clamped to the root window)
	End   int64
}

// CritPath is the critical-path decomposition of one root span.
type CritPath struct {
	Root         Span
	Steps        []CritStep // in causal (forward) order
	ByStage      map[Stage]int64
	Unattributed int64
}

// Coverage returns the fraction of the root's duration attributed to
// named stages (1.0 = every nanosecond blamed on some span).
func (cp *CritPath) Coverage() float64 {
	d := cp.Root.Dur()
	if d <= 0 {
		return 1
	}
	return float64(d-cp.Unattributed) / float64(d)
}

// LongestRoot returns the root span (StageOp) with the largest duration,
// or a zero Span if spans holds no roots.
func LongestRoot(spans []Span) Span {
	var best Span
	for _, s := range spans {
		if s.Stage == StageOp && s.Dur() >= best.Dur() {
			if best.ID == 0 || s.Dur() > best.Dur() {
				best = s
			}
		}
	}
	return best
}

// Roots returns every root span, in recording order.
func Roots(spans []Span) []Span {
	var out []Span
	for _, s := range spans {
		if s.Stage == StageOp {
			out = append(out, s)
		}
	}
	return out
}

// CriticalPath computes the critical-path decomposition of root over
// the given span set.
func CriticalPath(spans []Span, root Span) *CritPath {
	cp := &CritPath{Root: root, ByStage: make(map[Stage]int64)}
	if root.Dur() <= 0 {
		return cp
	}
	// Candidates: same-trace non-root spans with time inside the window.
	var cands []Span
	for _, s := range spans {
		if s.Trace != root.Trace || s.ID == root.ID || s.Stage == StageOp {
			continue
		}
		if s.End <= root.Begin || s.Begin >= root.End {
			continue
		}
		cands = append(cands, s)
	}
	cur := root.End
	used := make(map[uint64]bool)
	for cur > root.Begin {
		// Pick the span reaching closest to cur from below while
		// starting earliest: maximize min(End, cur), tie-break on the
		// smaller Begin (explains the most time in one step).
		best := -1
		var bestEnd, bestBegin int64
		for i, s := range cands {
			if used[s.ID] || s.Begin >= cur {
				continue
			}
			e := s.End
			if e > cur {
				e = cur
			}
			b := s.Begin
			if b < root.Begin {
				b = root.Begin
			}
			if e <= b {
				continue
			}
			if best == -1 || e > bestEnd || (e == bestEnd && b < bestBegin) {
				best, bestEnd, bestBegin = i, e, b
			}
		}
		if best == -1 {
			cp.Unattributed += cur - root.Begin
			break
		}
		s := cands[best]
		used[s.ID] = true
		if bestEnd < cur {
			cp.Unattributed += cur - bestEnd
		}
		cp.Steps = append(cp.Steps, CritStep{Span: s, Begin: bestBegin, End: bestEnd})
		cp.ByStage[s.Stage] += bestEnd - bestBegin
		cur = bestBegin
	}
	// Recorded backwards; flip to causal order.
	for i, j := 0, len(cp.Steps)-1; i < j; i, j = i+1, j-1 {
		cp.Steps[i], cp.Steps[j] = cp.Steps[j], cp.Steps[i]
	}
	return cp
}

// Report renders the critical path: the blamed chain step by step, then
// the per-stage share of the root latency.
func (cp *CritPath) Report() string {
	var b strings.Builder
	d := cp.Root.Dur()
	fmt.Fprintf(&b, "critical path: trace %d root %s (chunk %d, node %d, %d ns)\n",
		cp.Root.Trace, cp.Root.Name, cp.Root.Chunk, cp.Root.Node, d)
	for _, st := range cp.Steps {
		ns := st.End - st.Begin
		pct := 0.0
		if d > 0 {
			pct = 100 * float64(ns) / float64(d)
		}
		fmt.Fprintf(&b, "  %8dns %5.1f%%  n%-3d %-10s %s\n",
			ns, pct, st.Span.Node, st.Span.Stage.String(), st.Span.Name)
	}
	b.WriteString("  blame:")
	for _, st := range Stages() {
		ns := cp.ByStage[st]
		if ns == 0 {
			continue
		}
		fmt.Fprintf(&b, " %s=%.1f%%", st.String(), 100*float64(ns)/float64(d))
	}
	fmt.Fprintf(&b, " unattributed=%.1f%%\n", 100*(1-cp.Coverage()))
	return b.String()
}

// Summarize renders a one-screen digest of a span set: counts, the
// stage table rebuilt from the spans, and the critical path of the
// longest root. Shared by the cmd-line tools.
func Summarize(spans []Span) string {
	var b strings.Builder
	roots := Roots(spans)
	fmt.Fprintf(&b, "%d spans, %d traces\n", len(spans), len(roots))
	if len(spans) == 0 {
		return b.String()
	}
	b.WriteString(StageTable(spans))
	if root := LongestRoot(spans); root.ID != 0 {
		b.WriteString(CriticalPath(spans, root).Report())
	}
	return b.String()
}

// StageTable renders the per-stage duration decomposition of a span
// set (used when only exported spans, not a live Tracer, are at hand).
func StageTable(spans []Span) string {
	type agg struct {
		n     int64
		total int64
		max   int64
	}
	var by [numStages]agg
	for _, s := range spans {
		a := &by[s.Stage]
		a.n++
		a.total += s.Dur()
		if s.Dur() > a.max {
			a.max = s.Dur()
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %10s %12s\n", "stage", "spans", "max(ns)", "total(ns)")
	for st := Stage(0); st < numStages; st++ {
		a := by[st]
		if a.n == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-12s %8d %10d %12d\n", st.String(), a.n, a.max, a.total)
	}
	return b.String()
}
