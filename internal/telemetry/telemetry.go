// Package telemetry is the cluster-wide metrics subsystem: race-safe
// counter/gauge/histogram primitives, a named registry with per-node
// instances, point-in-time snapshots with delta views, and rendering as
// aligned text or JSON (see snapshot.go) plus expvar/HTTP exposition
// (see expvar.go).
//
// Design constraints, in order:
//
//  1. Disabled-path cost. Collection is gated by one registry-wide
//     atomic bool. Instrumented fast paths guard with Enabled() — a
//     single atomic load, no locks, no map lookups — so the lock-free
//     access paths the paper fights for (§4.1, §4.3) stay lock-free.
//  2. Enabled-path cost. Instrumentation sites hold *Counter pointers
//     resolved once at setup; a bump is one atomic add. Registration
//     (the only locked path) happens at construction time only.
//  3. Aggregation across components. Subsystems that keep their own
//     atomic counters (core's per-array Metrics, fabric's per-endpoint
//     Counters) contribute through collectors: closures that run at
//     snapshot time and emit Metric values. Removing a collector folds
//     its final values into a retained store, so totals stay monotonic
//     across short-lived clusters (the benchmark harness builds and
//     tears down one cluster per data point while sharing one registry).
package telemetry

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// HistBuckets is the fixed bucket count of every Histogram: bucket i
// holds observations v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i),
// with v <= 0 in bucket 0 and v >= 2^(HistBuckets-2) in the last.
const HistBuckets = 32

// Histogram is a lock-free power-of-two-bucket histogram.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [HistBuckets]atomic.Int64
}

func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// BucketBound returns the exclusive upper bound of bucket i (v < bound).
func BucketBound(i int) int64 {
	if i <= 0 {
		return 1
	}
	if i >= 63 {
		return 1<<62 - 1
	}
	return 1 << uint(i)
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
}

// Data returns a point-in-time copy of the histogram.
func (h *Histogram) Data() *HistData {
	d := &HistData{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			d.ensure()
			d.Buckets[i] = n
		}
	}
	return d
}

// Metric kinds as stable snapshot strings.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

// Emit is the sink a collector writes metrics into.
type Emit func(m Metric)

// CollectorFunc contributes externally maintained metrics to a snapshot.
// It must only read (atomics, immutable state) — it runs on whatever
// goroutine calls Snapshot.
type CollectorFunc func(emit Emit)

// Collector is the removable handle for a registered CollectorFunc.
type Collector struct{ fn CollectorFunc }

// family is one named metric across per-node instances.
type family struct {
	name     string
	kind     string
	counters []*Counter
	gauges   []*Gauge
	hists    []*Histogram
}

// Registry is a named metric registry for one cluster (or several
// short-lived clusters sharing a benchmark sweep).
type Registry struct {
	on atomic.Bool

	mu      sync.Mutex
	fams    map[string]*family
	order   []string
	colls   map[*Collector]struct{}
	retired map[string]*Metric
}

// New creates an empty, disabled registry.
func New() *Registry {
	return &Registry{
		fams:    make(map[string]*family),
		colls:   make(map[*Collector]struct{}),
		retired: make(map[string]*Metric),
	}
}

// Enable turns collection on.
func (r *Registry) Enable() { r.on.Store(true) }

// Disable turns collection off.
func (r *Registry) Disable() { r.on.Store(false) }

// Enabled reports whether collection is on: one atomic load, safe (and
// intended) for per-operation fast-path guards.
func (r *Registry) Enabled() bool { return r.on.Load() }

func (r *Registry) familyLocked(name, kind string) *family {
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, kind: kind}
		r.fams[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s and %s", name, f.kind, kind))
	}
	return f
}

// Counter returns (registering if needed) the counter `name` for node.
// Resolution locks; keep it out of hot paths and cache the pointer.
func (r *Registry) Counter(name string, node int) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, KindCounter)
	for len(f.counters) <= node {
		f.counters = append(f.counters, nil)
	}
	if f.counters[node] == nil {
		f.counters[node] = &Counter{}
	}
	return f.counters[node]
}

// Gauge returns (registering if needed) the gauge `name` for node.
func (r *Registry) Gauge(name string, node int) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, KindGauge)
	for len(f.gauges) <= node {
		f.gauges = append(f.gauges, nil)
	}
	if f.gauges[node] == nil {
		f.gauges[node] = &Gauge{}
	}
	return f.gauges[node]
}

// Histogram returns (registering if needed) the histogram `name` for node.
func (r *Registry) Histogram(name string, node int) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, KindHistogram)
	for len(f.hists) <= node {
		f.hists = append(f.hists, nil)
	}
	if f.hists[node] == nil {
		f.hists[node] = &Histogram{}
	}
	return f.hists[node]
}

// AddCollector registers fn to contribute metrics at snapshot time and
// returns a handle for RemoveCollector.
func (r *Registry) AddCollector(fn CollectorFunc) *Collector {
	c := &Collector{fn: fn}
	r.mu.Lock()
	r.colls[c] = struct{}{}
	r.mu.Unlock()
	return c
}

// RemoveCollector unregisters c, folding its final counter and histogram
// values into the registry's retained store so cluster-wide totals stay
// monotonic after the component behind c is torn down. Gauges are
// dropped (a gauge of a dead component is meaningless).
func (r *Registry) RemoveCollector(c *Collector) {
	if c == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.colls[c]; !ok {
		return
	}
	delete(r.colls, c)
	c.fn(func(m Metric) {
		if m.Kind == KindGauge {
			return
		}
		mergeMetric(r.retired, m)
	})
}

// Snapshot captures every registered metric, retained value, and
// collector contribution, merged by name (per-node values element-wise).
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	acc := make(map[string]*Metric)
	for _, name := range r.order {
		f := r.fams[name]
		m := Metric{Name: f.name, Kind: f.kind}
		switch f.kind {
		case KindCounter:
			m.PerNode = make([]int64, len(f.counters))
			for i, c := range f.counters {
				if c != nil {
					m.PerNode[i] = c.Load()
				}
			}
		case KindGauge:
			m.PerNode = make([]int64, len(f.gauges))
			for i, g := range f.gauges {
				if g != nil {
					m.PerNode[i] = g.Load()
				}
			}
		case KindHistogram:
			for i, h := range f.hists {
				if h != nil {
					hm := Metric{Name: f.name, Kind: f.kind, Hist: h.Data()}
					hm.PerNode = make([]int64, i+1)
					hm.PerNode[i] = hm.Hist.Count
					mergeMetric(acc, hm)
				}
			}
			continue
		}
		mergeMetric(acc, m)
	}
	for _, m := range r.retired {
		mergeMetric(acc, m.clone())
	}
	for c := range r.colls {
		c.fn(func(m Metric) { mergeMetric(acc, m) })
	}
	return newSnapshot(acc)
}

// mergeMetric folds m into acc[m.Name], summing per-node values and
// histogram data.
func mergeMetric(acc map[string]*Metric, m Metric) {
	dst, ok := acc[m.Name]
	if !ok {
		c := m.clone()
		acc[m.Name] = &c
		return
	}
	for len(dst.PerNode) < len(m.PerNode) {
		dst.PerNode = append(dst.PerNode, 0)
	}
	for i, v := range m.PerNode {
		dst.PerNode[i] += v
	}
	if m.Hist != nil {
		if dst.Hist == nil {
			dst.Hist = &HistData{}
		}
		dst.Hist.merge(m.Hist)
	}
}
