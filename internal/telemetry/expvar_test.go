package telemetry

import (
	"expvar"
	"strings"
	"testing"
)

// TestPublishIdempotent covers the re-registration hazard: expvar itself
// panics on a duplicate name, so publishing the same name from a second
// registry (a test building two clusters, a restarting server) must
// rebind instead of killing the process, and /debug/vars must serve the
// newest registry.
func TestPublishIdempotent(t *testing.T) {
	const name = "telemetry-test-idempotent"

	r1 := New()
	r1.Enable()
	r1.Counter("first.registry.counter", 0).Add(1)
	r1.Publish(name)

	v := expvar.Get(name)
	if v == nil {
		t.Fatal("Publish did not register with expvar")
	}
	if !strings.Contains(v.String(), "first.registry.counter") {
		t.Fatalf("expvar serves wrong snapshot: %s", v.String())
	}

	r2 := New()
	r2.Enable()
	r2.Counter("second.registry.counter", 0).Add(2)
	r2.Publish(name) // must not panic, must rebind

	out := expvar.Get(name).String()
	if !strings.Contains(out, "second.registry.counter") {
		t.Fatalf("expvar still serves the old registry after re-Publish: %s", out)
	}
	if strings.Contains(out, "first.registry.counter") {
		t.Fatalf("expvar mixes registries after re-Publish: %s", out)
	}

	// Re-publishing the same registry is a no-op, not a panic.
	r2.Publish(name)
}
