package telemetry

import (
	"expvar"
	"net/http"
)

// Publish registers the registry under name in the process-wide expvar
// namespace, so /debug/vars serves a live snapshot. Publishing the same
// name twice panics (expvar semantics); call once per process.
func (r *Registry) Publish(name string) {
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// Handler returns an http.Handler serving the current snapshot: JSON by
// default, the aligned-text report with ?format=text.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		s := r.Snapshot()
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_, _ = w.Write([]byte(s.Report()))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(s.JSON()))
	})
}
