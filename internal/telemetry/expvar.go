package telemetry

import (
	"expvar"
	"net/http"
	"sync"
)

// published tracks which expvar names this package has claimed, and for
// each a swappable pointer to the registry currently serving it. expvar
// itself panics on duplicate Publish, which makes re-registration (a
// test building two clusters, a server restarting its telemetry) a
// process-killing hazard; routing reads through an indirection slot
// turns the second Publish of a name into a cheap pointer swap.
var published struct {
	sync.Mutex
	slots map[string]*slot
}

type slot struct {
	mu sync.RWMutex
	r  *Registry
}

func (s *slot) get() *Registry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.r
}

// Publish registers the registry under name in the process-wide expvar
// namespace, so /debug/vars serves a live snapshot. Publishing the same
// name again is idempotent: the name is rebound to the new registry
// instead of panicking with expvar's duplicate-name error.
func (r *Registry) Publish(name string) {
	published.Lock()
	defer published.Unlock()
	if published.slots == nil {
		published.slots = make(map[string]*slot)
	}
	if s, ok := published.slots[name]; ok {
		s.mu.Lock()
		s.r = r
		s.mu.Unlock()
		return
	}
	s := &slot{r: r}
	published.slots[name] = s
	expvar.Publish(name, expvar.Func(func() any { return s.get().Snapshot() }))
}

// Handler returns an http.Handler serving the current snapshot: JSON by
// default, the aligned-text report with ?format=text.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		s := r.Snapshot()
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_, _ = w.Write([]byte(s.Report()))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(s.JSON()))
	})
}
