package telemetry

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Errorf("counter = %d, want 5", c.Load())
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if g.Load() != 4 {
		t.Errorf("gauge = %d, want 4", g.Load())
	}
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 64, 100, 1 << 40} {
		h.Observe(v)
	}
	d := h.Data()
	if d.Count != 7 {
		t.Errorf("hist count = %d, want 7", d.Count)
	}
	if d.Sum != 0+1+2+3+64+100+1<<40 {
		t.Errorf("hist sum = %d", d.Sum)
	}
	// v=0 -> bucket 0; v=1 -> bucket 1; v=2,3 -> bucket 2; 64,100 -> bucket 7.
	if d.Buckets[0] != 1 || d.Buckets[1] != 1 || d.Buckets[2] != 2 || d.Buckets[7] != 2 {
		t.Errorf("buckets = %v", d.Buckets)
	}
	if d.Buckets[HistBuckets-1] != 1 {
		t.Errorf("overflow bucket = %d, want 1", d.Buckets[HistBuckets-1])
	}
}

func TestRegistryNamesAndPerNode(t *testing.T) {
	r := New()
	if r.Enabled() {
		t.Fatal("registry should start disabled")
	}
	r.Enable()
	c0 := r.Counter("core/hits", 0)
	c2 := r.Counter("core/hits", 2)
	if r.Counter("core/hits", 0) != c0 {
		t.Error("re-registration returned a different counter")
	}
	c0.Add(10)
	c2.Add(5)
	r.Gauge("core/free", 1).Set(42)
	r.Histogram("fabric/bytes", 0).Observe(100)

	s := r.Snapshot()
	if got := s.Total("core/hits"); got != 15 {
		t.Errorf("total core/hits = %d, want 15", got)
	}
	m, ok := s.Get("core/hits")
	if !ok || len(m.PerNode) != 3 || m.PerNode[0] != 10 || m.PerNode[1] != 0 || m.PerNode[2] != 5 {
		t.Errorf("per-node = %+v", m)
	}
	if got := s.Total("core/free"); got != 42 {
		t.Errorf("gauge total = %d, want 42", got)
	}
	hm, ok := s.Get("fabric/bytes")
	if !ok || hm.Hist == nil || hm.Hist.Count != 1 || hm.Hist.Sum != 100 {
		t.Errorf("hist metric = %+v", hm)
	}
}

func TestKindConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on kind conflict")
		}
	}()
	r := New()
	r.Counter("x", 0)
	r.Gauge("x", 0)
}

func TestSnapshotDelta(t *testing.T) {
	r := New()
	c := r.Counter("ops", 0)
	g := r.Gauge("depth", 0)
	h := r.Histogram("lat", 0)
	c.Add(10)
	g.Set(3)
	h.Observe(8)
	before := r.Snapshot()
	c.Add(7)
	g.Set(9)
	h.Observe(16)
	d := r.Snapshot().Delta(before)
	if got := d.Total("ops"); got != 7 {
		t.Errorf("delta ops = %d, want 7", got)
	}
	if got := d.Total("depth"); got != 9 {
		t.Errorf("delta gauge = %d, want current value 9", got)
	}
	m, _ := d.Get("lat")
	if m.Hist == nil || m.Hist.Count != 1 || m.Hist.Sum != 16 {
		t.Errorf("delta hist = %+v", m.Hist)
	}
}

func TestNonZeroFiltersEmptyDeltas(t *testing.T) {
	r := New()
	r.Counter("a", 0).Add(5)
	r.Counter("b", 0)
	s := r.Snapshot().NonZero()
	if len(s.Metrics) != 1 || s.Metrics[0].Name != "a" {
		t.Errorf("NonZero = %+v", s.Metrics)
	}
}

func TestCollectorAndRetire(t *testing.T) {
	r := New()
	var ext Counter
	ext.Add(11)
	coll := r.AddCollector(func(emit Emit) {
		emit(Metric{Name: "ext/ops", Kind: KindCounter, PerNode: []int64{ext.Load()}})
		emit(Metric{Name: "ext/depth", Kind: KindGauge, PerNode: []int64{4}})
	})
	if got := r.Snapshot().Total("ext/ops"); got != 11 {
		t.Errorf("collector total = %d, want 11", got)
	}
	r.RemoveCollector(coll)
	ext.Add(100) // must not be visible: collector folded at removal
	s := r.Snapshot()
	if got := s.Total("ext/ops"); got != 11 {
		t.Errorf("retired total = %d, want 11", got)
	}
	if _, ok := s.Get("ext/depth"); ok {
		t.Error("retired gauge should be dropped")
	}
	r.RemoveCollector(coll) // double-remove is a no-op
	if got := r.Snapshot().Total("ext/ops"); got != 11 {
		t.Error("double remove double-counted the collector")
	}
}

// TestRegistryHammer bumps shared counters from many goroutines while a
// reader concurrently snapshots; run under -race this is the registry's
// core safety test.
func TestRegistryHammer(t *testing.T) {
	r := New()
	r.Enable()
	const goroutines = 8
	const perG = 5000
	counters := make([]*Counter, goroutines)
	for i := range counters {
		counters[i] = r.Counter("hammer/ops", i%4)
	}
	h := r.Histogram("hammer/sizes", 0)
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := r.Snapshot()
			if tot := s.Total("hammer/ops"); tot < 0 || tot > goroutines*perG {
				t.Errorf("snapshot total out of range: %d", tot)
				return
			}
			_ = s.Report()
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < perG; k++ {
				if r.Enabled() {
					counters[i].Inc()
				}
				h.Observe(int64(k & 1023))
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()
	s := r.Snapshot()
	if got := s.Total("hammer/ops"); got != goroutines*perG {
		t.Errorf("final total = %d, want %d", got, goroutines*perG)
	}
	m, _ := s.Get("hammer/sizes")
	if m.Hist.Count != goroutines*perG {
		t.Errorf("hist count = %d, want %d", m.Hist.Count, goroutines*perG)
	}
}

func TestReportAndJSON(t *testing.T) {
	r := New()
	r.Counter("core/cache/hits", 0).Add(100)
	r.Counter("core/cache/hits", 1).Add(50)
	r.Histogram("fabric/link_bytes/0->1", 0).Observe(4096)
	s := r.Snapshot()

	rep := s.Report()
	for _, want := range []string{"core/cache/hits", "150", "100", "50", "count=1", "sum=4096"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}

	var decoded Snapshot
	if err := json.Unmarshal([]byte(s.JSON()), &decoded); err != nil {
		t.Fatalf("JSON round trip: %v", err)
	}
	if decoded.Total("core/cache/hits") != 150 {
		t.Errorf("decoded total = %d", decoded.Total("core/cache/hits"))
	}
}

func TestHTTPHandler(t *testing.T) {
	r := New()
	r.Counter("x/ops", 0).Add(3)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if s.Total("x/ops") != 3 {
		t.Errorf("handler JSON total = %d, want 3", s.Total("x/ops"))
	}

	resp, err = srv.Client().Get(srv.URL + "?format=text")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "x/ops") {
		t.Errorf("text report missing metric: %q", string(body))
	}
}
