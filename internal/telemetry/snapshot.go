package telemetry

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// HistData is a point-in-time histogram value.
type HistData struct {
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Buckets []int64 `json:"buckets,omitempty"` // len HistBuckets when present
}

func (h *HistData) ensure() {
	if h.Buckets == nil {
		h.Buckets = make([]int64, HistBuckets)
	}
}

func (h *HistData) merge(o *HistData) {
	h.Count += o.Count
	h.Sum += o.Sum
	if o.Buckets != nil {
		h.ensure()
		for i, n := range o.Buckets {
			h.Buckets[i] += n
		}
	}
}

// Mean returns the average observation, or 0 without samples.
func (h *HistData) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Metric is one named value in a snapshot: a counter or gauge with
// per-node values, or a histogram.
type Metric struct {
	Name    string    `json:"name"`
	Kind    string    `json:"kind"`
	PerNode []int64   `json:"per_node,omitempty"`
	Hist    *HistData `json:"hist,omitempty"`
}

// Total returns the cluster-wide value: the sum across nodes.
func (m *Metric) Total() int64 {
	var t int64
	for _, v := range m.PerNode {
		t += v
	}
	return t
}

func (m Metric) clone() Metric {
	c := m
	c.PerNode = append([]int64(nil), m.PerNode...)
	if m.Hist != nil {
		h := *m.Hist
		h.Buckets = append([]int64(nil), m.Hist.Buckets...)
		c.Hist = &h
	}
	return c
}

// Snapshot is a point-in-time view of every metric, sorted by name.
type Snapshot struct {
	Metrics []Metric `json:"metrics"`
}

func newSnapshot(acc map[string]*Metric) Snapshot {
	names := make([]string, 0, len(acc))
	for n := range acc {
		names = append(names, n)
	}
	sort.Strings(names)
	s := Snapshot{Metrics: make([]Metric, 0, len(names))}
	for _, n := range names {
		s.Metrics = append(s.Metrics, *acc[n])
	}
	return s
}

// Get returns the named metric and whether it exists.
func (s Snapshot) Get(name string) (Metric, bool) {
	i := sort.Search(len(s.Metrics), func(i int) bool { return s.Metrics[i].Name >= name })
	if i < len(s.Metrics) && s.Metrics[i].Name == name {
		return s.Metrics[i], true
	}
	return Metric{}, false
}

// Total returns the cluster-wide total of the named metric (0 if absent).
func (s Snapshot) Total(name string) int64 {
	m, ok := s.Get(name)
	if !ok {
		return 0
	}
	return m.Total()
}

// Delta returns s minus prev: counters and histograms subtract, gauges
// keep their current value. Metrics only present in prev are dropped.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	out := Snapshot{Metrics: make([]Metric, 0, len(s.Metrics))}
	for _, m := range s.Metrics {
		d := m.clone()
		if p, ok := prev.Get(m.Name); ok && m.Kind != KindGauge {
			for i, v := range p.PerNode {
				if i < len(d.PerNode) {
					d.PerNode[i] -= v
				}
			}
			if d.Hist != nil && p.Hist != nil {
				d.Hist.Count -= p.Hist.Count
				d.Hist.Sum -= p.Hist.Sum
				if p.Hist.Buckets != nil {
					d.Hist.ensure()
					for i, n := range p.Hist.Buckets {
						d.Hist.Buckets[i] -= n
					}
				}
			}
		}
		out.Metrics = append(out.Metrics, d)
	}
	return out
}

// NonZero returns a copy of s without all-zero metrics (empty deltas).
func (s Snapshot) NonZero() Snapshot {
	out := Snapshot{}
	for _, m := range s.Metrics {
		if m.Total() != 0 || (m.Hist != nil && m.Hist.Count != 0) {
			out.Metrics = append(out.Metrics, m)
		}
	}
	return out
}

// maxReportNodes caps the per-node columns printed by Report; wider
// clusters still show totals (the JSON view always has every node).
const maxReportNodes = 8

// Report renders the snapshot as an aligned text table: one row per
// metric with the cluster-wide total and per-node values.
func (s Snapshot) Report() string {
	var b strings.Builder
	nodes := 0
	nameW := len("metric")
	for _, m := range s.Metrics {
		if len(m.PerNode) > nodes {
			nodes = len(m.PerNode)
		}
		if len(m.Name) > nameW {
			nameW = len(m.Name)
		}
	}
	fmt.Fprintf(&b, "== telemetry (%d nodes)\n", nodes)
	fmt.Fprintf(&b, "%-*s %12s", nameW, "metric", "total")
	for v := 0; v < nodes && v < maxReportNodes; v++ {
		fmt.Fprintf(&b, "%10s", fmt.Sprintf("n%d", v))
	}
	b.WriteByte('\n')
	for _, m := range s.Metrics {
		if m.Kind == KindHistogram {
			fmt.Fprintf(&b, "%-*s %s\n", nameW, m.Name, histLine(m.Hist))
			continue
		}
		fmt.Fprintf(&b, "%-*s %12d", nameW, m.Name, m.Total())
		for v := 0; v < nodes && v < maxReportNodes; v++ {
			if v < len(m.PerNode) {
				fmt.Fprintf(&b, "%10d", m.PerNode[v])
			} else {
				fmt.Fprintf(&b, "%10s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// histLine renders a histogram as count/sum/mean plus its nonzero
// power-of-two buckets, e.g. "count=12 sum=49664 mean=4138.7 [<4096:9 <8192:3]".
func histLine(h *HistData) string {
	if h == nil {
		return "count=0"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "count=%d sum=%d mean=%.1f", h.Count, h.Sum, h.Mean())
	if h.Buckets == nil {
		return b.String()
	}
	b.WriteString(" [")
	first := true
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		if !first {
			b.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&b, "<%d:%d", BucketBound(i), n)
	}
	b.WriteByte(']')
	return b.String()
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() string {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Sprintf(`{"error":%q}`, err.Error())
	}
	return string(out)
}
