// Package core implements DArray: a distributed object array with a
// coherent cache, a lock-free data access path (paper §4.1), an extended
// four-state cache coherence protocol with the Operated state (§4.4),
// the Operate interface for associative-commutative updates (§4.3),
// distributed reader/writer locks, and the Pin optimization hint.
//
// Elements are 8-byte words (the granularity of the paper's entire
// evaluation); typed views convert to float64/int64 via bit casts.
package core

import "math"

// OpID identifies a registered operator. The zero value is invalid.
type OpID int32

// Op is an associative and commutative operator over 8-byte words, plus
// its identity element. The identity is what combine buffers are filled
// with, so op(x, Identity) must equal x; that property lets the home
// node merge a whole combined chunk without tracking touched elements.
type Op struct {
	Name     string
	Fn       func(acc, operand uint64) uint64
	Identity uint64
}

// Builtin operators matching the paper's examples (write_add,
// write_min) for both integer and float64 payloads.
var (
	OpAddU64 = Op{Name: "add_u64", Identity: 0,
		Fn: func(a, b uint64) uint64 { return a + b }}
	OpMinU64 = Op{Name: "min_u64", Identity: math.MaxUint64,
		Fn: func(a, b uint64) uint64 {
			if b < a {
				return b
			}
			return a
		}}
	OpMaxU64 = Op{Name: "max_u64", Identity: 0,
		Fn: func(a, b uint64) uint64 {
			if b > a {
				return b
			}
			return a
		}}
	OpAddF64 = Op{Name: "add_f64", Identity: math.Float64bits(0),
		Fn: func(a, b uint64) uint64 {
			return math.Float64bits(math.Float64frombits(a) + math.Float64frombits(b))
		}}
	OpMinF64 = Op{Name: "min_f64", Identity: math.Float64bits(math.Inf(1)),
		Fn: func(a, b uint64) uint64 {
			if math.Float64frombits(b) < math.Float64frombits(a) {
				return b
			}
			return a
		}}
	OpMaxF64 = Op{Name: "max_f64", Identity: math.Float64bits(math.Inf(-1)),
		Fn: func(a, b uint64) uint64 {
			if math.Float64frombits(b) > math.Float64frombits(a) {
				return b
			}
			return a
		}}
	// Bitwise combiners (bitmap frontiers, visited sets, flag gathers).
	OpOrU64 = Op{Name: "or_u64", Identity: 0,
		Fn: func(a, b uint64) uint64 { return a | b }}
	OpAndU64 = Op{Name: "and_u64", Identity: ^uint64(0),
		Fn: func(a, b uint64) uint64 { return a & b }}
	OpXorU64 = Op{Name: "xor_u64", Identity: 0,
		Fn: func(a, b uint64) uint64 { return a ^ b }}
)
