package core

import (
	"sync"
	"testing"

	"darray/internal/cluster"
)

// TestProtocolStressOracle drives the full protocol with randomized
// mixed workloads and checks every element against an oracle. Phases
// alternate between commutative Apply storms (Operated-state machinery,
// recalls, merges, flushes), lock-protected read-modify-writes (lock
// service + Dirty transfers), and interleaved reads (Operated collapses
// mid-storm). A tiny cache forces constant eviction and refetch.
func TestProtocolStressOracle(t *testing.T) {
	const (
		nodes   = 3
		threads = 2
		elems   = 4 * 64 // 4 chunks per node's view, chunk=64
		phases  = 6
		opsPer  = 300
	)
	c := tc(t, nodes, func(cfg *cluster.Config) { cfg.CacheChunks = 6 })

	// oracle[i] accumulates the expected value of element i; guarded by
	// mu (the oracle is not the system under test).
	oracle := make([]uint64, elems)
	var mu sync.Mutex

	c.Run(func(n *cluster.Node) {
		a := New(n, elems)
		add := a.RegisterOp(OpAddU64)
		root := n.NewCtx(0)
		c.Barrier(root)

		for p := 0; p < phases; p++ {
			switch p % 3 {
			case 0: // Apply storm with interleaved reads
				n.RunThreads(threads, func(ctx *cluster.Ctx) {
					for k := 0; k < opsPer; k++ {
						i := int64(ctx.Rng.Intn(elems))
						v := uint64(ctx.Rng.Intn(5) + 1)
						a.Apply(ctx, add, i, v)
						mu.Lock()
						oracle[i] += v
						mu.Unlock()
						if k%16 == 0 {
							_ = a.Get(ctx, int64(ctx.Rng.Intn(elems)))
						}
					}
				})
			case 1: // locked read-modify-write
				n.RunThreads(threads, func(ctx *cluster.Ctx) {
					for k := 0; k < opsPer/4; k++ {
						i := int64(ctx.Rng.Intn(elems))
						a.WLock(ctx, i)
						a.Set(ctx, i, a.Get(ctx, i)+3)
						a.Unlock(ctx, i)
						mu.Lock()
						oracle[i] += 3
						mu.Unlock()
					}
				})
			case 2: // pinned sequential applies over one remote chunk
				n.RunThreads(threads, func(ctx *cluster.Ctx) {
					ci := int64(ctx.Rng.Intn(elems / 64))
					p := a.PinOperate(ctx, ci*64, add)
					for i := p.First(); i < p.Limit(); i++ {
						p.Apply(ctx, i, 2)
						mu.Lock()
						oracle[i] += 2
						mu.Unlock()
					}
					p.Unpin(ctx)
				})
			}
			c.Barrier(root)
			// Full verification: every node reads every element.
			for i := int64(0); i < elems; i++ {
				got := a.Get(root, i)
				mu.Lock()
				want := oracle[i]
				mu.Unlock()
				if got != want {
					t.Errorf("phase %d node %d: a[%d] = %d, want %d",
						p, n.ID(), i, got, want)
					break
				}
			}
			c.Barrier(root)
		}
	})
}

// TestReadsDuringApplyAreMonotonic checks linearizability of reads that
// interleave with an add-only Apply storm: any observed value must never
// exceed the final total, and after the storm every node converges.
func TestReadsDuringApplyAreMonotonic(t *testing.T) {
	const nodes, per = 3, 400
	c := tc(t, nodes)
	c.Run(func(n *cluster.Node) {
		a := New(n, 64)
		add := a.RegisterOp(OpAddU64)
		ctx := n.NewCtx(0)
		c.Barrier(ctx)
		last := uint64(0)
		for k := 0; k < per; k++ {
			a.Apply(ctx, add, 0, 1)
			if k%32 == 0 {
				v := a.Get(ctx, 0)
				if v > nodes*per {
					t.Errorf("read %d exceeds maximum possible %d", v, nodes*per)
				}
				if v < last {
					// Reads on one thread can only see more applies over
					// time (its own applies are included after collapse).
					t.Errorf("non-monotonic reads on one thread: %d after %d", v, last)
				}
				last = v
			}
		}
		c.Barrier(ctx)
		if got := a.Get(ctx, 0); got != nodes*per {
			t.Errorf("final = %d, want %d", got, nodes*per)
		}
		c.Barrier(ctx)
	})
}

// TestManyArraysCoexist ensures protocol traffic for multiple arrays is
// routed independently (the KVS uses several arrays over one cluster).
func TestManyArraysCoexist(t *testing.T) {
	c := tc(t, 2)
	c.Run(func(n *cluster.Node) {
		a := New(n, 2*64)
		b := New(n, 2*64)
		addA := a.RegisterOp(OpAddU64)
		addB := b.RegisterOp(OpAddU64)
		ctx := n.NewCtx(0)
		c.Barrier(ctx)
		for k := 0; k < 200; k++ {
			a.Apply(ctx, addA, 1, 1)
			b.Apply(ctx, addB, 1, 2)
		}
		c.Barrier(ctx)
		if got := a.Get(ctx, 1); got != 2*200 {
			t.Errorf("array a = %d, want 400", got)
		}
		if got := b.Get(ctx, 1); got != 2*400 {
			t.Errorf("array b = %d, want 800", got)
		}
		c.Barrier(ctx)
	})
}
