package core

import (
	"darray/internal/cluster"
	"darray/internal/fabric"
	"darray/internal/trace"
)

// ---------------------------------------------------------------------------
// Cache side: a non-home node's view of a chunk.

// cacheRequest queues a local slow-path waiter and sends a request to
// the chunk's home if none is outstanding.
func (a *Array) cacheRequest(rt *cluster.Runtime, d *dentry, w *waiter) {
	d.waiters = append(d.waiters, w)
	if d.pending || d.busy {
		// Demand caught up with an in-flight speculative fill: that fill
		// just became useful.
		if d.pending && d.pf.CompareAndSwap(true, false) {
			a.Metrics.PrefetchHits.Add(1)
		}
		return // outstanding grant or eviction completes first
	}
	a.issueRequest(rt, d)
}

// issueRequest sends the protocol request matching the first waiter's
// need and, for sequential read misses, issues prefetches (paper §4.2:
// prefetch lives in the slow path so it never taxes the fast path).
func (a *Array) issueRequest(rt *cluster.Runtime, d *dentry) {
	w := d.waiters[0]
	home := a.homeOfChunk(d.ci)
	d.pending = true
	var kind uint8
	switch wantPerm(w.want) {
	case permRead:
		kind = msgReadReq
	case permRW:
		kind = msgWriteReq
	default:
		kind = msgOperateReq
	}
	// The issuing waiter's chain rides the request: the home side and the
	// response decompose its wait, so respond skips its chunk-wait span.
	w.linked = true
	vt := maxi64(w.vt, d.tvt)
	if w.tc.Valid() && vt > w.vt && a.traceOn() {
		// Time spent parked behind earlier transactions on this chunk
		// (e.g. a grant that arrived and was lost again) before this
		// waiter's own request went out.
		w.tc = a.child(w.tc, a.self(), trace.StageQueue, "chunk-wait", d.ci, w.vt, vt)
		w.vt = vt
	}
	a.send(&fMsg{to: home, kind: kind, chunk: d.ci, op: w.op, vt: vt, tc: w.tc})
	if kind == msgReadReq {
		a.prefetch(w.ctx, d.ci, w.vt)
	}
}

// prefetch requests the next few chunks after ci if they are remote and
// absent. The submissions go to the runtimes owning those chunks.
// Speculative issue spends the requesting thread's spare window credit
// (window minus in-flight demand): a busy pipeline gets no prefetch at
// all, so speculation can never queue ahead of demand fetches.
func (a *Array) prefetch(ctx *cluster.Ctx, ci int64, vt int64) {
	ahead := int64(a.node.Cluster().Config().PrefetchAhead)
	issued := int64(0)
	for k := int64(1); k <= ahead; k++ {
		cj := ci + k
		if cj >= a.sh.nChunks {
			return
		}
		dst := a.homeOfChunk(cj)
		if dst == a.self() {
			continue
		}
		if a.spareCredit(ctx, dst) <= issued {
			a.Metrics.PrefetchThrottled.Add(1)
			return // spend at most the spare credit, in order
		}
		dj := &a.dents[cj]
		issued++
		a.rtOf(cj).Submit(func(rt *cluster.Runtime) {
			a.prefetchChunk(rt, dj, vt)
		})
	}
}

// prefetchChunk issues a speculative read request for chunk d if it is
// absent and idle. Runs on d's owning runtime goroutine; both the
// slow-path miss prefetcher and the fast-path sequential detector land
// here, so the dedup against pending/busy/resident is in one place.
func (a *Array) prefetchChunk(rt *cluster.Runtime, d *dentry, vt int64) {
	if d.pending || d.busy || statePerm(d.state.Load()) != permInvalid {
		return
	}
	d.pending = true
	d.pf.Store(true)
	a.Metrics.Prefetches.Add(1)
	a.send(&fMsg{to: a.homeOfChunk(d.ci), kind: msgReadReq, chunk: d.ci,
		vt: maxi64(vt, d.tvt)})
}

// withLine runs cont once d has a backing cache line, allocating one
// (and stalling on reclamation) if necessary.
func (a *Array) withLine(rt *cluster.Runtime, d *dentry, cont func(rt *cluster.Runtime)) {
	if d.line != nil {
		cont(rt)
		return
	}
	s := a.rstate(rt)
	if ln := s.allocLine(); ln != nil {
		a.adoptLine(d, ln)
		cont(rt)
		return
	}
	rt.Stall(func(rt *cluster.Runtime) bool {
		ln := s.allocLine()
		if ln == nil {
			return false
		}
		a.adoptLine(d, ln)
		cont(rt)
		return true
	})
}

func (a *Array) adoptLine(d *dentry, ln *cacheLine) {
	ln.owner = d
	d.line = ln
	d.data = ln.data
}

// handleDataResp installs a granted chunk copy (Read or RW permission)
// and wakes the local waiters. When the grant upgrades a live Shared
// line (the home excludes the requester from invalidation), active
// readers are drained before the line is overwritten.
func (a *Array) handleDataResp(rt *cluster.Runtime, d *dentry, m *fabric.Message, svt int64, tc trace.Ctx) {
	perm := uint32(m.Val)
	fill := svt + a.copyCost(len(m.Data))
	retrans := m.RetransNs // captured: m is recycled before completeWaiters runs
	a.child(tc, a.self(), trace.StageService, "install", d.ci, svt, fill)
	a.demoteLocal(rt, d, permInvalid, func(rt *cluster.Runtime) {
		a.withLine(rt, d, func(rt *cluster.Runtime) {
			a.installGrant(d, m) // adopts the pooled payload when it can
			a.recycleMsg(m)      // this handler owns m (see handleMsg)
			d.state.Store(perm)
			d.pending = false
			d.tvt = maxi64(d.tvt, fill)
			a.Metrics.Fills.Add(1)
			// Waiters completed by this grant inherit its go-back-N delay:
			// the congestion controller's loss signal rides the Resp.
			d.retrans = retrans
			a.completeWaiters(rt, d)
			d.retrans = 0
		})
	})
}

// handleOpGrant installs an Operated combine buffer initialized to the
// operator's identity, draining any readers of a prior Shared copy
// first.
func (a *Array) handleOpGrant(rt *cluster.Runtime, d *dentry, m *fabric.Message, svt int64) {
	opid := OpID(m.OpID)
	op := a.op(opid)
	if a.shipMode == shipAuto {
		// The grant piggybacks the home's shipping hint in Val (0 in off
		// mode, keeping the wire identical to the pre-shipping protocol).
		d.ship.Store(m.Val != 0)
	}
	retrans := m.RetransNs
	a.recycleMsg(m) // this handler owns m; all fields are consumed above
	a.demoteLocal(rt, d, permInvalid, func(rt *cluster.Runtime) {
		a.withLine(rt, d, func(rt *cluster.Runtime) {
			if a.pooled {
				a.ensureLineData(d) // no inbound payload to adopt
			}
			id := op.Identity
			for i := range d.data {
				d.data[i] = id
			}
			d.state.Store(packState(permOperated, opid))
			d.pending = false
			d.tvt = maxi64(d.tvt, svt)
			d.retrans = retrans
			a.completeWaiters(rt, d)
			d.retrans = 0
		})
	})
}

// completeWaiters responds to every waiter the new state satisfies and
// re-issues a request for the strongest remaining need, if any.
func (a *Array) completeWaiters(rt *cluster.Runtime, d *dentry) {
	st := d.state.Load()
	kept := d.waiters[:0]
	for _, w := range d.waiters {
		if satisfies(st, w.want, w.op) {
			a.respond(rt, d, w, d.tvt)
		} else {
			kept = append(kept, w)
		}
	}
	for i := len(kept); i < len(d.waiters); i++ {
		d.waiters[i] = nil
	}
	d.waiters = kept
	if len(d.waiters) == 0 {
		if !a.pooled {
			d.waiters = nil
		}
		// Pooled: keep the empty slice so the next miss on this chunk
		// appends into retained capacity instead of reallocating.
		return
	}
	if !d.pending && !d.busy {
		a.issueRequest(rt, d)
	}
}

// handleInvalidate drops a Shared copy (home is granting someone
// exclusive or Operated access). Invalidations are idempotent: a line
// already gone (silent eviction, concurrent demotion) just acks.
func (a *Array) handleInvalidate(rt *cluster.Runtime, d *dentry, m *fabric.Message, svt int64, tc trace.Ctx) {
	a.Metrics.Invals.Add(1)
	home := a.homeOfChunk(d.ci)
	if d.busy {
		// Evicting: the line dies anyway; ack once it has.
		d.defrd = append(d.defrd, deferredReq{from: m.From, want: defInvalidate, vt: svt, tc: tc})
		return
	}
	if d.line == nil || statePerm(d.state.Load()) != permRead {
		a.send(&fMsg{to: home, kind: msgInvAck, chunk: d.ci, vt: svt, tc: tc})
		return
	}
	d.busy = true
	d.tvt = maxi64(d.tvt, svt)
	a.demoteLocal(rt, d, permInvalid, func(rt *cluster.Runtime) {
		a.releaseLine(rt, d)
		d.busy = false
		a.send(&fMsg{to: home, kind: msgInvAck, chunk: d.ci, vt: d.tvt, tc: tc})
		a.drainDeferred(rt, d, d.ci)
	})
}

// handleDowngrade writes a Dirty chunk back but keeps a Shared copy
// (home is serving another node's read).
func (a *Array) handleDowngrade(rt *cluster.Runtime, d *dentry, svt int64, tc trace.Ctx) {
	home := a.homeOfChunk(d.ci)
	if d.busy {
		d.defrd = append(d.defrd, deferredReq{want: defDowngrade, vt: svt, tc: tc})
		return
	}
	if d.line == nil || statePerm(d.state.Load()) != permRW {
		return // voluntary writeback already in flight covers this
	}
	d.busy = true
	d.tvt = maxi64(d.tvt, svt)
	a.demoteLocal(rt, d, permRead, func(rt *cluster.Runtime) {
		// The line survives as a Shared copy, so the writeback cannot
		// donate its buffer — this path genuinely copies in both modes.
		data, pay := a.leasePayload(len(d.data))
		copy(data, d.data)
		if a.pooled {
			a.Metrics.PayloadCopies.Add(1)
		}
		a.Metrics.WriteBacks.Add(1)
		d.busy = false
		cc := a.copyCost(len(data))
		wtc := a.child(tc, a.self(), trace.StageService, "copy-out", d.ci, d.tvt, d.tvt+cc)
		a.send(&fMsg{to: home, kind: msgWBData, chunk: d.ci, data: data, pay: pay,
			vt: d.tvt + cc, tc: wtc})
		a.drainDeferred(rt, d, d.ci)
	})
}

// handleRecall writes a Dirty chunk back and invalidates it.
func (a *Array) handleRecall(rt *cluster.Runtime, d *dentry, svt int64, tc trace.Ctx) {
	home := a.homeOfChunk(d.ci)
	if d.busy {
		d.defrd = append(d.defrd, deferredReq{want: defRecall, vt: svt, tc: tc})
		return
	}
	if d.line == nil || statePerm(d.state.Load()) != permRW {
		return // voluntary writeback in flight
	}
	d.busy = true
	d.tvt = maxi64(d.tvt, svt)
	a.demoteLocal(rt, d, permInvalid, func(rt *cluster.Runtime) {
		// The line dies: its buffer rides the writeback message home.
		data, pay := a.takeLineData(d)
		a.Metrics.WriteBacks.Add(1)
		a.releaseLine(rt, d)
		d.busy = false
		cc := a.copyCost(len(data))
		wtc := a.child(tc, a.self(), trace.StageService, "copy-out", d.ci, d.tvt, d.tvt+cc)
		a.send(&fMsg{to: home, kind: msgWBData, chunk: d.ci, data: data, pay: pay,
			vt: d.tvt + cc, tc: wtc})
		a.drainDeferred(rt, d, d.ci)
	})
}

// handleOpRecall flushes the combined-operand buffer to home and
// invalidates the chunk (home is collapsing the Operated state).
func (a *Array) handleOpRecall(rt *cluster.Runtime, d *dentry, svt int64, tc trace.Ctx) {
	home := a.homeOfChunk(d.ci)
	if d.busy {
		d.defrd = append(d.defrd, deferredReq{want: defOpRecall, vt: svt, tc: tc})
		return
	}
	st := d.state.Load()
	if d.line == nil || statePerm(st) != permOperated {
		return // voluntary flush in flight
	}
	op := stateOp(st)
	d.busy = true
	d.tvt = maxi64(d.tvt, svt)
	a.demoteLocal(rt, d, permInvalid, func(rt *cluster.Runtime) {
		// Like handleRecall: the dying line's buffer becomes the flush
		// payload.
		data, pay := a.takeLineData(d)
		a.Metrics.OpFlushes.Add(1)
		a.releaseLine(rt, d)
		d.busy = false
		cc := a.copyCost(len(data))
		wtc := a.child(tc, a.self(), trace.StageService, "copy-out", d.ci, d.tvt, d.tvt+cc)
		a.send(&fMsg{to: home, kind: msgOpFlush, chunk: d.ci, op: op, data: data, pay: pay,
			vt: d.tvt + cc, tc: wtc})
		a.drainDeferred(rt, d, d.ci)
	})
}

// releaseLine detaches and frees d's cache line. A line dying with its
// prefetch mark still set was filled speculatively and never touched.
func (a *Array) releaseLine(rt *cluster.Runtime, d *dentry) {
	if d.line == nil {
		return
	}
	if d.pf.CompareAndSwap(true, false) {
		a.Metrics.PrefetchWasted.Add(1)
	}
	s := a.rstate(rt)
	s.freeLine(d.line)
	d.line = nil
	d.data = nil
}
