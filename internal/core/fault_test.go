package core

import (
	"errors"
	"testing"

	"darray/internal/cluster"
	"darray/internal/fabric"
	"darray/internal/fault"
)

// faultyCluster builds a cluster whose fabric sits on a permanently
// partitioned link (every message between A and B exceeds its retry
// budget). No vtime model, so all traversals carry vt=0 and the window
// [0, 1<<60) is always active.
func faultyCluster(t *testing.T, nodes, a, b int) *cluster.Cluster {
	t.Helper()
	plan := fault.New(fault.Config{
		Seed: 1, Nodes: nodes, RetryBudget: 3,
		Partitions: []fault.Partition{{A: a, B: b, Start: 0, End: 1 << 60}},
	})
	c := cluster.New(cluster.Config{Nodes: nodes, ChunkWords: 64, CacheChunks: 64, Faults: plan})
	t.Cleanup(c.Close)
	return c
}

// A remote Get across a dead link must not deadlock: the Tx thread's
// retry budget runs out, the cluster degrades, the blocked thread
// unblocks with ErrRetryExceeded on its Ctx, and Get returns zero.
func TestRemoteGetSurfacesRetryExceeded(t *testing.T) {
	c := faultyCluster(t, 2, 0, 1)
	done := make(chan error, 1)
	c.Run(func(n *cluster.Node) {
		ctx := n.NewCtx(0)
		a := New(n, 256)
		c.Barrier(ctx)
		if n.ID() == 1 {
			// Element 0 is homed on node 0, across the dead link.
			v := a.Get(ctx, 0)
			if v != 0 {
				t.Errorf("degraded Get returned %d, want 0", v)
			}
			done <- ctx.Err()
		}
		// No trailing barrier: with the link dead the healthy node
		// cannot learn of the failure in-band; Run just joins.
	})
	err := <-done
	if !errors.Is(err, fabric.ErrRetryExceeded) {
		t.Fatalf("ctx.Err() = %v, want ErrRetryExceeded", err)
	}
	if !errors.Is(c.Err(), fabric.ErrRetryExceeded) {
		t.Fatalf("cluster.Err() = %v, want ErrRetryExceeded", c.Err())
	}
}

// Set, Apply, pins, and locks all degrade the same way: zero values and
// recorded errors, no hangs, no panics — including the Unlock that pairs
// a failed lock acquisition.
func TestAllVerbsDegradeAfterFailure(t *testing.T) {
	c := faultyCluster(t, 2, 0, 1)
	c.Run(func(n *cluster.Node) {
		ctx := n.NewCtx(0)
		a := New(n, 256)
		add := a.RegisterOp(OpAddU64)
		c.Barrier(ctx)
		if n.ID() != 1 {
			return
		}
		a.Set(ctx, 0, 42)
		a.Apply(ctx, add, 0, 1)
		if p := a.PinRead(ctx, 0); p != nil {
			t.Error("PinRead across a dead link returned a pin")
		}
		a.WLock(ctx, 7)
		a.Unlock(ctx, 7) // must not panic "unlock of a lock not held"
		if ctx.Err() == nil {
			t.Error("ctx.Err() nil after degraded operations")
		}
		// Local elements this node homes stay accessible.
		lo, _ := a.LocalRange()
		a.Set(ctx, lo, 7)
		if v := a.Get(ctx, lo); v != 7 {
			t.Errorf("local access after degradation: got %d, want 7", v)
		}
	})
}

// Healthy links keep working while a disjoint pair is partitioned: the
// failure only poisons threads that depend on the dead link.
func TestHealthyTrafficUnaffectedBeforeFailure(t *testing.T) {
	plan := fault.New(fault.Config{Seed: 5, Nodes: 3, DropProb: 0.05})
	c := cluster.New(cluster.Config{Nodes: 3, ChunkWords: 64, CacheChunks: 64, Faults: plan})
	defer c.Close()
	c.Run(func(n *cluster.Node) {
		ctx := n.NewCtx(0)
		a := New(n, 3*64*4)
		c.Barrier(ctx)
		lo, hi := a.LocalRange()
		for i := lo; i < hi; i++ {
			a.Set(ctx, i, uint64(i)+1)
		}
		c.Barrier(ctx)
		// Every node reads the whole array through 5% loss: the RC layer
		// must hide all of it.
		for i := int64(0); i < 3*64*4; i++ {
			if v := a.Get(ctx, i); v != uint64(i)+1 {
				t.Errorf("node %d: a[%d] = %d, want %d", n.ID(), i, v, i+1)
				break
			}
		}
		c.Barrier(ctx)
		if err := ctx.Err(); err != nil {
			t.Errorf("node %d: unexpected degradation: %v", n.ID(), err)
		}
	})
	if s := plan.Stats(); s.Drops == 0 {
		t.Fatalf("plan injected no drops: %+v", s)
	}
}
