package core

import (
	"sync"
	"testing"

	"darray/internal/cluster"
)

func TestTinyArrayOneElement(t *testing.T) {
	c := tc(t, 3)
	c.Run(func(n *cluster.Node) {
		a := New(n, 1)
		add := a.RegisterOp(OpAddU64)
		ctx := n.NewCtx(0)
		c.Barrier(ctx)
		a.Apply(ctx, add, 0, 1)
		c.Barrier(ctx)
		if got := a.Get(ctx, 0); got != 3 {
			t.Errorf("single element = %d, want 3", got)
		}
		c.Barrier(ctx)
	})
}

func TestPartialFinalChunk(t *testing.T) {
	c := tc(t, 2)
	c.Run(func(n *cluster.Node) {
		a := New(n, 64+10) // last chunk holds 10 live elements
		ctx := n.NewCtx(0)
		lo, hi := a.LocalRange()
		for i := lo; i < hi; i++ {
			a.Set(ctx, i, uint64(i+1))
		}
		c.Barrier(ctx)
		for i := int64(0); i < a.Len(); i++ {
			if got := a.Get(ctx, i); got != uint64(i+1) {
				t.Errorf("a[%d] = %d", i, got)
				return
			}
		}
		c.Barrier(ctx)
	})
}

func TestSingleRuntimeThread(t *testing.T) {
	c := tc(t, 2, func(cfg *cluster.Config) { cfg.RuntimeThreads = 1 })
	c.Run(func(n *cluster.Node) {
		a := New(n, 2*64*4)
		add := a.RegisterOp(OpAddU64)
		ctx := n.NewCtx(0)
		c.Barrier(ctx)
		for k := 0; k < 300; k++ {
			a.Apply(ctx, add, int64(k)%a.Len(), 1)
		}
		c.Barrier(ctx)
		var sum uint64
		for i := int64(0); i < a.Len(); i++ {
			sum += a.Get(ctx, i)
		}
		if sum != 600 {
			t.Errorf("sum = %d, want 600", sum)
		}
		c.Barrier(ctx)
	})
}

func TestManyRuntimeThreads(t *testing.T) {
	c := tc(t, 2, func(cfg *cluster.Config) { cfg.RuntimeThreads = 5 })
	c.Run(func(n *cluster.Node) {
		a := New(n, 2*64*7)
		ctx := n.NewCtx(0)
		c.Barrier(ctx)
		if n.ID() == 1 {
			for i := int64(0); i < 64*7; i++ {
				a.Set(ctx, i, uint64(i)*3)
			}
		}
		c.Barrier(ctx)
		if n.ID() == 0 {
			for i := int64(0); i < 64*7; i++ {
				if got := a.Get(ctx, i); got != uint64(i)*3 {
					t.Errorf("a[%d] = %d", i, got)
					return
				}
			}
		}
		c.Barrier(ctx)
	})
}

func TestPrefetchDisabled(t *testing.T) {
	c := tc(t, 2, func(cfg *cluster.Config) { cfg.PrefetchAhead = -1 })
	c.Run(func(n *cluster.Node) {
		a := New(n, 2*64*8)
		ctx := n.NewCtx(0)
		lo, hi := a.LocalRange()
		for i := lo; i < hi; i++ {
			a.Set(ctx, i, 7)
		}
		c.Barrier(ctx)
		olo, ohi := int64(0), lo
		if n.ID() == 0 {
			olo, ohi = hi, a.Len()
		}
		for i := olo; i < ohi; i++ {
			if a.Get(ctx, i) != 7 {
				t.Errorf("bad read at %d", i)
				return
			}
		}
		c.Barrier(ctx)
		if a.Metrics.Prefetches.Load() != 0 {
			t.Errorf("prefetches issued despite being disabled: %d",
				a.Metrics.Prefetches.Load())
		}
	})
}

func TestConcurrentPinsOnSameChunk(t *testing.T) {
	c := tc(t, 2)
	c.Run(func(n *cluster.Node) {
		a := New(n, 2*64)
		add := a.RegisterOp(OpAddU64)
		root := n.NewCtx(0)
		c.Barrier(root)
		n.RunThreads(4, func(ctx *cluster.Ctx) {
			p := a.PinOperate(ctx, 0, add)
			for k := 0; k < 200; k++ {
				p.Apply(ctx, 5, 1)
			}
			p.Unpin(ctx)
		})
		c.Barrier(root)
		if got := a.Get(root, 5); got != 2*4*200 {
			t.Errorf("sum = %d, want 1600", got)
		}
		c.Barrier(root)
	})
}

func TestWriterNotStarvedByReaders(t *testing.T) {
	c := tc(t, 2)
	c.Run(func(n *cluster.Node) {
		a := New(n, 64)
		root := n.NewCtx(0)
		c.Barrier(root)
		var wg sync.WaitGroup
		if n.ID() == 0 {
			// A stream of readers…
			for r := 0; r < 2; r++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					ctx := n.NewCtx(tid)
					for k := 0; k < 200; k++ {
						a.RLock(ctx, 3)
						a.Unlock(ctx, 3)
					}
				}(r)
			}
		} else {
			// …must not starve this writer (FIFO queue at the home).
			ctx := n.NewCtx(0)
			for k := 0; k < 50; k++ {
				a.WLock(ctx, 3)
				a.Set(ctx, 3, a.Get(ctx, 3)+1)
				a.Unlock(ctx, 3)
			}
		}
		wg.Wait()
		c.Barrier(root)
		if got := a.Get(root, 3); got != 50 {
			t.Errorf("writer increments = %d, want 50", got)
		}
		c.Barrier(root)
	})
}

func TestDifferentOpsOnDifferentChunks(t *testing.T) {
	c := tc(t, 2)
	c.Run(func(n *cluster.Node) {
		a := New(n, 2*64)
		add := a.RegisterOp(OpAddU64)
		max := a.RegisterOp(OpMaxU64)
		ctx := n.NewCtx(0)
		c.Barrier(ctx)
		a.Apply(ctx, add, 1, 10)              // chunk 0 Operated(add)
		a.Apply(ctx, max, 64, uint64(n.ID())) // chunk 1 Operated(max)
		c.Barrier(ctx)
		if got := a.Get(ctx, 1); got != 20 {
			t.Errorf("add chunk = %d, want 20", got)
		}
		if got := a.Get(ctx, 64); got != 1 {
			t.Errorf("max chunk = %d, want 1", got)
		}
		c.Barrier(ctx)
	})
}

func TestRegisterOpAfterTraffic(t *testing.T) {
	c := tc(t, 2)
	c.Run(func(n *cluster.Node) {
		a := New(n, 2*64)
		add := a.RegisterOp(OpAddU64)
		ctx := n.NewCtx(0)
		c.Barrier(ctx)
		a.Apply(ctx, add, 0, 1)
		c.Barrier(ctx)
		min := a.RegisterOp(OpMinU64) // registered mid-run, collectively
		c.Barrier(ctx)
		a.Apply(ctx, min, 1, uint64(5+n.ID()))
		c.Barrier(ctx)
		if got := a.Get(ctx, 1); got != 0 { // initial 0 < both operands
			t.Errorf("min = %d, want 0", got)
		}
		if got := a.Get(ctx, 0); got != 2 {
			t.Errorf("add = %d, want 2", got)
		}
		c.Barrier(ctx)
	})
}

func TestUnregisteredOpPanics(t *testing.T) {
	c := tc(t, 1)
	c.Run(func(n *cluster.Node) {
		a := New(n, 64)
		ctx := n.NewCtx(0)
		defer func() {
			if recover() == nil {
				t.Error("expected panic for unregistered operator")
			}
		}()
		a.Apply(ctx, OpID(99), 0, 1)
	})
}

func TestLockOnRemoteElementUnderEvictionPressure(t *testing.T) {
	c := tc(t, 2, func(cfg *cluster.Config) { cfg.CacheChunks = 4 })
	c.Run(func(n *cluster.Node) {
		a := New(n, 2*64*16)
		ctx := n.NewCtx(0)
		c.Barrier(ctx)
		// Interleave locked updates with cache-thrashing scans.
		other := (int64(1 - n.ID())) * 64 * 16
		for k := 0; k < 20; k++ {
			a.WLock(ctx, other)
			a.Set(ctx, other, a.Get(ctx, other)+1)
			a.Unlock(ctx, other)
			for i := int64(0); i < 64*8; i++ {
				a.Get(ctx, (other+i)%a.Len())
			}
		}
		c.Barrier(ctx)
		if got := a.Get(ctx, 0); got != 20 {
			t.Errorf("a[0] = %d, want 20", got)
		}
		if got := a.Get(ctx, 64*16); got != 20 {
			t.Errorf("a[1024] = %d, want 20", got)
		}
		c.Barrier(ctx)
	})
}

func TestStatsAccounting(t *testing.T) {
	c := tc(t, 2)
	c.Run(func(n *cluster.Node) {
		a := New(n, 2*64)
		ctx := n.NewCtx(0)
		c.Barrier(ctx)
		if n.ID() == 0 {
			before := ctx.Stats
			for i := int64(64); i < 128; i++ {
				a.Get(ctx, i) // remote chunk: 1 miss + 63 hits (at least)
			}
			d := ctx.Stats
			if d.Ops-before.Ops != 64 {
				t.Errorf("ops delta = %d, want 64", d.Ops-before.Ops)
			}
			if d.Misses-before.Misses == 0 {
				t.Error("expected at least one miss")
			}
			if d.Hits-before.Hits < 60 {
				t.Errorf("hits delta = %d, want >= 60", d.Hits-before.Hits)
			}
		}
		c.Barrier(ctx)
	})
}
