package core

import (
	"sync/atomic"
	"testing"

	"darray/internal/cluster"
)

// tc builds a small test cluster; callers must Close it.
func tc(t *testing.T, nodes int, opts ...func(*cluster.Config)) *cluster.Cluster {
	t.Helper()
	cfg := cluster.Config{Nodes: nodes, ChunkWords: 64, CacheChunks: 64}
	for _, o := range opts {
		o(&cfg)
	}
	c := cluster.New(cfg)
	t.Cleanup(c.Close)
	return c
}

func TestSingleNodeGetSet(t *testing.T) {
	c := tc(t, 1)
	c.Run(func(n *cluster.Node) {
		a := New(n, 1000)
		ctx := n.NewCtx(0)
		for i := int64(0); i < 1000; i++ {
			a.Set(ctx, i, uint64(i*3))
		}
		for i := int64(0); i < 1000; i++ {
			if got := a.Get(ctx, i); got != uint64(i*3) {
				t.Errorf("a[%d] = %d, want %d", i, got, i*3)
				return
			}
		}
		if ctx.Stats.Misses != 0 {
			t.Errorf("single-node access took %d slow paths", ctx.Stats.Misses)
		}
	})
}

func TestBoundsPanic(t *testing.T) {
	c := tc(t, 1)
	c.Run(func(n *cluster.Node) {
		a := New(n, 10)
		ctx := n.NewCtx(0)
		defer func() {
			if recover() == nil {
				t.Error("expected panic for out-of-range index")
			}
		}()
		a.Get(ctx, 10)
	})
}

func TestPartitioning(t *testing.T) {
	c := tc(t, 4)
	c.Run(func(n *cluster.Node) {
		a := New(n, 4*64*3) // 12 chunks over 4 nodes
		lo, hi := a.LocalRange()
		if hi-lo != 3*64 {
			t.Errorf("node %d range [%d,%d): want 192 elements", n.ID(), lo, hi)
		}
		if h := a.HomeOf(lo); h != n.ID() {
			t.Errorf("HomeOf(%d) = %d, want %d", lo, h, n.ID())
		}
	})
}

func TestCustomPartition(t *testing.T) {
	c := tc(t, 2)
	c.Run(func(n *cluster.Node) {
		// All 4 chunks on node 1: node 0 gets offset range [0,0).
		a := New(n, 4*64, Options{PartitionOffset: []int64{0, 0}})
		lo, hi := a.LocalRange()
		if n.ID() == 0 && hi != lo {
			t.Errorf("node 0 should own nothing, got [%d,%d)", lo, hi)
		}
		if n.ID() == 1 && hi-lo != 4*64 {
			t.Errorf("node 1 should own everything, got [%d,%d)", lo, hi)
		}
	})
}

func TestRemoteReadCaches(t *testing.T) {
	c := tc(t, 2)
	c.Run(func(n *cluster.Node) {
		a := New(n, 2*64)
		ctx := n.NewCtx(0)
		if n.ID() == 0 {
			for i := int64(0); i < 64; i++ {
				a.Set(ctx, i, uint64(100+i))
			}
		}
		c.Barrier(ctx)
		if n.ID() == 1 {
			if got := a.Get(ctx, 5); got != 105 {
				t.Errorf("remote read = %d, want 105", got)
			}
			miss := ctx.Stats.Misses
			// Subsequent reads of the same chunk hit the cache.
			for i := int64(0); i < 64; i++ {
				if got := a.Get(ctx, i); got != uint64(100+i) {
					t.Errorf("cached read a[%d] = %d", i, got)
					return
				}
			}
			if ctx.Stats.Misses != miss {
				t.Errorf("cached reads missed %d times", ctx.Stats.Misses-miss)
			}
		}
		c.Barrier(ctx)
	})
}

func TestRemoteWriteThenHomeRead(t *testing.T) {
	c := tc(t, 2)
	c.Run(func(n *cluster.Node) {
		a := New(n, 2*64)
		ctx := n.NewCtx(0)
		if n.ID() == 1 {
			a.Set(ctx, 3, 777) // chunk 0 homed on node 0 → Dirty at node 1
		}
		c.Barrier(ctx)
		if n.ID() == 0 {
			if got := a.Get(ctx, 3); got != 777 {
				t.Errorf("home read after remote write = %d, want 777", got)
			}
		}
		c.Barrier(ctx)
	})
}

func TestWriteInvalidatesSharers(t *testing.T) {
	c := tc(t, 3)
	c.Run(func(n *cluster.Node) {
		a := New(n, 3*64)
		ctx := n.NewCtx(0)
		// Everyone reads chunk 0 (homed on node 0) → Shared everywhere.
		_ = a.Get(ctx, 0)
		c.Barrier(ctx)
		if n.ID() == 2 {
			a.Set(ctx, 0, 42) // must invalidate nodes 1 and home copy
		}
		c.Barrier(ctx)
		if got := a.Get(ctx, 0); got != 42 {
			t.Errorf("node %d read %d after invalidation, want 42", n.ID(), got)
		}
		c.Barrier(ctx)
	})
}

func TestDirtyReadDowngradesToShared(t *testing.T) {
	c := tc(t, 3)
	c.Run(func(n *cluster.Node) {
		a := New(n, 3*64)
		ctx := n.NewCtx(0)
		if n.ID() == 1 {
			a.Set(ctx, 0, 9) // Dirty at node 1
		}
		c.Barrier(ctx)
		if n.ID() == 2 {
			if got := a.Get(ctx, 0); got != 9 {
				t.Errorf("reader got %d, want 9", got)
			}
		}
		c.Barrier(ctx)
		// Node 1 should still be able to read its (now Shared) copy fast.
		if n.ID() == 1 {
			before := ctx.Stats.Misses
			if got := a.Get(ctx, 0); got != 9 {
				t.Errorf("former owner read %d, want 9", got)
			}
			if ctx.Stats.Misses != before {
				t.Error("former owner lost its Shared copy after downgrade")
			}
		}
		c.Barrier(ctx)
	})
}

func TestOperateAddAcrossNodes(t *testing.T) {
	const nodes, per = 4, 250
	c := tc(t, nodes)
	c.Run(func(n *cluster.Node) {
		a := New(n, 3*64)
		add := a.RegisterOp(OpAddU64)
		ctx := n.NewCtx(0)
		c.Barrier(ctx)
		for k := 0; k < per; k++ {
			a.Apply(ctx, add, 7, 1) // all nodes pound one element
		}
		c.Barrier(ctx)
		if got := a.Get(ctx, 7); got != nodes*per {
			t.Errorf("node %d: sum = %d, want %d", n.ID(), got, nodes*per)
		}
		c.Barrier(ctx)
	})
}

func TestOperateMin(t *testing.T) {
	c := tc(t, 3)
	c.Run(func(n *cluster.Node) {
		a := New(n, 3*64)
		min := a.RegisterOp(OpMinU64)
		ctx := n.NewCtx(0)
		if a.HomeOf(10) == n.ID() {
			a.Set(ctx, 10, 1000)
		}
		c.Barrier(ctx)
		a.Apply(ctx, min, 10, uint64(100-n.ID())) // 100, 99, 98
		c.Barrier(ctx)
		if got := a.Get(ctx, 10); got != 98 {
			t.Errorf("min = %d, want 98", got)
		}
		c.Barrier(ctx)
	})
}

func TestOperateThenWriteThenOperate(t *testing.T) {
	c := tc(t, 2)
	c.Run(func(n *cluster.Node) {
		a := New(n, 2*64)
		add := a.RegisterOp(OpAddU64)
		ctx := n.NewCtx(0)
		a.Apply(ctx, add, 0, 5)
		c.Barrier(ctx)
		if n.ID() == 1 {
			if got := a.Get(ctx, 0); got != 10 {
				t.Errorf("after applies: %d, want 10", got)
			}
			a.Set(ctx, 0, 1)
		}
		c.Barrier(ctx)
		a.Apply(ctx, add, 0, 2)
		c.Barrier(ctx)
		if got := a.Get(ctx, 0); got != 5 {
			t.Errorf("final = %d, want 5 (1 + 2 + 2)", got)
		}
		c.Barrier(ctx)
	})
}

func TestTwoOperatorsCollapse(t *testing.T) {
	c := tc(t, 2)
	c.Run(func(n *cluster.Node) {
		a := New(n, 2*64)
		add := a.RegisterOp(OpAddU64)
		max := a.RegisterOp(OpMaxU64)
		ctx := n.NewCtx(0)
		a.Apply(ctx, add, 1, 10)
		c.Barrier(ctx)
		// Switching operator forces an Operated(add) → Operated(max)
		// collapse through Unshared.
		a.Apply(ctx, max, 1, uint64(5+n.ID()*20)) // 5 and 25
		c.Barrier(ctx)
		if got := a.Get(ctx, 1); got != 25 {
			t.Errorf("max(add-result 20, 5, 25) = %d, want 25", got)
		}
		c.Barrier(ctx)
	})
}

func TestLocksMutualExclusion(t *testing.T) {
	const nodes, iters = 3, 50
	c := tc(t, nodes)
	var inCrit atomic.Int32
	c.Run(func(n *cluster.Node) {
		a := New(n, 3*64)
		ctx := n.NewCtx(0)
		c.Barrier(ctx)
		for k := 0; k < iters; k++ {
			a.WLock(ctx, 5)
			if inCrit.Add(1) != 1 {
				t.Error("two holders inside WLock critical section")
			}
			v := a.Get(ctx, 5)
			a.Set(ctx, 5, v+1)
			inCrit.Add(-1)
			a.Unlock(ctx, 5)
		}
		c.Barrier(ctx)
		if got := a.Get(ctx, 5); got != nodes*iters {
			t.Errorf("locked counter = %d, want %d", got, nodes*iters)
		}
		c.Barrier(ctx)
	})
}

func TestRLockSharedWLockExclusive(t *testing.T) {
	c := tc(t, 2)
	var readers atomic.Int32
	var writerIn atomic.Bool
	c.Run(func(n *cluster.Node) {
		a := New(n, 2*64)
		ctx := n.NewCtx(0)
		c.Barrier(ctx)
		for k := 0; k < 30; k++ {
			a.RLock(ctx, 0)
			readers.Add(1)
			if writerIn.Load() {
				t.Error("reader overlapped writer")
			}
			readers.Add(-1)
			a.Unlock(ctx, 0)

			a.WLock(ctx, 0)
			writerIn.Store(true)
			if readers.Load() != 0 {
				t.Error("writer overlapped readers")
			}
			writerIn.Store(false)
			a.Unlock(ctx, 0)
		}
		c.Barrier(ctx)
	})
}

func TestPinReadFastAccess(t *testing.T) {
	c := tc(t, 2)
	c.Run(func(n *cluster.Node) {
		a := New(n, 2*64)
		ctx := n.NewCtx(0)
		if n.ID() == 0 {
			for i := int64(0); i < 64; i++ {
				a.Set(ctx, i, uint64(i))
			}
		}
		c.Barrier(ctx)
		if n.ID() == 1 {
			p := a.PinRead(ctx, 0)
			if p.First() != 0 || p.Limit() != 64 {
				t.Errorf("pin covers [%d,%d), want [0,64)", p.First(), p.Limit())
			}
			var sum uint64
			for i := p.First(); i < p.Limit(); i++ {
				sum += p.Get(ctx, i)
			}
			if sum != 64*63/2 {
				t.Errorf("pinned sum = %d, want %d", sum, 64*63/2)
			}
			p.Unpin(ctx)
		}
		c.Barrier(ctx)
	})
}

func TestPinWriteBlocksRemoteUntilUnpin(t *testing.T) {
	c := tc(t, 2)
	c.Run(func(n *cluster.Node) {
		a := New(n, 2*64)
		ctx := n.NewCtx(0)
		if n.ID() == 0 {
			p := a.PinWrite(ctx, 0)
			p.Set(ctx, 0, 11)
			c.Barrier(ctx) // [1] pinned
			// Hold the pin briefly while node 1 requests the chunk; the
			// protocol must wait for the unpin, not break the pin.
			p.Set(ctx, 1, 22)
			p.Unpin(ctx)
			c.Barrier(ctx) // [2]
		} else {
			c.Barrier(ctx) // [1]
			if got := a.Get(ctx, 0); got != 11 {
				t.Errorf("read under pin contention = %d, want 11", got)
			}
			if got := a.Get(ctx, 1); got != 22 {
				t.Errorf("read missed pinned write: %d, want 22", got)
			}
			c.Barrier(ctx) // [2]
		}
	})
}

func TestPinOperate(t *testing.T) {
	c := tc(t, 2)
	c.Run(func(n *cluster.Node) {
		a := New(n, 2*64)
		add := a.RegisterOp(OpAddU64)
		ctx := n.NewCtx(0)
		c.Barrier(ctx)
		p := a.PinOperate(ctx, 0, add)
		for k := 0; k < 100; k++ {
			p.Apply(ctx, 3, 1)
		}
		p.Unpin(ctx)
		c.Barrier(ctx)
		if got := a.Get(ctx, 3); got != 200 {
			t.Errorf("pinned applies = %d, want 200", got)
		}
		c.Barrier(ctx)
	})
}

func TestEvictionUnderSmallCache(t *testing.T) {
	// Cache of 8 lines per runtime; scan a remote region of 64 chunks so
	// eviction must run. Shared lines evict silently and re-fetch.
	c := tc(t, 2, func(cfg *cluster.Config) { cfg.CacheChunks = 8 })
	c.Run(func(n *cluster.Node) {
		a := New(n, 2*64*64)
		ctx := n.NewCtx(0)
		lo, hi := a.LocalRange()
		for i := lo; i < hi; i++ {
			a.Set(ctx, i, uint64(i))
		}
		c.Barrier(ctx)
		// Read the other node's whole partition, twice.
		olo, ohi := int64(0), int64(0)
		if n.ID() == 0 {
			olo, ohi = hi, a.Len()
		} else {
			olo, ohi = 0, lo
		}
		for pass := 0; pass < 2; pass++ {
			for i := olo; i < ohi; i++ {
				if got := a.Get(ctx, i); got != uint64(i) {
					t.Errorf("pass %d: a[%d] = %d", pass, i, got)
					return
				}
			}
		}
		c.Barrier(ctx)
		if a.Metrics.Evictions.Load() == 0 {
			t.Error("no evictions despite tiny cache")
		}
	})
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	c := tc(t, 2, func(cfg *cluster.Config) { cfg.CacheChunks = 8 })
	c.Run(func(n *cluster.Node) {
		a := New(n, 2*64*64)
		ctx := n.NewCtx(0)
		c.Barrier(ctx)
		if n.ID() == 1 {
			// Write a long remote stretch: dirty lines must be written
			// back on eviction, not lost.
			for i := int64(0); i < 40*64; i++ {
				a.Set(ctx, i, uint64(i+7))
			}
		}
		c.Barrier(ctx)
		if n.ID() == 0 {
			for i := int64(0); i < 40*64; i++ {
				if got := a.Get(ctx, i); got != uint64(i+7) {
					t.Fatalf("lost dirty data at %d: got %d", i, got)
				}
			}
		}
		c.Barrier(ctx)
	})
}

func TestF64View(t *testing.T) {
	c := tc(t, 2)
	c.Run(func(n *cluster.Node) {
		a := New(n, 2*64)
		f := a.AsF64()
		add := a.RegisterOp(OpAddF64)
		ctx := n.NewCtx(0)
		if n.ID() == 0 {
			f.Set(ctx, 0, 1.5)
		}
		c.Barrier(ctx)
		f.Apply(ctx, add, 0, 0.25)
		c.Barrier(ctx)
		if got := f.Get(ctx, 0); got != 2.0 {
			t.Errorf("f64 = %v, want 2.0", got)
		}
		c.Barrier(ctx)
	})
}

func TestStateTable(t *testing.T) {
	// Paper Table 1: permissions per state at home vs others.
	c := tc(t, 2)
	c.Run(func(n *cluster.Node) {
		a := New(n, 2*64)
		ctx := n.NewCtx(0)
		d0 := &a.dents[0] // homed on node 0
		if n.ID() == 0 {
			// Unshared: home has RW.
			if statePerm(d0.state.Load()) != permRW {
				t.Error("Unshared: home should hold RW")
			}
		}
		c.Barrier(ctx)
		_ = a.Get(ctx, 0) // both read → Shared
		c.Barrier(ctx)
		if statePerm(d0.state.Load()) != permRead {
			t.Errorf("Shared: node %d perm = %d, want Read", n.ID(), statePerm(d0.state.Load()))
		}
		c.Barrier(ctx)
		if n.ID() == 1 {
			a.Set(ctx, 0, 1) // → Dirty at node 1
			if statePerm(d0.state.Load()) != permRW {
				t.Error("Dirty: owner should hold RW")
			}
		}
		c.Barrier(ctx)
		if n.ID() == 0 {
			if statePerm(d0.state.Load()) != permInvalid {
				t.Error("Dirty: home should hold no permission")
			}
		}
		c.Barrier(ctx)
	})
}

func TestMultiThreadedSameChunk(t *testing.T) {
	c := tc(t, 2)
	c.Run(func(n *cluster.Node) {
		a := New(n, 2*64)
		add := a.RegisterOp(OpAddU64)
		ctx0 := n.NewCtx(0)
		c.Barrier(ctx0)
		n.RunThreads(4, func(ctx *cluster.Ctx) {
			for k := 0; k < 100; k++ {
				a.Apply(ctx, add, 9, 1)
			}
		})
		c.Barrier(ctx0)
		if got := a.Get(ctx0, 9); got != 2*4*100 {
			t.Errorf("concurrent applies = %d, want 800", got)
		}
		c.Barrier(ctx0)
	})
}

func TestRegisterOpIDsStable(t *testing.T) {
	c := tc(t, 3)
	ids := make([][2]OpID, 3)
	c.Run(func(n *cluster.Node) {
		a := New(n, 3*64)
		ids[n.ID()][0] = a.RegisterOp(OpAddU64)
		ids[n.ID()][1] = a.RegisterOp(OpMinU64)
	})
	for i := 1; i < 3; i++ {
		if ids[i] != ids[0] {
			t.Fatalf("operator ids differ across nodes: %v vs %v", ids[i], ids[0])
		}
	}
	if ids[0][0] == ids[0][1] {
		t.Fatal("distinct operators got the same id")
	}
}
