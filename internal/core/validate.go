package core

import (
	"fmt"
	"sync"

	"darray/internal/cluster"
)

// chunkView is a consistent snapshot of one dentry, taken on the
// runtime goroutine that owns it (so reading the runtime-private fields
// is race-free).
type chunkView struct {
	perm    uint32
	op      OpID
	busy    bool
	pending bool
	queued  int // waiters + deferred
	dstate  uint8
	sharers uint64
	opNodes uint64
	owner   int32
	dop     OpID
}

// snapshotViews captures every chunk's view on this node via its owning
// runtime goroutines.
func (a *Array) snapshotViews() []chunkView {
	views := make([]chunkView, a.sh.nChunks)
	var wg sync.WaitGroup
	for r := 0; r < a.node.Runtimes(); r++ {
		wg.Add(1)
		rt := a.node.Runtime(r)
		r := r
		rt.Submit(func(rt *cluster.Runtime) {
			defer wg.Done()
			for ci := int64(r); ci < a.sh.nChunks; ci += int64(a.node.Runtimes()) {
				d := &a.dents[ci]
				st := d.state.Load()
				views[ci] = chunkView{
					perm:    statePerm(st),
					op:      stateOp(st),
					busy:    d.busy,
					pending: d.pending,
					queued:  len(d.waiters) + len(d.defrd) + len(d.shipQ),
					dstate:  d.dstate,
					sharers: d.sharers,
					opNodes: d.opNodes,
					owner:   d.owner,
					dop:     d.opID,
				}
			}
		})
	}
	wg.Wait()
	return views
}

// ValidateQuiesced checks the cross-node coherence invariants of the
// extended protocol (paper Table 1) for every chunk of the array. It
// must be called when the cluster is quiescent — all application
// threads stopped at a barrier with no requests in flight — typically
// from tests. It returns the first violation found.
//
// Invariants checked, per chunk:
//
//	Unshared: home holds RW; no other node holds any permission.
//	Shared:   home holds Read; every non-home permission is Read, and
//	          every reader is in the home's sharer set.
//	Dirty:    exactly the registered owner holds RW; home holds nothing.
//	Operated: home and the registered operating nodes hold Operated
//	          with the registered operator; nobody holds Read/RW.
func ValidateQuiesced(insts []*Array) error {
	if len(insts) == 0 {
		return fmt.Errorf("core: no instances to validate")
	}
	sh := insts[0].sh
	views := make([][]chunkView, len(insts))
	for v, a := range insts {
		if a.sh != sh {
			return fmt.Errorf("core: instances belong to different arrays")
		}
		views[v] = a.snapshotViews()
	}
	for ci := int64(0); ci < sh.nChunks; ci++ {
		home := insts[0].homeOfChunk(ci)
		hv := views[home][ci]
		if hv.busy || hv.queued > 0 {
			return fmt.Errorf("chunk %d: home not quiescent", ci)
		}
		switch hv.dstate {
		case dirUnshared:
			if hv.perm != permRW {
				return fmt.Errorf("chunk %d: Unshared but home perm %d", ci, hv.perm)
			}
			for v := range insts {
				if v != home && views[v][ci].perm != permInvalid {
					return fmt.Errorf("chunk %d: Unshared but node %d holds perm %d",
						ci, v, views[v][ci].perm)
				}
			}
		case dirShared:
			if hv.perm != permRead {
				return fmt.Errorf("chunk %d: Shared but home perm %d", ci, hv.perm)
			}
			for v := range insts {
				if v == home {
					continue
				}
				p := views[v][ci].perm
				if p == permInvalid {
					continue
				}
				if p != permRead {
					return fmt.Errorf("chunk %d: Shared but node %d holds perm %d", ci, v, p)
				}
				if hv.sharers&(1<<uint(v)) == 0 {
					return fmt.Errorf("chunk %d: node %d reads without a sharer bit", ci, v)
				}
			}
		case dirDirty:
			if hv.perm != permInvalid {
				return fmt.Errorf("chunk %d: Dirty but home perm %d", ci, hv.perm)
			}
			owner := int(hv.owner)
			if owner < 0 || owner >= len(insts) || owner == home {
				return fmt.Errorf("chunk %d: Dirty with bad owner %d", ci, owner)
			}
			for v := range insts {
				if v == home {
					continue
				}
				p := views[v][ci].perm
				if v == owner && p != permRW {
					return fmt.Errorf("chunk %d: owner %d holds perm %d, want RW", ci, v, p)
				}
				if v != owner && p != permInvalid {
					return fmt.Errorf("chunk %d: Dirty but non-owner %d holds perm %d", ci, v, p)
				}
			}
		case dirOperated:
			if hv.perm != permOperated || hv.op != hv.dop {
				return fmt.Errorf("chunk %d: Operated(%d) but home perm %d op %d",
					ci, hv.dop, hv.perm, hv.op)
			}
			for v := range insts {
				if v == home {
					continue
				}
				cv := views[v][ci]
				if cv.perm == permInvalid {
					continue // evicted combiner: flush already merged
				}
				if cv.perm != permOperated || cv.op != hv.dop {
					return fmt.Errorf("chunk %d: Operated(%d) but node %d perm %d op %d",
						ci, hv.dop, v, cv.perm, cv.op)
				}
				if hv.opNodes&(1<<uint(v)) == 0 {
					return fmt.Errorf("chunk %d: node %d combines without an opNodes bit", ci, v)
				}
			}
		default:
			return fmt.Errorf("chunk %d: unknown dstate %d", ci, hv.dstate)
		}
	}
	return nil
}

// Instances returns every node's handle of this array (test support for
// ValidateQuiesced).
func (a *Array) Instances() []*Array {
	out := make([]*Array, len(a.sh.insts))
	copy(out, a.sh.insts)
	return out
}
