//go:build race

package core

// raceEnabled reports that the race detector is active. Allocation
// regression tests are skipped under it: the detector's shadow-memory
// bookkeeping allocates on its own, distorting Mallocs deltas.
const raceEnabled = true
