package core

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"darray/internal/cluster"
	"darray/internal/trace"
)

// Pin is an explicitly held reference to one chunk (paper §4.1 "Pin
// interface"): while held, the runtime can neither evict the chunk nor
// degrade its permission, so the pinned accessors skip the delay-flag
// and refcnt atomics entirely — the fast path costs the same as a
// builtin array access plus a bounds check.
type Pin struct {
	a     *Array
	d     *dentry
	base  int64 // first global element covered
	limit int64 // one past the last global element covered
	apFn  func(acc, operand uint64) uint64
	op    OpID
}

// PinRead pins the chunk containing element i with read permission.
// While pinned in Shared state the runtime may still serve other nodes'
// read requests from it. Like all pin variants it returns nil when the
// cluster has hit a fatal fabric error (see ctx.Err).
func (a *Array) PinRead(ctx *cluster.Ctx, i int64) *Pin {
	return a.pin(ctx, i, wantPinRead, 0, trace.Ctx{})
}

// PinWrite pins the chunk containing element i with exclusive (RW)
// permission.
func (a *Array) PinWrite(ctx *cluster.Ctx, i int64) *Pin {
	return a.pin(ctx, i, wantPinWrite, 0, trace.Ctx{})
}

// PinOperate pins the chunk containing element i in the Operated state
// for operator op, so Apply calls combine without atomics on the control
// path (the element CAS remains — combiners stay concurrent).
func (a *Array) PinOperate(ctx *cluster.Ctx, i int64, op OpID) *Pin {
	return a.pin(ctx, i, wantPinOperate, op, trace.Ctx{})
}

// mkPin builds the Pin handle for chunk ci once a reference is held.
func (a *Array) mkPin(d *dentry, ci int64, fn func(acc, operand uint64) uint64, op OpID) *Pin {
	base := ci * a.sh.chunkWords
	limit := base + a.sh.chunkWords
	if limit > a.sh.n {
		limit = a.sh.n
	}
	return &Pin{a: a, d: d, base: base, limit: limit, apFn: fn, op: op}
}

// pin acquires a pinned reference. tc, when valid, is the causal-trace
// chain of the enclosing bulk range op (standalone Pin* calls are not
// root-sampled; ranges thread their root context through here).
func (a *Array) pin(ctx *cluster.Ctx, i int64, want uint8, op OpID, tc trace.Ctx) *Pin {
	ci, _ := a.locate(i)
	d := &a.dents[ci]
	ctx.Stats.Ops++
	var fn func(uint64, uint64) uint64
	if want == wantPinOperate {
		fn = a.op(op).Fn
	}
	if want == wantPinRead && a.seqTrig >= 0 {
		a.noteSeq(ctx, ci)
	}
	for {
		if d.delay.Load() {
			if a.telOn() {
				a.Metrics.DelayStalls.Add(1)
			}
			for d.delay.Load() {
				runtime.Gosched()
			}
		}
		d.refcnt.Add(1)
		if satisfies(d.state.Load(), want, op) {
			ctx.Stats.Hits++
			if a.telOn() {
				a.Metrics.PinFast.Add(1)
				a.notePrefetchHit(d)
			}
			return a.mkPin(d, ci, fn, op) // keep the reference: that is the pin
		}
		d.refcnt.Add(-1)
		granted, failed := a.slowPathPin(ctx, d, ci, want, op, tc)
		if failed {
			return nil // cluster failed; see ctx.Err
		}
		if granted {
			// The runtime took the reference on our behalf.
			if a.telOn() {
				a.Metrics.PinSlow.Add(1)
			}
			return a.mkPin(d, ci, fn, op)
		}
	}
}

// slowPathPin submits a pin request; on success the runtime increments
// the refcnt before completing, so no transition can intervene. It
// reports whether the pin was granted, and separately whether the
// request died with a fabric error (recorded on ctx; the caller must
// give up rather than retry).
func (a *Array) slowPathPin(ctx *cluster.Ctx, d *dentry, ci int64, want uint8, op OpID, tc trace.Ctx) (granted, failed bool) {
	if ctx.Err() != nil {
		return false, true
	}
	ctx.Stats.Misses++
	if a.telOn() {
		a.Metrics.Misses.Add(1)
	}
	vt := ctx.Clock.Now()
	if m := a.model; m != nil {
		vt += m.SlowFixed
	}
	if tc.Trace != 0 {
		tc = a.trc.Child(tc, int32(a.self()), trace.StageService, "submit", ci, ctx.Clock.Now(), vt)
	}
	w := a.getWaiter()
	*w = waiter{ctx: ctx, want: want, op: op, vt: vt, tc: tc}
	ctx.DemandStart()
	a.rtOf(ci).Submit(func(rt *cluster.Runtime) {
		a.handleLocal(rt, d, ci, w)
	})
	resp := ctx.WaitResp()
	ctx.DemandEnd()
	if resp.Err != nil {
		return false, true
	}
	ctx.Clock.AdvanceTo(resp.VT)
	return resp.Val == 1, false
}

// First returns the first global index covered by the pin.
func (p *Pin) First() int64 { return p.base }

// Limit returns one past the last global index covered by the pin.
func (p *Pin) Limit() int64 { return p.limit }

// Get reads global element i from the pinned chunk. The load is atomic
// (a plain MOV on amd64) because combiners — pin.Apply on this node or
// a shipped op at the home — CAS words concurrently with pinned reads;
// the pin removes the delay-flag/refcnt traffic, not the word access.
func (p *Pin) Get(ctx *cluster.Ctx, i int64) uint64 {
	p.check(i)
	if m := p.a.model; m != nil {
		ctx.Clock.Advance(m.PinAccess)
	}
	ctx.Stats.Hits++
	return atomic.LoadUint64(&p.d.data[i-p.base])
}

// Set writes global element i. The pin must hold RW permission.
func (p *Pin) Set(ctx *cluster.Ctx, i int64, v uint64) {
	p.check(i)
	if statePerm(p.d.state.Load()) != permRW {
		panic("core: Set through a pin without write permission")
	}
	if m := p.a.model; m != nil {
		ctx.Clock.Advance(m.PinAccess)
	}
	ctx.Stats.Hits++
	p.d.data[i-p.base] = v
}

// Apply combines operand into element i through the pin. Requires a
// PinOperate (or PinWrite on the home node, where RW implies Operate).
func (p *Pin) Apply(ctx *cluster.Ctx, i int64, operand uint64) {
	p.check(i)
	if p.apFn == nil {
		panic("core: Apply through a pin that was not PinOperate")
	}
	if m := p.a.model; m != nil {
		ctx.Clock.Advance(m.PinAccess)
	}
	ctx.Stats.Hits++
	ctx.Stats.Combines++
	addr := &p.d.data[i-p.base]
	for {
		old := atomic.LoadUint64(addr)
		if atomic.CompareAndSwapUint64(addr, old, p.apFn(old, operand)) {
			return
		}
	}
}

// Unpin releases the pinned reference; the Pin must not be used after.
func (p *Pin) Unpin(ctx *cluster.Ctx) {
	p.d.refcnt.Add(-1)
	p.d = nil
}

func (p *Pin) check(i int64) {
	if i < p.base || i >= p.limit {
		panic(fmt.Sprintf("core: index %d outside pinned chunk [%d,%d)", i, p.base, p.limit))
	}
}
