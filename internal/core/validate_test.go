package core

import (
	"testing"

	"darray/internal/cluster"
)

// validateAll asserts the protocol invariants from node 0 after a
// barrier; the other nodes wait at a second barrier so the cluster stays
// quiescent during the check.
func validateAll(t *testing.T, c *cluster.Cluster, a *Array, ctx *cluster.Ctx) {
	t.Helper()
	c.Barrier(ctx)
	if a.node.ID() == 0 {
		if err := ValidateQuiesced(a.Instances()); err != nil {
			t.Errorf("coherence invariant violated: %v", err)
		}
	}
	c.Barrier(ctx)
}

func TestInvariantsAfterEachProtocolState(t *testing.T) {
	c := tc(t, 3)
	c.Run(func(n *cluster.Node) {
		a := New(n, 3*64)
		add := a.RegisterOp(OpAddU64)
		ctx := n.NewCtx(0)

		// Fresh array: everything Unshared.
		validateAll(t, c, a, ctx)

		// All nodes read chunk 0 → Shared.
		_ = a.Get(ctx, 0)
		validateAll(t, c, a, ctx)

		// Node 2 writes chunk 0 → Dirty at node 2.
		if n.ID() == 2 {
			a.Set(ctx, 0, 1)
		}
		validateAll(t, c, a, ctx)

		// Everyone operates on chunk 1 → Operated with all nodes.
		a.Apply(ctx, add, 64, 1)
		validateAll(t, c, a, ctx)

		// A read collapses chunk 1 → Unshared (then Shared as all read).
		_ = a.Get(ctx, 64)
		validateAll(t, c, a, ctx)
	})
}

func TestInvariantsUnderStress(t *testing.T) {
	c := tc(t, 3, func(cfg *cluster.Config) { cfg.CacheChunks = 8 })
	c.Run(func(n *cluster.Node) {
		a := New(n, 3*64*4)
		add := a.RegisterOp(OpAddU64)
		ctx := n.NewCtx(0)
		c.Barrier(ctx)
		for round := 0; round < 4; round++ {
			for k := 0; k < 400; k++ {
				i := int64(ctx.Rng.Intn(int(a.Len())))
				switch ctx.Rng.Intn(4) {
				case 0:
					a.Get(ctx, i)
				case 1:
					a.WLock(ctx, i)
					a.Set(ctx, i, uint64(k))
					a.Unlock(ctx, i)
				case 2:
					a.Apply(ctx, add, i, 1)
				case 3:
					p := a.PinRead(ctx, i)
					p.Get(ctx, i)
					p.Unpin(ctx)
				}
			}
			validateAll(t, c, a, ctx)
		}
	})
}

func TestValidateRejectsMixedArrays(t *testing.T) {
	c := tc(t, 2)
	c.Run(func(n *cluster.Node) {
		a := New(n, 64)
		b := New(n, 64)
		if n.ID() == 0 {
			mixed := []*Array{a.Instances()[0], b.Instances()[1]}
			if err := ValidateQuiesced(mixed); err == nil {
				t.Error("mixed-array validation should fail")
			}
			if err := ValidateQuiesced(nil); err == nil {
				t.Error("empty validation should fail")
			}
		}
	})
}
