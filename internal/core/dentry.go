package core

import (
	"sync/atomic"

	"darray/internal/buf"
	"darray/internal/cluster"
	"darray/internal/trace"
)

// Local access-permission states, stored in the low bits of dentry.state.
// For Operated, the active operator id is packed into the high bits so
// the Apply fast path reads permission and operator with one atomic load.
const (
	permInvalid  uint32 = 0
	permRead     uint32 = 1
	permRW       uint32 = 2
	permOperated uint32 = 3

	permMask uint32 = 0x3
	opShift         = 8
)

func packState(perm uint32, op OpID) uint32 { return perm | uint32(op)<<opShift }
func statePerm(s uint32) uint32             { return s & permMask }
func stateOp(s uint32) OpID                 { return OpID(s >> opShift) }

// Home-directory states (paper Table 1), meaningful only at the chunk's
// home node and only touched by its owning runtime goroutine.
const (
	dirUnshared uint8 = iota
	dirShared
	dirDirty
	dirOperated
)

// What a slow-path request needs. wantShip is a shipped Operate: the
// home applies the operand(s) against the authoritative backing instead
// of granting the requester any permission, so it never appears in a
// cache-side issueRequest and never pins.
const (
	wantRead uint8 = iota
	wantWrite
	wantOperate
	wantPinRead
	wantPinWrite
	wantPinOperate
	wantShip
)

func wantPerm(w uint8) uint32 {
	switch w {
	case wantRead, wantPinRead:
		return permRead
	case wantWrite, wantPinWrite:
		return permRW
	default:
		return permOperated
	}
}

func isPin(w uint8) bool { return w >= wantPinRead && w <= wantPinOperate }

// baseWant maps pin variants to their underlying need; the directory
// state machine only distinguishes read/write/operate, pin-ness matters
// solely at completion time (the runtime takes the reference).
func baseWant(w uint8) uint8 {
	switch w {
	case wantPinRead:
		return wantRead
	case wantPinWrite:
		return wantWrite
	case wantPinOperate:
		return wantOperate
	}
	return w
}

// satisfies reports whether local state s fulfils want w with operator op.
// RW satisfies everything on the home node (an Unshared chunk may be
// read, written, and operated directly).
func satisfies(s uint32, w uint8, op OpID) bool {
	p := statePerm(s)
	switch wantPerm(w) {
	case permRead:
		return p == permRead || p == permRW
	case permRW:
		return p == permRW
	default:
		return p == permRW || (p == permOperated && stateOp(s) == op)
	}
}

// waiter is one blocked slow-path request from an application thread.
// tok, when non-nil, receives the completion instead of ctx's built-in
// response channel: the bulk-transfer pipeline keeps several requests in
// flight per thread, one token each.
type waiter struct {
	ctx  *cluster.Ctx
	tok  *cluster.Token
	want uint8
	op   OpID
	vt   int64 // requester's virtual time at submission

	// tc is the causal-trace chain of the op this waiter blocks (zero
	// when untraced). linked marks the waiter whose chain rides an
	// outbound protocol request: its wait is decomposed by the
	// transaction's own spans, so respond skips the catch-all
	// chunk-wait span it emits for piggybacked and deferred waiters.
	tc     trace.Ctx
	linked bool
}

// dentry is one directory entry: the per-node metadata for one global
// chunk. The three atomic fields implement the lock-free data access
// path of paper Figure 4/5; everything below them is owned by the one
// runtime goroutine responsible for this chunk on this node.
type dentry struct {
	state  atomic.Uint32
	delay  atomic.Bool
	refcnt atomic.Int64

	// pf marks an outstanding (or unconsumed) speculative fill: set when
	// a prefetch request is issued, cleared by the first demand access
	// (a prefetch hit) or by eviction/invalidation (a wasted prefetch).
	pf atomic.Bool

	ci   int64    // this dentry's global chunk index
	data []uint64 // resident words: home subarray slice or cache line

	// Runtime-owned (single runtime goroutine per chunk per node).
	busy    bool                                               // a protocol transition (or eviction) is in flight
	pending bool                                               // cache side: a request to home is outstanding
	tvt     int64                                              // virtual time the transition has reached
	retrans int64                                              // go-back-N delay of the grant being installed (set around completeWaiters)
	waiters []*waiter                                          // local slow-path waiters
	defrd   []deferredReq                                      // requests deferred while busy
	line    *cacheLine                                         // backing cache line (nil at home / not resident)
	onWB    func(rt *cluster.Runtime, data []uint64, vt int64) // recall continuation
	onAcks  func(rt *cluster.Runtime)                          // invalidation-ack continuation
	acks    int
	opAcks  int
	onOpAll func(rt *cluster.Runtime) // operand-recall continuation

	// tctx is the causal-trace chain of the directory transaction in
	// flight (home side; zero when the requester was untraced), and
	// fanVT the virtual time its invalidation/op-recall fan-out began —
	// together they let the ack counters emit one fanout span covering
	// the whole multicast wait.
	tctx  trace.Ctx
	fanVT int64

	// Home-directory fields (valid only at the home node).
	dstate  uint8
	sharers uint64 // bitmask of non-home nodes with a Shared copy
	owner   int32  // node holding the chunk Dirty (when dstate==dirDirty)
	opID    OpID   // active operator (when dstate==dirOperated)
	opNodes uint64 // bitmask of non-home nodes combining operands

	// Function-shipping state. est is the home-side contention estimator
	// (runtime-owned, like the directory fields above); shipQ is the
	// cache side's FIFO of in-flight shipped ops — per-(pair,chunk)
	// ordering matches each msgShipReply to the head waiter. ship is the
	// cache side's last mode hint from home (auto mode only), read on the
	// Apply miss path.
	est   shipEstimator
	shipQ []*waiter
	ship  atomic.Bool
}

type deferredReq struct {
	from int   // requesting node (== home id for local requests)
	want uint8 // wantRead/wantWrite/wantOperate/wantShip (pin variants local only)
	op   OpID
	vt   int64
	w    *waiter   // non-nil for local requests
	tc   trace.Ctx // causal-trace chain carried across the deferral

	// Shipped-Operate operands carried across the deferral: the element
	// offset within the chunk, a single operand (val) or a batch (data,
	// with pay owning its pooled backing).
	idx  int64
	val  uint64
	data []uint64
	pay  *buf.Ref
}
