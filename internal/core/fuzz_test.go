package core

import (
	"fmt"
	"sync"
	"testing"

	"darray/internal/cluster"
	"darray/internal/vtime"
)

// TestProtocolFuzzSeeds drives randomized mixed workloads across many
// seeds and cluster shapes, checking an oracle and the cross-node
// coherence invariants after every phase. The long matrix is trimmed
// under -short.
func TestProtocolFuzzSeeds(t *testing.T) {
	type shape struct {
		nodes, runtimes, cache int
	}
	shapes := []shape{
		{2, 2, 8},
		{3, 1, 6},
		{4, 3, 5},
	}
	seeds := []int64{1, 2, 3, 4, 5, 6}
	if testing.Short() {
		shapes = shapes[:1]
		seeds = seeds[:2]
	}
	for _, sh := range shapes {
		for _, seed := range seeds {
			sh, seed := sh, seed
			t.Run(fmt.Sprintf("n%d_r%d_c%d_s%d", sh.nodes, sh.runtimes, sh.cache, seed),
				func(t *testing.T) {
					fuzzOnce(t, sh.nodes, sh.runtimes, sh.cache, seed, "")
				})
		}
	}
}

// TestProtocolFuzzShipModes reruns the mixed-workload fuzz with function
// shipping forced on and in adaptive mode (with a cost model attached so
// the estimator is live and mode flips interleave with in-flight locks,
// pins, and ApplyRange batches). The oracle and invariant checks are
// identical to the baseline matrix — shipping must be invisible.
func TestProtocolFuzzShipModes(t *testing.T) {
	type shape struct {
		nodes, runtimes, cache int
	}
	shapes := []shape{
		{3, 2, 6},
		{4, 2, 5},
	}
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		shapes = shapes[:1]
		seeds = seeds[:1]
	}
	for _, ship := range []string{"on", "auto"} {
		for _, sh := range shapes {
			for _, seed := range seeds {
				ship, sh, seed := ship, sh, seed
				t.Run(fmt.Sprintf("%s_n%d_r%d_c%d_s%d", ship, sh.nodes, sh.runtimes, sh.cache, seed),
					func(t *testing.T) {
						fuzzOnce(t, sh.nodes, sh.runtimes, sh.cache, seed, ship)
					})
			}
		}
	}
}

// fuzzOnce runs one randomized workload. ship selects the
// function-shipping mode; non-empty values also attach the cost model so
// the adaptive estimator runs ("" keeps the modelless baseline cluster).
func fuzzOnce(t *testing.T, nodes, runtimes, cache int, seed int64, ship string) {
	cfg := cluster.Config{
		Nodes: nodes, RuntimeThreads: runtimes,
		ChunkWords: 32, CacheChunks: cache,
	}
	if ship != "" {
		cfg.Ship = ship
		cfg.Model = vtime.Default()
	}
	c := cluster.New(cfg)
	defer c.Close()
	const elems = 32 * 6
	oracle := make([]uint64, elems)
	var mu sync.Mutex

	c.Run(func(n *cluster.Node) {
		a := New(n, elems)
		add := a.RegisterOp(OpAddU64)
		max := a.RegisterOp(OpMaxU64)
		root := n.NewCtx(0)
		rng := root.Rng
		rng.Seed(seed*1000 + int64(n.ID()))
		c.Barrier(root)

		for phase := 0; phase < 3; phase++ {
			for k := 0; k < 250; k++ {
				i := int64(rng.Intn(elems))
				// Unsynchronized Apply deliberately bypasses locks (the
				// whole point of Operate), so mixing it with locked
				// read-modify-write on the same element is an application
				// race. Partition the space: even elements take combining
				// updates, odd elements take locked updates.
				iApply := i &^ 1
				iLock := i | 1
				switch rng.Intn(7) {
				case 0:
					_ = a.Get(root, i)
				case 1:
					a.Apply(root, add, iApply, 1)
					mu.Lock()
					oracle[iApply]++
					mu.Unlock()
				case 2:
					a.WLock(root, iLock)
					a.Set(root, iLock, a.Get(root, iLock)+2)
					a.Unlock(root, iLock)
					mu.Lock()
					oracle[iLock] += 2
					mu.Unlock()
				case 3:
					p := a.PinRead(root, i)
					_ = p.Get(root, i)
					p.Unpin(root)
				case 4:
					// Max with a value never exceeding the additive floor
					// keeps the oracle exact: max(x, 0) == x.
					a.Apply(root, max, iApply, 0)
				case 5:
					a.RLock(root, i)
					_ = a.Get(root, i)
					a.Unlock(root, i)
				case 6:
					// Bulk combining across a chunk boundary. Odd elements
					// are the locked partition, so they get the additive
					// identity — ApplyRange must treat 0 as a no-op there.
					const span = 48
					lo := i % (elems - span)
					vals := make([]uint64, span)
					mu.Lock()
					for j := range vals {
						if (lo+int64(j))&1 == 0 {
							vals[j] = 1
							oracle[lo+int64(j)]++
						}
					}
					mu.Unlock()
					a.ApplyRange(root, add, lo, vals)
				}
			}
			c.Barrier(root)
			for i := int64(0); i < elems; i++ {
				got := a.Get(root, i)
				mu.Lock()
				want := oracle[i]
				mu.Unlock()
				if got != want {
					t.Errorf("seed %d phase %d: a[%d] = %d, want %d", seed, phase, i, got, want)
					break
				}
			}
			c.Barrier(root)
			if n.ID() == 0 {
				if err := ValidateQuiesced(a.Instances()); err != nil {
					t.Errorf("seed %d phase %d: %v", seed, phase, err)
				}
			}
			c.Barrier(root)
		}
	})
}
