package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"darray/internal/trace"
)

// TraceEvent is one recorded protocol step on a node.
type TraceEvent struct {
	Seq   uint64
	Node  int
	Chunk int64
	Kind  string // message kind or local event name
	From  int    // requesting/sending node (-1 for local events)
	VT    int64  // virtual time the event was serviced at

	// Trace/Span link the event into the causal span tracer's id space
	// when the op that caused it was sampled (zero otherwise), so a flat
	// MergedTrace line can be cross-referenced against a span tree.
	Trace uint64
	Span  uint64
}

// String renders the event for logs.
func (e TraceEvent) String() string {
	s := fmt.Sprintf("#%d n%d chunk %d %s from=%d vt=%d", e.Seq, e.Node, e.Chunk, e.Kind, e.From, e.VT)
	if e.Trace != 0 {
		s += fmt.Sprintf(" trace=%x span=%x", e.Trace, e.Span)
	}
	return s
}

// tracer is a bounded ring of protocol events, disabled by default. It
// exists for debugging coherence issues: enable it on the handles you
// suspect, reproduce, then dump.
type tracer struct {
	on   atomic.Bool
	mu   sync.Mutex
	seq  uint64
	ring []TraceEvent
	pos  int
	full bool
}

// EnableTrace starts recording up to depth protocol events on this
// node's handle (older events are overwritten).
func (a *Array) EnableTrace(depth int) {
	if depth <= 0 {
		depth = 1024
	}
	a.tr.mu.Lock()
	a.tr.ring = make([]TraceEvent, depth)
	a.tr.pos, a.tr.full = 0, false
	a.tr.seq = 0 // fresh recording: sequence numbers restart at 1
	a.tr.mu.Unlock()
	a.tr.on.Store(true)
}

// DisableTrace stops recording.
func (a *Array) DisableTrace() { a.tr.on.Store(false) }

// TraceEvents returns the recorded events, oldest first.
func (a *Array) TraceEvents() []TraceEvent {
	a.tr.mu.Lock()
	defer a.tr.mu.Unlock()
	if !a.tr.full {
		out := make([]TraceEvent, a.tr.pos)
		copy(out, a.tr.ring[:a.tr.pos])
		return out
	}
	out := make([]TraceEvent, len(a.tr.ring))
	n := copy(out, a.tr.ring[a.tr.pos:])
	copy(out[n:], a.tr.ring[:a.tr.pos])
	return out
}

// trace records one event when tracing is on (a single atomic load when
// off, so the protocol handlers can call it unconditionally).
func (a *Array) trace(kind string, ci int64, from int, vt int64, tc trace.Ctx) {
	if !a.tr.on.Load() {
		return
	}
	a.tr.mu.Lock()
	a.tr.seq++
	ev := TraceEvent{Seq: a.tr.seq, Node: a.node.ID(), Chunk: ci, Kind: kind, From: from, VT: vt,
		Trace: tc.Trace, Span: tc.Span}
	if len(a.tr.ring) == 0 {
		a.tr.mu.Unlock()
		return
	}
	a.tr.ring[a.tr.pos] = ev
	a.tr.pos++
	if a.tr.pos == len(a.tr.ring) {
		a.tr.pos = 0
		a.tr.full = true
	}
	a.tr.mu.Unlock()
}

// MergedTrace interleaves the recorded events of several node handles
// into one cluster-wide timeline ordered by virtual time (ties broken by
// node, then per-node sequence). Because virtual time is the simulated
// causal order, the merged view reads as "what the cluster did", not
// "what each node separately remembers" — the usual first step when
// debugging a cross-node coherence interaction.
func MergedTrace(arrays ...*Array) []TraceEvent {
	var out []TraceEvent
	for _, a := range arrays {
		if a == nil {
			continue
		}
		out = append(out, a.TraceEvents()...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].VT != out[j].VT {
			return out[i].VT < out[j].VT
		}
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// kindName maps protocol message kinds to stable names for traces.
func kindName(k uint8) string {
	switch k {
	case msgReadReq:
		return "read-req"
	case msgWriteReq:
		return "write-req"
	case msgOperateReq:
		return "operate-req"
	case msgDataResp:
		return "data-resp"
	case msgOpGrant:
		return "op-grant"
	case msgInvalidate:
		return "invalidate"
	case msgInvAck:
		return "inv-ack"
	case msgDowngrade:
		return "downgrade"
	case msgRecall:
		return "recall"
	case msgOpRecall:
		return "op-recall"
	case msgWBData:
		return "writeback"
	case msgOpFlush:
		return "op-flush"
	case msgLockReq:
		return "lock-req"
	case msgLockGrant:
		return "lock-grant"
	case msgUnlock:
		return "unlock"
	case msgShipOp:
		return "ship-op"
	case msgShipReply:
		return "ship-reply"
	}
	return fmt.Sprintf("kind-%d", k)
}
