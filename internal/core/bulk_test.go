package core

import (
	"testing"
	"testing/quick"

	"darray/internal/cluster"
)

func TestGetSetRange(t *testing.T) {
	c := tc(t, 2)
	c.Run(func(n *cluster.Node) {
		a := New(n, 2*64)
		ctx := n.NewCtx(0)
		if n.ID() == 0 {
			src := make([]uint64, 100)
			for i := range src {
				src[i] = uint64(1000 + i)
			}
			a.SetRange(ctx, 10, src) // spans chunk 0 into chunk 1 (remote)
		}
		c.Barrier(ctx)
		if n.ID() == 1 {
			dst := make([]uint64, 100)
			a.GetRange(ctx, 10, dst)
			for i, v := range dst {
				if v != uint64(1000+i) {
					t.Errorf("dst[%d] = %d, want %d", i, v, 1000+i)
					return
				}
			}
		}
		c.Barrier(ctx)
	})
}

func TestApplyRangeAcrossNodes(t *testing.T) {
	c := tc(t, 3)
	c.Run(func(n *cluster.Node) {
		a := New(n, 3*64)
		add := a.RegisterOp(OpAddU64)
		ctx := n.NewCtx(0)
		c.Barrier(ctx)
		src := make([]uint64, 150)
		for i := range src {
			src[i] = uint64(i)
		}
		a.ApplyRange(ctx, add, 20, src)
		c.Barrier(ctx)
		for i := int64(0); i < 150; i++ {
			if got := a.Get(ctx, 20+i); got != 3*uint64(i) {
				t.Errorf("a[%d] = %d, want %d", 20+i, got, 3*i)
				return
			}
		}
		c.Barrier(ctx)
	})
}

func TestReduce(t *testing.T) {
	c := tc(t, 2)
	c.Run(func(n *cluster.Node) {
		a := New(n, 130) // partial final chunk
		add := a.RegisterOp(OpAddU64)
		max := a.RegisterOp(OpMaxU64)
		ctx := n.NewCtx(0)
		lo, hi := a.LocalRange()
		for i := lo; i < hi; i++ {
			a.Set(ctx, i, uint64(i))
		}
		c.Barrier(ctx)
		if got := a.Reduce(ctx, add); got != 130*129/2 {
			t.Errorf("sum = %d, want %d", got, 130*129/2)
		}
		if got := a.Reduce(ctx, max); got != 129 {
			t.Errorf("max = %d, want 129", got)
		}
		c.Barrier(ctx)
	})
}

func TestBitwiseOps(t *testing.T) {
	c := tc(t, 2)
	c.Run(func(n *cluster.Node) {
		a := New(n, 2*64)
		or := a.RegisterOp(OpOrU64)
		and := a.RegisterOp(OpAndU64)
		xor := a.RegisterOp(OpXorU64)
		ctx := n.NewCtx(0)
		if a.HomeOf(1) == n.ID() {
			a.Set(ctx, 1, 0xFF)
		}
		c.Barrier(ctx)
		a.Apply(ctx, or, 0, uint64(1)<<uint(n.ID()))
		a.Apply(ctx, and, 1, 0xF0|uint64(n.ID()))
		a.Apply(ctx, xor, 2, 0b1010)
		c.Barrier(ctx)
		if got := a.Get(ctx, 0); got != 0b11 {
			t.Errorf("or result = %b, want 11", got)
		}
		if got := a.Get(ctx, 1); got != 0xF0 {
			t.Errorf("and result = %x, want f0", got)
		}
		if got := a.Get(ctx, 2); got != 0 { // xor twice cancels
			t.Errorf("xor result = %b, want 0", got)
		}
		c.Barrier(ctx)
	})
}

// Property: SetRange+GetRange round-trips arbitrary spans.
func TestRangeRoundTripQuick(t *testing.T) {
	c := tc(t, 2)
	c.Run(func(n *cluster.Node) {
		a := New(n, 2*64)
		ctx := n.NewCtx(0)
		c.Barrier(ctx)
		if n.ID() == 0 {
			f := func(start uint8, vals []uint64) bool {
				i := int64(start) % 64
				if len(vals) > 60 {
					vals = vals[:60]
				}
				if len(vals) == 0 {
					return true
				}
				a.SetRange(ctx, i, vals)
				dst := make([]uint64, len(vals))
				a.GetRange(ctx, i, dst)
				for k := range vals {
					if dst[k] != vals[k] {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
				t.Error(err)
			}
		}
		c.Barrier(ctx)
	})
}

// TestBulkRangeManyChunks streams SetRange/GetRange through the
// pipelined bulk path across 24 chunks and two node boundaries, with a
// serial (pipeline and detector off) array as a control: both spellings
// must observe identical data.
func TestBulkRangeManyChunks(t *testing.T) {
	c := tc(t, 3, func(cfg *cluster.Config) { cfg.CacheChunks = 32 })
	c.Run(func(n *cluster.Node) {
		const words = 3 * 64 * 8 // 8 chunks per node
		a := New(n, words)
		s := New(n, words, Options{Pipeline: -1, NoSeqDetect: true})
		ctx := n.NewCtx(0)
		c.Barrier(ctx)
		if n.ID() == 0 {
			src := make([]uint64, words)
			for i := range src {
				src[i] = uint64(7*i + 1)
			}
			a.SetRange(ctx, 0, src) // one call spanning every chunk
			s.SetRange(ctx, 0, src)
		}
		c.Barrier(ctx)
		got := make([]uint64, words)
		a.GetRange(ctx, 0, got)
		ser := make([]uint64, words)
		s.GetRange(ctx, 0, ser)
		for i := range got {
			if got[i] != uint64(7*i+1) || ser[i] != got[i] {
				t.Errorf("node %d: [%d] pipelined=%d serial=%d, want %d",
					n.ID(), i, got[i], ser[i], 7*i+1)
				return
			}
		}
		c.Barrier(ctx)
	})
}

// TestApplyRangeManyChunksAllNodes drives a commutative ApplyRange from
// every node over the full 24-chunk array: ownership of every chunk
// migrates while the pipeline keeps several fetches in flight.
func TestApplyRangeManyChunksAllNodes(t *testing.T) {
	c := tc(t, 3, func(cfg *cluster.Config) { cfg.CacheChunks = 32 })
	c.Run(func(n *cluster.Node) {
		const words = 3 * 64 * 8
		a := New(n, words)
		add := a.RegisterOp(OpAddU64)
		ctx := n.NewCtx(0)
		c.Barrier(ctx)
		vals := make([]uint64, words)
		for i := range vals {
			vals[i] = uint64(i%97 + 1)
		}
		a.ApplyRange(ctx, add, 0, vals)
		c.Barrier(ctx)
		if n.ID() == 0 {
			for i := int64(0); i < words; i++ {
				want := 3 * uint64(i%97+1)
				if got := a.Get(ctx, i); got != want {
					t.Errorf("a[%d] = %d, want %d", i, got, want)
					return
				}
			}
		}
		c.Barrier(ctx)
	})
}

func TestMetricsCounters(t *testing.T) {
	c := tc(t, 2, func(cfg *cluster.Config) { cfg.CacheChunks = 4 })
	c.Run(func(n *cluster.Node) {
		a := New(n, 2*64*32)
		ctx := n.NewCtx(0)
		c.Barrier(ctx)
		// Read far past the cache capacity to force fills and evictions.
		lo, hi := a.LocalRange()
		olo, ohi := int64(0), lo
		if n.ID() == 0 {
			olo, ohi = hi, a.Len()
		}
		for i := olo; i < ohi; i++ {
			a.Get(ctx, i)
		}
		c.Barrier(ctx)
		if a.Metrics.Fills.Load() == 0 {
			t.Error("no fills recorded")
		}
		if a.Metrics.Evictions.Load() == 0 {
			t.Error("no evictions recorded")
		}
		if a.Metrics.Prefetches.Load() == 0 {
			t.Error("no prefetches recorded for a sequential scan")
		}
	})
}
