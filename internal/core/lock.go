package core

import (
	"darray/internal/cluster"
	"darray/internal/fabric"
	"darray/internal/trace"
)

// Distributed reader/writer locks with element granularity (paper Fig. 3
// lines 5–7). Each element's lock lives at its home node, managed by the
// runtime goroutine that owns the element's chunk; requests and grants
// travel as protocol messages. Lock hold times chain through the lock's
// virtual free-time, which is what makes exclusive WLock+Read+Write
// serialize in the Fig. 14 experiment while Operate does not.

type lockState struct {
	writerHeld bool
	readers    int
	freeVT     int64 // virtual time the lock was last released
	queue      []lockReq
}

type lockReq struct {
	from   int
	writer bool
	w      *waiter // non-nil for local requests
	vt     int64
	tc     trace.Ctx // requester's causal-trace chain (zero when untraced)
}

// RLock acquires element i's lock in shared mode, blocking until granted.
func (a *Array) RLock(ctx *cluster.Ctx, i int64) { a.lock(ctx, i, false) }

// WLock acquires element i's lock exclusively, blocking until granted.
func (a *Array) WLock(ctx *cluster.Ctx, i int64) { a.lock(ctx, i, true) }

func (a *Array) lock(ctx *cluster.Ctx, i int64, writer bool) {
	if ctx.Err() != nil {
		return // degraded: the lock is not acquired
	}
	ci, _ := a.locate(i)
	ctx.Stats.LockOps++
	ctx.Stats.Ops++
	home := a.homeOfChunk(ci)
	rt := a.rtOf(ci)
	var tc trace.Ctx
	var t0 int64
	if a.trc != nil {
		tc, t0 = a.rootSpan(ctx)
	}
	w := &waiter{ctx: ctx, vt: ctx.Clock.Now()}
	if m := a.model; m != nil {
		w.vt += m.SlowFixed
	}
	if tc.Trace != 0 {
		w.tc = a.trc.Child(tc, int32(a.self()), trace.StageService, "submit", ci, ctx.Clock.Now(), w.vt)
	}
	rt.Submit(func(rt *cluster.Runtime) {
		start, svt := a.charge2(rt, w.vt)
		wtc := w.tc
		if wtc.Valid() && a.traceOn() {
			wtc = a.child(wtc, a.self(), trace.StageQueue, "rt-queue", ci, w.vt, start)
			wtc = a.child(wtc, a.self(), trace.StageService, "lock-req", ci, start, svt)
		}
		if home == a.self() {
			a.lockRequest(rt, i, lockReq{from: home, writer: writer, w: w, vt: svt, tc: wtc})
			return
		}
		s := a.rstate(rt)
		if s.lockWaiters == nil {
			s.lockWaiters = make(map[int64][]*waiter)
		}
		s.lockWaiters[i] = append(s.lockWaiters[i], w)
		a.send(&fMsg{to: home, kind: msgLockReq, chunk: ci, idx: i,
			flag: writer, vt: svt, tc: wtc})
	})
	resp := ctx.WaitResp()
	if resp.Err != nil {
		return // cluster failed; the lock is not held (see ctx.Err)
	}
	ctx.Clock.AdvanceTo(resp.VT)
	if tc.Trace != 0 {
		name := "RLock"
		if writer {
			name = "WLock"
		}
		a.endRoot(ctx, tc, name, ci, t0)
	}
}

// Unlock releases element i's lock (reader or writer — the home knows
// which mode is held). The release is asynchronous, like a one-sided
// RDMA write of the lock word.
func (a *Array) Unlock(ctx *cluster.Ctx, i int64) {
	ci, _ := a.locate(i)
	ctx.Stats.LockOps++
	ctx.Stats.Ops++
	home := a.homeOfChunk(ci)
	rt := a.rtOf(ci)
	vt := ctx.Clock.Now()
	if m := a.model; m != nil {
		ctx.Clock.Advance(m.SendCost())
	}
	rt.Submit(func(rt *cluster.Runtime) {
		if home == a.self() {
			a.unlockRequest(rt, i, vt)
			return
		}
		a.send(&fMsg{to: home, kind: msgUnlock, chunk: ci, idx: i, vt: vt})
	})
}

// handleLockMsg processes lock traffic on the home (or requester, for
// grants) runtime goroutine.
func (a *Array) handleLockMsg(rt *cluster.Runtime, m *fabric.Message) {
	start, svt := a.charge2(rt, m.VT)
	tc := a.msgSpans(m, start, svt)
	switch m.Kind {
	case msgLockReq:
		a.lockRequest(rt, m.Idx, lockReq{from: m.From, writer: m.Flag, vt: svt, tc: tc})
	case msgUnlock:
		a.unlockRequest(rt, m.Idx, svt)
	case msgLockGrant:
		s := a.rstate(rt)
		q := s.lockWaiters[m.Idx]
		if len(q) == 0 {
			panic("core: lock grant with no local waiter")
		}
		w := q[0]
		if len(q) == 1 {
			delete(s.lockWaiters, m.Idx)
		} else {
			s.lockWaiters[m.Idx] = q[1:]
		}
		w.ctx.Complete(cluster.Resp{VT: svt, Val: 1})
	}
}

func (a *Array) lockRequest(rt *cluster.Runtime, idx int64, r lockReq) {
	s := a.rstate(rt)
	ls := s.locks[idx]
	if ls == nil {
		ls = &lockState{}
		s.locks[idx] = ls
	}
	ls.queue = append(ls.queue, r)
	a.tryGrant(rt, idx, ls)
}

func (a *Array) unlockRequest(rt *cluster.Runtime, idx int64, vt int64) {
	s := a.rstate(rt)
	ls := s.locks[idx]
	if ls == nil || (!ls.writerHeld && ls.readers == 0) {
		if a.node.Cluster().Failed() {
			// Degraded mode: a thread whose lock acquisition died with a
			// fabric error may still pair it with an Unlock on the way
			// out. Tolerate the mismatch instead of crashing the report.
			return
		}
		panic("core: unlock of a lock not held")
	}
	if ls.writerHeld {
		ls.writerHeld = false
	} else {
		ls.readers--
	}
	ls.freeVT = maxi64(ls.freeVT, vt)
	a.tryGrant(rt, idx, ls)
	if !ls.writerHeld && ls.readers == 0 && len(ls.queue) == 0 {
		delete(s.locks, idx) // keep the table sparse
	}
}

func (a *Array) tryGrant(rt *cluster.Runtime, idx int64, ls *lockState) {
	mdl := a.model
	for len(ls.queue) > 0 {
		h := ls.queue[0]
		if ls.writerHeld || (h.writer && ls.readers > 0) {
			return
		}
		ls.queue = ls.queue[1:]
		if h.writer {
			ls.writerHeld = true
		} else {
			ls.readers++
		}
		base := maxi64(h.vt, ls.freeVT)
		gvt := base
		if mdl != nil {
			gvt += mdl.LockService
		}
		tc := h.tc
		if tc.Valid() {
			if ls.freeVT > h.vt {
				// Contended: the request waited for the holder's release.
				tc = a.child(tc, a.self(), trace.StageQueue, "lock-wait", idx, h.vt, ls.freeVT)
			}
			tc = a.child(tc, a.self(), trace.StageService, "lock-grant", idx, base, gvt)
		}
		if h.w != nil {
			h.w.ctx.Complete(cluster.Resp{VT: gvt, Val: 1})
		} else {
			ci := idx / a.sh.chunkWords
			a.send(&fMsg{to: h.from, kind: msgLockGrant, chunk: ci, idx: idx, vt: gvt, tc: tc})
		}
		if h.writer {
			return
		}
	}
	if len(ls.queue) == 0 && !ls.writerHeld && ls.readers == 0 {
		s := a.rstate(rt)
		delete(s.locks, idx)
	}
}
