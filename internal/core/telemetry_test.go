package core

import (
	"encoding/json"
	"strings"
	"testing"

	"darray/internal/cluster"
	"darray/internal/telemetry"
)

func withMetrics(cfg *cluster.Config) { cfg.Metrics = true }

// TestTransitionCounts drives a known access script through a 2-node
// cluster and checks that exactly the expected Figure-5 edges are
// counted: a remote read takes the home Unshared->Shared, the reader's
// write upgrade takes it Shared->Dirty, and the home's own read recalls
// the chunk, Dirty->Unshared.
func TestTransitionCounts(t *testing.T) {
	c := tc(t, 2, withMetrics)
	c.Run(func(n *cluster.Node) {
		a := New(n, 64) // one chunk, homed on node 0
		ctx := n.NewCtx(0)
		if n.ID() == 0 {
			a.Set(ctx, 0, 7) // home write: Unshared already grants RW
		}
		c.Barrier(ctx)
		if n.ID() == 1 {
			if got := a.Get(ctx, 0); got != 7 { // U -> S
				t.Errorf("remote read = %d, want 7", got)
			}
		}
		c.Barrier(ctx)
		if n.ID() == 1 {
			a.Set(ctx, 0, 8) // S -> D
		}
		c.Barrier(ctx)
		if n.ID() == 0 {
			if got := a.Get(ctx, 0); got != 8 { // D -> U (recall)
				t.Errorf("home read after remote write = %d, want 8", got)
			}
		}
		c.Barrier(ctx)
	})

	snap := c.Telemetry().Snapshot()
	for _, want := range []struct {
		name string
		n    int64
	}{
		{"core/coherence/" + TransUnsharedToShared.String(), 1},
		{"core/coherence/" + TransSharedToDirty.String(), 1},
		{"core/coherence/" + TransDirtyToUnshared.String(), 1},
		{"core/coherence/" + TransUnsharedToDirty.String(), 0},
	} {
		if got := snap.Total(want.name); got != want.n {
			t.Errorf("%s = %d, want %d", want.name, got, want.n)
		}
	}
	if hits := snap.Total("core/cache/hits"); hits == 0 {
		t.Error("expected nonzero cache hits")
	}
	if misses := snap.Total("core/cache/misses"); misses == 0 {
		t.Error("expected nonzero cache misses")
	}
	if recalls := snap.Total("core/coherence/recalls"); recalls != 1 {
		t.Errorf("recalls = %d, want 1", recalls)
	}
}

// TestFastPathGating checks the disabled-by-default contract: with
// telemetry off, the fast-path counters stay zero (the per-thread
// ctx.Stats still count) — the access paths only pay the enable check.
func TestFastPathGating(t *testing.T) {
	c := tc(t, 1)
	var arr *Array
	c.Run(func(n *cluster.Node) {
		arr = New(n, 128)
		ctx := n.NewCtx(0)
		for i := int64(0); i < 128; i++ {
			arr.Set(ctx, i, uint64(i))
		}
		if ctx.Stats.Hits == 0 {
			t.Error("ctx.Stats.Hits should count regardless of telemetry")
		}
	})
	if got := arr.Metrics.Hits.Load(); got != 0 {
		t.Errorf("telemetry disabled but Metrics.Hits = %d", got)
	}

	c2 := tc(t, 1, withMetrics)
	c2.Run(func(n *cluster.Node) {
		a := New(n, 128)
		ctx := n.NewCtx(0)
		for i := int64(0); i < 128; i++ {
			a.Set(ctx, i, uint64(i))
		}
		if got := a.Metrics.Hits.Load(); got == 0 {
			t.Error("telemetry enabled but Metrics.Hits = 0")
		}
	})
}

// TestOperateMergeSplit checks that recall-driven and eviction-driven
// operand merges are told apart at the home.
func TestOperateMergeSplit(t *testing.T) {
	c := tc(t, 2, withMetrics)
	c.Run(func(n *cluster.Node) {
		a := New(n, 64)
		op := a.RegisterOp(Op{Identity: 0, Fn: func(a, b uint64) uint64 { return a + b }})
		ctx := n.NewCtx(0)
		a.Apply(ctx, op, 0, uint64(n.ID()+1)) // both nodes combine
		c.Barrier(ctx)
		if n.ID() == 0 {
			if got := a.Get(ctx, 0); got != 3 { // collapse: recalls node 1's buffer
				t.Errorf("merged value = %d, want 3", got)
			}
		}
		c.Barrier(ctx)
	})
	snap := c.Telemetry().Snapshot()
	if got := snap.Total("core/operate/merges_recalled"); got != 1 {
		t.Errorf("merges_recalled = %d, want 1", got)
	}
	if got := snap.Total("core/operate/merges"); got != 1 {
		t.Errorf("merges = %d, want 1", got)
	}
}

// TestClusterReportNonEmpty checks the end-to-end path an operator uses:
// enable metrics, run traffic, render the report.
func TestClusterReportNonEmpty(t *testing.T) {
	c := tc(t, 2, func(cfg *cluster.Config) {
		cfg.Metrics = true
		cfg.MsgKindName = KindName
	})
	c.Run(func(n *cluster.Node) {
		a := New(n, 256)
		ctx := n.NewCtx(0)
		for i := int64(0); i < 256; i++ {
			a.Get(ctx, i)
		}
		c.Barrier(ctx)
	})
	rep := c.MetricsReport()
	for _, want := range []string{
		"core/cache/hits", "core/cache/misses", "fabric/msgs/read-req",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	var decoded struct {
		Metrics []telemetry.Metric `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(c.MetricsJSON()), &decoded); err != nil {
		t.Fatalf("MetricsJSON did not parse: %v", err)
	}
	if len(decoded.Metrics) == 0 {
		t.Error("MetricsJSON has no metrics")
	}
}

// BenchmarkGetFastPath measures the resident-chunk Get fast path with
// telemetry disabled (the default: one extra atomic load) and enabled,
// to keep the disabled-path-overhead contract honest.
func BenchmarkGetFastPath(b *testing.B) {
	for _, mode := range []struct {
		name string
		on   bool
	}{{"telemetry-off", false}, {"telemetry-on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			c := cluster.New(cluster.Config{
				Nodes: 1, ChunkWords: 512, CacheChunks: 64, Metrics: mode.on,
			})
			defer c.Close()
			c.Run(func(n *cluster.Node) {
				a := New(n, 1<<14)
				ctx := n.NewCtx(0)
				a.Set(ctx, 0, 1)
				b.ResetTimer()
				var sink uint64
				for i := 0; i < b.N; i++ {
					sink += a.Get(ctx, int64(i)&(1<<14-1))
				}
				_ = sink
			})
		})
	}
}

// TestMergedTrace checks that per-node rings interleave into one
// VT-ordered cluster timeline containing both sides of a remote read.
func TestMergedTrace(t *testing.T) {
	c := tc(t, 2)
	handles := make([]*Array, 2)
	c.Run(func(n *cluster.Node) {
		a := New(n, 64)
		handles[n.ID()] = a
		a.EnableTrace(256)
		ctx := n.NewCtx(0)
		c.Barrier(ctx)
		if n.ID() == 1 {
			a.Get(ctx, 0)
		}
		c.Barrier(ctx)
	})
	evs := MergedTrace(handles[0], handles[1])
	if len(evs) == 0 {
		t.Fatal("merged trace is empty")
	}
	nodes := map[int]bool{}
	for i, e := range evs {
		nodes[e.Node] = true
		if i > 0 && e.VT < evs[i-1].VT {
			t.Fatalf("merged trace out of VT order at %d: %v after %v", i, e, evs[i-1])
		}
	}
	if !nodes[0] || !nodes[1] {
		t.Errorf("merged trace should contain events from both nodes: %v", evs)
	}
	var kinds []string
	for _, e := range evs {
		kinds = append(kinds, e.Kind)
	}
	joined := strings.Join(kinds, " ")
	if !strings.Contains(joined, "read-req") || !strings.Contains(joined, "data-resp") {
		t.Errorf("merged trace missing protocol round trip: %s", joined)
	}
}
