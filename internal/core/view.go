package core

import (
	"math"

	"darray/internal/cluster"
)

// F64 is a float64-typed view of an Array: the same distributed storage
// accessed through math.Float64bits casts, mirroring how the paper's
// PageRank example stores double-typed ranks in the 8-byte object array.
type F64 struct{ *Array }

// AsF64 returns a float64 view of the array.
func (a *Array) AsF64() F64 { return F64{a} }

// Get reads element i as a float64.
func (f F64) Get(ctx *cluster.Ctx, i int64) float64 {
	return math.Float64frombits(f.Array.Get(ctx, i))
}

// Set writes element i as a float64.
func (f F64) Set(ctx *cluster.Ctx, i int64, v float64) {
	f.Array.Set(ctx, i, math.Float64bits(v))
}

// Apply combines a float64 operand into element i.
func (f F64) Apply(ctx *cluster.Ctx, op OpID, i int64, operand float64) {
	f.Array.Apply(ctx, op, i, math.Float64bits(operand))
}

// I64 is an int64-typed view of an Array.
type I64 struct{ *Array }

// AsI64 returns an int64 view of the array.
func (a *Array) AsI64() I64 { return I64{a} }

// Get reads element i as an int64.
func (v I64) Get(ctx *cluster.Ctx, i int64) int64 {
	return int64(v.Array.Get(ctx, i))
}

// Set writes element i as an int64.
func (v I64) Set(ctx *cluster.Ctx, i int64, x int64) {
	v.Array.Set(ctx, i, uint64(x))
}

// Fill sets every element this node homes to x (a common collective
// initialization idiom: each node fills its own partition, then the
// cluster barriers).
func (a *Array) Fill(ctx *cluster.Ctx, x uint64) {
	lo, hi := a.LocalRange()
	for i := lo; i < hi; i++ {
		a.Set(ctx, i, x)
	}
}

// FillF64 is Fill for a float64 value.
func (f F64) FillF64(ctx *cluster.Ctx, x float64) {
	f.Fill(ctx, math.Float64bits(x))
}
