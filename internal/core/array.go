package core

import (
	"fmt"
	"sort"
	"sync/atomic"

	"darray/internal/buf"
	"darray/internal/cluster"
	"darray/internal/fabric"
	"darray/internal/telemetry"
	"darray/internal/trace"
	"darray/internal/vtime"
)

// shared is the cluster-global descriptor of one distributed array,
// created once by collective construction and referenced by every
// node's Array handle.
type shared struct {
	id         uint32
	n          int64 // total elements (8-byte words)
	chunkWords int64
	nChunks    int64
	// starts[v] is the first chunk homed on node v; starts[nodes] == nChunks.
	starts []int64
	ops    atomic.Pointer[[]Op] // registered operators; OpID-1 indexes
	insts  []*Array             // per-node instances
}

// Array is one node's handle to a distributed array. All methods taking
// a *cluster.Ctx may be called from any number of application threads.
type Array struct {
	sh    *shared
	node  *cluster.Node
	model *vtime.Model
	local []uint64 // this node's subarray
	dents []dentry // one per global chunk

	// reg is the owning cluster's telemetry registry; its enable flag
	// gates the fast-path counters below (see telOn).
	reg *telemetry.Registry

	// pool is the cluster's payload buffer pool; pooled mirrors
	// pool != nil for branch-friendly checks (see zerocopy.go). Nil/false
	// under the Config.NoPool ablation.
	pool   *buf.Pool
	pooled bool

	// Protocol counters (updated by runtime goroutines with atomics).
	Metrics Metrics

	// pipeline is the effective bulk-transfer pipeline depth for this
	// array (>= 1; 1 means serial chunk-at-a-time ranges). With
	// congestion control active it is the window ceiling.
	pipeline int
	// ccOff disables adaptive windows for this array: bulk ranges issue
	// at the fixed pipeline depth (the pre-CC behaviour, bit-for-bit).
	// Resolved from Options.NoCC or the cluster-wide Config.NoCC.
	ccOff bool
	// ccCwnd/ccSrtt sample the adaptive window (chunks) and smoothed RTT
	// (virtual ns) at each congestion-controlled completion, telemetry-
	// gated like the fast-path counters.
	ccCwnd telemetry.Histogram
	ccSrtt telemetry.Histogram
	// shipMode is the resolved function-shipping mode for this array
	// (shipOff/shipAuto/shipOn; see ship.go).
	shipMode uint8
	// seqTrig is the mid-chunk offset at which Get feeds the sequential
	// detector; -1 disables the detector entirely.
	seqTrig int64
	// seq is the detector state, packed chunk<<8 | streak (see noteSeq).
	seq atomic.Int64

	tr tracer // optional protocol event recorder (see EnableTrace)

	// trc is the cluster's causal span tracer (nil when the cluster was
	// built without one); see tracespan.go for the cost discipline.
	trc *trace.Tracer
}

// Metrics aggregates protocol-side events for one node's handle.
//
// Slow-path counters (everything the runtime goroutines touch) are
// always maintained. The fast-path group at the bottom is only counted
// while cluster telemetry is enabled, so the lock-free access paths pay
// a single atomic load when it is not.
type Metrics struct {
	Fills      atomic.Int64 // cache lines filled from remote data
	Evictions  atomic.Int64
	WriteBacks atomic.Int64
	OpFlushes  atomic.Int64 // combined-operand flushes sent to home
	OpMerges   atomic.Int64 // operand buffers merged at home
	Invals     atomic.Int64 // invalidations processed
	Recalls    atomic.Int64
	Prefetches atomic.Int64

	Downgrades        atomic.Int64 // Dirty owners asked to write back but keep reading
	OpMergesVoluntary atomic.Int64 // merges of eviction-driven (voluntary) flushes
	OpMergesRecalled  atomic.Int64 // merges demanded by an Operated collapse
	ReclaimSweeps     atomic.Int64 // clock-hand reclamation passes (paper §4.2)
	ReclaimScanned    atomic.Int64 // cache lines inspected by those passes
	RefDrainStalls    atomic.Int64 // permission demotions that waited out live references

	// Transitions counts each edge of the home directory state machine
	// (paper Figure 5), indexed by Transition.
	Transitions [NumTransitions]atomic.Int64

	// Prefetch accounting. Prefetches counts issued speculative fills
	// (both the slow-path miss prefetcher and the sequential detector);
	// hit/wasted attribution of already-filled lines depends on the
	// telemetry-gated fast-path check, so treat the split as a
	// telemetry-mode statistic.
	PrefetchHits      atomic.Int64 // speculative fills consumed by a demand access
	PrefetchWasted    atomic.Int64 // speculative fills evicted or invalidated untouched
	PrefetchThrottled atomic.Int64 // speculative issues withheld for lack of spare window credit

	// Congestion-control accounting (zero under NoCC; see internal/cc).
	CCBackoffs atomic.Int64 // multiplicative backoffs + timeout-grade resets observed by bulk pipelines

	// Fast-path counters, gated on cluster telemetry (see telOn).
	Hits        atomic.Int64 // fast-path accesses served from a resident chunk
	Misses      atomic.Int64 // slow-path requests submitted to the runtime
	DelayStalls atomic.Int64 // fast-path encounters with a raised delay flag
	PinFast     atomic.Int64 // pins granted on the lock-free path
	PinSlow     atomic.Int64 // pins that needed the runtime
	Combines    atomic.Int64 // Operate combines into a local buffer

	// Function-shipping accounting (see ship.go). ShipOps counts shipped
	// ops applied at this home; ShipFlips counts estimator mode flips;
	// ShipBytesSaved estimates flush traffic avoided (chunk bytes minus
	// shipped operand bytes per op, floored at zero).
	ShipOps        atomic.Int64
	ShipFlips      atomic.Int64
	ShipBytesSaved atomic.Int64

	// Zero-copy data-path accounting (all zero under NoPool; see
	// zerocopy.go for the lease/adopt/donate vocabulary).
	Leases        atomic.Int64 // payload buffers leased from the pool
	Adopts        atomic.Int64 // inbound grant buffers adopted as line backing
	Donates       atomic.Int64 // line buffers donated as outbound payloads
	PayloadCopies atomic.Int64 // pooled payloads that still required a copy
}

// Options configures construction beyond the defaults.
type Options struct {
	// PartitionOffset optionally assigns each node's first element,
	// mirroring the paper's partition_offset constructor argument.
	// len == nodes; offsets must be non-decreasing, start at 0, and are
	// rounded up to chunk boundaries.
	PartitionOffset []int64

	// Pipeline overrides the cluster's PipelineDepth for this array: the
	// number of outstanding chunk fetches a bulk range keeps in flight.
	// 0 uses the cluster default; 1 or -1 forces the serial path.
	Pipeline int

	// NoSeqDetect disables the sequential-access detector (speculative
	// next-chunk prefetch from the Get/PinRead fast path) for this
	// array. The detector is also off cluster-wide when PrefetchAhead
	// is -1 (the prefetch-free ablation configuration).
	NoSeqDetect bool

	// Ship overrides the cluster's Config.Ship for this array: "auto",
	// "on", or "off" ("" keeps the cluster default). NoShip forces
	// cached-only Operate ("off") regardless of either setting.
	Ship   string
	NoShip bool

	// NoCC disables congestion-controlled streaming for this array: bulk
	// pipelines run at the fixed Pipeline depth and prefetch is capped
	// only by demand credit, reproducing the static-knob schedule
	// bit-for-bit. Also implied by the cluster-wide Config.NoCC.
	NoCC bool
}

// WithPrefetch returns Options pinning the bulk-transfer pipeline depth
// to k outstanding chunk fetches (k <= 1 forces the serial path).
func WithPrefetch(k int) Options {
	if k < 1 {
		k = -1
	}
	return Options{Pipeline: k}
}

// WithShipping returns Options pinning this array's function-shipping
// mode: "auto" (the per-chunk contention estimator decides), "on"
// (every remote Apply ships), or "off" (cached combining only).
func WithShipping(mode string) Options {
	shipModeOf(mode) // validate eagerly
	if mode == "" {
		mode = "auto"
	}
	return Options{Ship: mode}
}

// New collectively creates a distributed array of n 8-byte elements,
// evenly partitioned across the cluster's nodes by default. Every node
// must call New in the same program order (SPMD). Multiple Options
// values are merged field-wise (later non-zero fields win).
func New(node *cluster.Node, n int64, opts ...Options) *Array {
	if n <= 0 {
		panic("core: array length must be positive")
	}
	var opt Options
	for _, o := range opts {
		if o.PartitionOffset != nil {
			opt.PartitionOffset = o.PartitionOffset
		}
		if o.Pipeline != 0 {
			opt.Pipeline = o.Pipeline
		}
		if o.NoSeqDetect {
			opt.NoSeqDetect = true
		}
		if o.Ship != "" {
			opt.Ship = o.Ship
		}
		if o.NoShip {
			opt.NoShip = true
		}
		if o.NoCC {
			opt.NoCC = true
		}
	}
	c := node.Cluster()
	shAny := node.Collective(func() any { return buildShared(c, n, opt) })
	sh := shAny.(*shared)
	a := sh.insts[node.ID()]
	a.wire()
	c.Barrier(nil) // all routes registered before any traffic
	return a
}

func buildShared(c *cluster.Cluster, n int64, opt Options) *shared {
	cw := int64(c.Config().ChunkWords)
	nChunks := (n + cw - 1) / cw
	nodes := int64(c.Nodes())
	sh := &shared{
		id:         c.NextArrayID(),
		n:          n,
		chunkWords: cw,
		nChunks:    nChunks,
	}
	empty := make([]Op, 0, 8)
	sh.ops.Store(&empty)
	sh.starts = make([]int64, nodes+1)
	if opt.PartitionOffset != nil {
		if int64(len(opt.PartitionOffset)) != nodes {
			panic(fmt.Sprintf("core: PartitionOffset has %d entries for %d nodes",
				len(opt.PartitionOffset), nodes))
		}
		prev := int64(0)
		for v := int64(0); v < nodes; v++ {
			off := opt.PartitionOffset[v]
			if off < prev || off > n {
				panic("core: PartitionOffset must be non-decreasing and within bounds")
			}
			sh.starts[v] = (off + cw - 1) / cw
			if sh.starts[v] > nChunks {
				sh.starts[v] = nChunks
			}
			prev = off
		}
		if sh.starts[0] != 0 {
			panic("core: PartitionOffset[0] must be 0")
		}
	} else {
		per := (nChunks + nodes - 1) / nodes
		for v := int64(0); v < nodes; v++ {
			s := v * per
			if s > nChunks {
				s = nChunks
			}
			sh.starts[v] = s
		}
	}
	sh.starts[nodes] = nChunks

	depth := opt.Pipeline
	if depth == 0 {
		depth = c.Config().PipelineDepth
	}
	if depth < 1 {
		depth = 1
	}
	// The detector samples Get at mid-chunk: far enough in to confirm a
	// streaming pattern, early enough that the speculative fill beats the
	// scan to the next chunk boundary.
	seqTrig := cw / 2
	if opt.NoSeqDetect || c.Config().PrefetchAhead == 0 {
		seqTrig = -1
	}

	shipCfg := opt.Ship
	if shipCfg == "" {
		shipCfg = c.Config().Ship
	}
	ship := shipModeOf(shipCfg)
	if opt.NoShip {
		ship = shipOff
	}

	ccOff := opt.NoCC || c.Config().NoCC

	sh.insts = make([]*Array, nodes)
	for v := int64(0); v < nodes; v++ {
		node := c.Node(int(v))
		a := &Array{sh: sh, node: node, model: c.Model(), reg: c.Telemetry(),
			pipeline: depth, seqTrig: seqTrig, shipMode: ship, ccOff: ccOff,
			pool: c.BufPool(), pooled: c.BufPool() != nil,
			trc: c.Tracer()}
		lo, hi := sh.starts[v]*cw, sh.starts[v+1]*cw
		if hi > n {
			hi = n
		}
		if lo > hi {
			lo = hi
		}
		// Home storage is rounded up to whole chunks so protocol data
		// transfers are always chunk sized.
		words := (hi - lo + cw - 1) / cw * cw
		a.local = make([]uint64, words)
		a.dents = make([]dentry, nChunks)
		for ci := range a.dents {
			a.dents[ci].ci = int64(ci)
			a.dents[ci].owner = -1
		}
		for ci := sh.starts[v]; ci < sh.starts[v+1]; ci++ {
			d := &a.dents[ci]
			off := (ci - sh.starts[v]) * cw
			d.data = a.local[off : off+cw]
			d.state.Store(permRW) // Unshared: home may R/W/O
			d.dstate = dirUnshared
		}
		sh.insts[v] = a
	}
	return sh
}

// wire registers this node's fabric route and memory region and attaches
// per-runtime state.
func (a *Array) wire() {
	nrt := a.node.Runtimes()
	for i := 0; i < nrt; i++ {
		rt := a.node.Runtime(i)
		rt.Attach[a.sh.id] = newRTState(a, rt)
	}
	a.node.Endpoint().RegisterMR(a.sh.id, a.local)
	a.node.RegisterRoute(a.sh.id, cluster.Route{
		RuntimeOf: func(m *fabric.Message) int {
			return int(m.Chunk % int64(nrt))
		},
		Handle: a.handleMsg,
		// Payload-free commands whose handling depends only on
		// (From, Chunk, VT) may be destination-coalesced by the Tx
		// thread. Operate-family messages are excluded: they carry an
		// OpID the merge key does not compare.
		Coalescible: func(kind uint8) bool {
			switch kind {
			case msgReadReq, msgWriteReq, msgInvalidate, msgInvAck,
				msgDowngrade, msgRecall, msgOpRecall:
				return true
			}
			return false
		},
	})
	a.node.Cluster().AddMetricsCollector(a.collectMetrics)
}

// ID returns the array's cluster-wide id.
func (a *Array) ID() uint32 { return a.sh.id }

// Len returns the global element count.
func (a *Array) Len() int64 { return a.sh.n }

// ChunkWords returns the chunk size in elements.
func (a *Array) ChunkWords() int64 { return a.sh.chunkWords }

// Chunks returns the number of chunks in the global array.
func (a *Array) Chunks() int64 { return a.sh.nChunks }

// Node returns this handle's node.
func (a *Array) Node() *cluster.Node { return a.node }

// HomeOf returns the node id that homes element i.
func (a *Array) HomeOf(i int64) int { return a.homeOfChunk(i / a.sh.chunkWords) }

// LocalRange returns [lo, hi) — the element range homed on this node.
func (a *Array) LocalRange() (lo, hi int64) {
	v := int64(a.node.ID())
	lo = a.sh.starts[v] * a.sh.chunkWords
	hi = a.sh.starts[v+1] * a.sh.chunkWords
	if hi > a.sh.n {
		hi = a.sh.n
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

func (a *Array) homeOfChunk(ci int64) int {
	s := a.sh.starts
	// Binary search: greatest v with starts[v] <= ci.
	v := sort.Search(len(s), func(i int) bool { return s[i] > ci }) - 1
	if v < 0 || v >= len(s)-1 {
		panic(fmt.Sprintf("core: chunk %d out of range", ci))
	}
	return v
}

func (a *Array) locate(i int64) (ci, off int64) {
	if i < 0 || i >= a.sh.n {
		panic(fmt.Sprintf("core: index %d out of range [0,%d)", i, a.sh.n))
	}
	return i / a.sh.chunkWords, i % a.sh.chunkWords
}

// rtOf returns the runtime goroutine owning chunk ci on this node.
func (a *Array) rtOf(ci int64) *cluster.Runtime {
	return a.node.Runtime(int(ci % int64(a.node.Runtimes())))
}

// RegisterOp collectively registers an associative-commutative operator
// and returns its id (paper §4.3 registerOp). Must be called in the
// same program order on every node.
func (a *Array) RegisterOp(op Op) OpID {
	idAny := a.node.Collective(func() any {
		for {
			cur := a.sh.ops.Load()
			next := make([]Op, len(*cur)+1)
			copy(next, *cur)
			next[len(*cur)] = op
			if a.sh.ops.CompareAndSwap(cur, &next) {
				return OpID(len(next)) // ids start at 1
			}
		}
	})
	return idAny.(OpID)
}

// op returns the registered operator for id.
func (a *Array) op(id OpID) *Op {
	ops := *a.sh.ops.Load()
	if id < 1 || int(id) > len(ops) {
		panic(fmt.Sprintf("core: unregistered operator %d", id))
	}
	return &ops[id-1]
}
