package core

import (
	"darray/internal/buf"
	"darray/internal/cluster"
	"darray/internal/trace"
)

// cacheLine is one slot of a runtime thread's cache region. Pooled
// arrays back lines lazily with refcounted pool buffers (usually by
// adopting an inbound grant); NoPool lines carry a fixed slice for the
// array's lifetime and ref stays nil.
type cacheLine struct {
	data  []uint64
	ref   *buf.Ref // pooled backing, nil under NoPool or when unbacked
	owner *dentry  // nil when free
}

// rtState is the per-(runtime goroutine, array) state: the runtime's
// independent cache region with its scanning pointer (paper Figure 7)
// and the lock table for elements homed on this node and owned by this
// runtime.
type rtState struct {
	arr           *Array
	rt            *cluster.Runtime
	lines         []*cacheLine
	free          []*cacheLine
	scan          int // scanning pointer for the clock-like reclamation
	lowWM, highWM int
	reclaiming    bool

	locks       map[int64]*lockState // element locks homed here (this runtime)
	lockWaiters map[int64][]*waiter  // local threads awaiting remote grants
}

func newRTState(a *Array, rt *cluster.Runtime) *rtState {
	cfg := a.node.Cluster().Config()
	capacity := cfg.CacheChunks
	s := &rtState{
		arr:    a,
		rt:     rt,
		lines:  make([]*cacheLine, capacity),
		free:   make([]*cacheLine, 0, capacity),
		lowWM:  int(float64(capacity) * cfg.LowWatermark),
		highWM: int(float64(capacity) * cfg.HighWatermark),
		locks:  make(map[int64]*lockState),
	}
	for i := range s.lines {
		ln := &cacheLine{}
		if !a.pooled {
			ln.data = make([]uint64, a.sh.chunkWords)
		}
		s.lines[i] = ln
		s.free = append(s.free, ln)
	}
	return s
}

// Detach releases every pooled line backing still held by this state's
// cache region. The cluster calls it (via the Detacher interface)
// during teardown so a cleanly closed cluster ends with zero
// outstanding pool references.
func (s *rtState) Detach() {
	for _, ln := range s.lines {
		if ln.ref != nil {
			ln.ref.Release()
			ln.ref = nil
			ln.data = nil
		}
	}
}

func (a *Array) rstate(rt *cluster.Runtime) *rtState {
	return rt.Attach[a.sh.id].(*rtState)
}

// allocLine pops a free cache line, triggering watermark reclamation.
// It returns nil when no line is currently free (caller must stall).
func (s *rtState) allocLine() *cacheLine {
	if len(s.free) <= s.lowWM && !s.reclaiming {
		s.startReclaim()
	}
	if len(s.free) == 0 {
		if !s.reclaiming {
			s.startReclaim()
		}
		return nil
	}
	ln := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	return ln
}

// freeLine returns a line to the free list, dropping any pooled
// backing (a donated buffer was already detached by takeLineData).
func (s *rtState) freeLine(ln *cacheLine) {
	if ln.ref != nil {
		ln.ref.Release()
		ln.ref = nil
		ln.data = nil
	}
	ln.owner = nil
	s.free = append(s.free, ln)
}

// startReclaim scans this runtime's region from the scanning pointer,
// evicting allocated lines whose dentry is idle (not busy, refcnt 0)
// until the free count reaches the high watermark (paper §4.2). Lines
// in an intermediate state or referenced by application threads are
// skipped.
func (s *rtState) startReclaim() {
	s.reclaiming = true
	scanned := 0
	target := s.highWM
	if target < 1 {
		target = 1
	}
	for len(s.free) < target && scanned < len(s.lines) {
		ln := s.lines[s.scan]
		s.scan = (s.scan + 1) % len(s.lines)
		scanned++
		d := ln.owner
		if d == nil || d.busy || d.pending || d.refcnt.Load() != 0 {
			continue
		}
		s.arr.evictLine(s.rt, d)
	}
	s.arr.Metrics.ReclaimSweeps.Add(1)
	s.arr.Metrics.ReclaimScanned.Add(int64(scanned))
	s.reclaiming = false
}

// evictLine evicts the cache line backing d. Caller guarantees d is an
// idle non-home dentry with a resident line. Because eviction may need
// to wait out late-arriving references, the final steps may run as a
// stalled continuation; d.busy stays set until done.
func (a *Array) evictLine(rt *cluster.Runtime, d *dentry) {
	a.trace("evict", d.ci, -1, d.tvt, trace.Ctx{})
	d.busy = true
	st := d.state.Load()
	d.delay.Store(true)
	d.state.Store(permInvalid)
	finish := func(rt *cluster.Runtime) {
		a.finishEvict(rt, d, st)
	}
	if d.refcnt.Load() == 0 {
		finish(rt)
		return
	}
	rt.Stall(func(rt *cluster.Runtime) bool {
		if d.refcnt.Load() != 0 {
			return false
		}
		finish(rt)
		return true
	})
}

func (a *Array) finishEvict(rt *cluster.Runtime, d *dentry, prevState uint32) {
	ci := d.ci
	home := a.homeOfChunk(ci)
	switch statePerm(prevState) {
	case permRead:
		// Shared lines evict silently; stale sharer bits at home are
		// cleaned up by idempotent invalidations.
	case permRW:
		data, pay := a.takeLineData(d)
		a.Metrics.WriteBacks.Add(1)
		a.send(&fMsg{to: home, kind: msgWBData, chunk: ci, data: data, pay: pay,
			flag: true, vt: d.tvt})
	case permOperated:
		data, pay := a.takeLineData(d)
		a.Metrics.OpFlushes.Add(1)
		a.send(&fMsg{to: home, kind: msgOpFlush, chunk: ci, op: stateOp(prevState),
			data: data, pay: pay, flag: true, vt: d.tvt})
	}
	if d.pf.CompareAndSwap(true, false) {
		a.Metrics.PrefetchWasted.Add(1)
	}
	s := a.rstate(rt)
	s.freeLine(d.line)
	d.line = nil
	d.data = nil
	d.delay.Store(false)
	d.busy = false
	a.Metrics.Evictions.Add(1)
	a.drainDeferred(rt, d, ci)
}
