package core

import (
	"sync"
	"testing"
	"time"

	"darray/internal/cluster"
	"darray/internal/fault"
	"darray/internal/trace"
	"darray/internal/vtime"
)

// TestSpanLinkageUnderFaults drives traced cross-node traffic through a
// lossy, duplicating wire and checks the causal span graph survives:
// retransmitted deliveries surface as retransmit-stage spans, and every
// non-root span still links to a live parent in the same trace.
func TestSpanLinkageUnderFaults(t *testing.T) {
	trc := trace.New(0)
	trc.Enable(1)
	plan := fault.New(fault.Config{
		Seed: 11, Nodes: 2, DropProb: 0.15, DupProb: 0.10, RetryBudget: 64,
	})
	c := cluster.New(cluster.Config{
		Nodes: 2, ChunkWords: 64, CacheChunks: 64,
		Faults: plan, Model: vtime.Default(), Tracer: trc,
	})
	defer c.Close()

	c.Run(func(n *cluster.Node) {
		a := New(n, 2*64*4)
		ctx := n.NewCtx(0)
		c.Barrier(ctx)
		// Ping-pong writes: every op needs a remote round trip, so the
		// lossy wire gets plenty of traced deliveries to retransmit.
		for i := int64(0); i < 2*64*4; i += 16 {
			a.Set(ctx, i, uint64(n.ID())+1)
			_ = a.Get(ctx, (i+64)%(2*64*4))
		}
		c.Barrier(ctx)
		if err := ctx.Err(); err != nil {
			t.Errorf("node %d degraded: %v", n.ID(), err)
		}
	})

	if s := plan.Stats(); s.Drops == 0 {
		t.Fatalf("plan injected no drops: %+v", s)
	}
	spans := trc.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	retrans := 0
	byID := make(map[uint64]trace.Span, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
		if s.Stage == trace.StageRetransmit {
			retrans++
			if s.Dur() <= 0 {
				t.Errorf("retransmit span with non-positive duration: %v", s)
			}
		}
	}
	if retrans == 0 {
		t.Error("lossy wire produced no retransmit-stage spans")
	}
	if trc.Dropped() > 0 {
		t.Skipf("ring dropped %d spans; linkage not checkable", trc.Dropped())
	}
	for _, s := range spans {
		if s.Parent == 0 {
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			t.Fatalf("span %x (%s) has dangling parent %x", s.ID, s.Name, s.Parent)
		}
		if p.Trace != s.Trace {
			t.Fatalf("span %x links across traces: %x vs parent %x", s.ID, s.Trace, p.Trace)
		}
	}
}

// TestEnableTraceResetsSeq covers the re-enable bug: EnableTrace must
// restart sequence numbering, not continue from the dead recording.
func TestEnableTraceResetsSeq(t *testing.T) {
	c := tc(t, 2)
	c.Run(func(n *cluster.Node) {
		a := New(n, 2*64)
		ctx := n.NewCtx(0)
		a.EnableTrace(16)
		c.Barrier(ctx)
		if n.ID() == 1 {
			_ = a.Get(ctx, 0)
			if len(a.TraceEvents()) == 0 {
				t.Fatal("first recording captured nothing")
			}
		}
		c.Barrier(ctx)
		a.DisableTrace()
		a.EnableTrace(16)
		c.Barrier(ctx)
		if n.ID() == 1 {
			a.Set(ctx, 0, 7)
			evs := a.TraceEvents()
			if len(evs) == 0 {
				t.Fatal("second recording captured nothing")
			}
			if evs[0].Seq != 1 {
				t.Errorf("first event of a fresh recording has seq %d, want 1", evs[0].Seq)
			}
		}
		c.Barrier(ctx)
	})
}

// TestMergedTraceConcurrent reads the merged trace while application
// threads are still generating events; the race detector must stay
// quiet and every returned event must be well-formed.
func TestMergedTraceConcurrent(t *testing.T) {
	c := tc(t, 2)
	c.Run(func(n *cluster.Node) {
		a := New(n, 2*64*4)
		ctx := n.NewCtx(0)
		a.EnableTrace(64)
		c.Barrier(ctx)

		var wg sync.WaitGroup
		stop := make(chan struct{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				evs := MergedTrace(a.Instances()...)
				for i := 1; i < len(evs); i++ {
					if evs[i].Node == evs[i-1].Node && evs[i].Seq <= evs[i-1].Seq {
						t.Errorf("merged trace out of order per node: %v then %v", evs[i-1], evs[i])
						return
					}
				}
			}
		}()
		for i := int64(0); i < 2*64*4; i += 8 {
			a.Set(ctx, i, uint64(i))
			_ = a.Get(ctx, (i+64)%(2*64*4))
		}
		close(stop)
		wg.Wait()
		c.Barrier(ctx)
	})
}

// TestTracingOffOverhead gates the fast path with a tracer attached but
// disabled: identical allocation behaviour to no tracer at all, zero
// spans recorded, and no order-of-magnitude time regression.
func TestTracingOffOverhead(t *testing.T) {
	run := func(trc *trace.Tracer) (allocs float64, elapsed time.Duration) {
		c := cluster.New(cluster.Config{
			Nodes: 1, ChunkWords: 64, CacheChunks: 64, Tracer: trc,
		})
		defer c.Close()
		c.Run(func(n *cluster.Node) {
			a := New(n, 64*64)
			ctx := n.NewCtx(0)
			for i := int64(0); i < 64*64; i++ {
				a.Set(ctx, i, uint64(i))
			}
			allocs = testing.AllocsPerRun(20, func() {
				for i := int64(0); i < 64*64; i++ {
					_ = a.Get(ctx, i)
				}
			})
			start := time.Now()
			for r := 0; r < 50; r++ {
				for i := int64(0); i < 64*64; i++ {
					_ = a.Get(ctx, i)
				}
			}
			elapsed = time.Since(start)
		})
		return allocs, elapsed
	}

	off := trace.New(0) // attached, never enabled
	allocsOff, timeOff := run(off)
	allocsNil, timeNil := run(nil)

	if allocsOff != allocsNil {
		t.Errorf("allocs/run with disabled tracer = %v, without tracer = %v", allocsOff, allocsNil)
	}
	if n := len(off.Spans()); n != 0 {
		t.Errorf("disabled tracer recorded %d spans", n)
	}
	// Generous bound: a disabled tracer costs one atomic load per op, so
	// anything close to an order of magnitude signals spans being cut on
	// the fast path. Loose enough to survive a noisy CI host.
	if timeOff > 10*timeNil+10*time.Millisecond {
		t.Errorf("disabled tracer slowed seq reads: %v vs %v", timeOff, timeNil)
	}
}
