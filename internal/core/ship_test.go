package core

import (
	"sync"
	"testing"

	"darray/internal/cluster"
	"darray/internal/vtime"
)

// Estimator unit tests: the flip thresholds and hysteresis are the
// contract the adaptive mode rests on, so they are pinned directly.

// TestShipEstimatorFlipsUp: multi-node churny traffic arriving fast
// must flip to shipped, exactly once.
func TestShipEstimatorFlipsUp(t *testing.T) {
	var e shipEstimator
	vt := int64(0)
	flips := 0
	for k := 0; k < 6*shipWindow; k++ {
		vt += 1_000 // 1 µs between events: far inside the hot span
		if e.note(1+k%3, 1, vt) {
			flips++
		}
	}
	if !e.shipped {
		t.Fatal("hot 3-requester traffic never flipped to shipped")
	}
	if flips != 1 {
		t.Fatalf("flips = %d, want exactly 1 (hysteresis must hold the mode)", flips)
	}
}

// TestShipEstimatorIgnoresSingleRequester: one node hammering a chunk
// is the cached path's best case — no requester diversity, no flip.
func TestShipEstimatorIgnoresSingleRequester(t *testing.T) {
	var e shipEstimator
	vt := int64(0)
	for k := 0; k < 20*shipWindow; k++ {
		vt += 1_000
		if e.note(2, 1, vt) {
			t.Fatal("single-requester traffic flipped the mode")
		}
	}
	if e.shipped {
		t.Fatal("shipped with only one requester")
	}
}

// TestShipEstimatorIgnoresSlowTraffic: every node touches a cold chunk
// eventually; only a fast window may flip it.
func TestShipEstimatorIgnoresSlowTraffic(t *testing.T) {
	var e shipEstimator
	vt := int64(0)
	for k := 0; k < 20*shipWindow; k++ {
		vt += 1_000_000 // 1 ms between events: window span 15 ms >> hot
		if e.note(1+k%3, 1, vt) {
			t.Fatal("slow traffic flipped the mode")
		}
	}
	if e.shipped {
		t.Fatal("shipped on slow traffic")
	}
}

// TestShipEstimatorNeedsChurn: diverse fast requesters whose grants
// never churn (steady-state combining) stay cached.
func TestShipEstimatorNeedsChurn(t *testing.T) {
	var e shipEstimator
	vt := int64(0)
	for k := 0; k < 20*shipWindow; k++ {
		vt += 1_000
		if e.note(1+k%3, 0, vt) {
			t.Fatal("churn-free traffic flipped the mode")
		}
	}
}

// TestShipEstimatorFlipsDownWhenCold: a shipped chunk whose traffic
// cools past the cold threshold must flip back, once, and stay cached.
func TestShipEstimatorFlipsDownWhenCold(t *testing.T) {
	var e shipEstimator
	vt := int64(0)
	for k := 0; k < 6*shipWindow; k++ {
		vt += 1_000
		e.note(1+k%3, 1, vt)
	}
	if !e.shipped {
		t.Fatal("setup: never flipped up")
	}
	flips := 0
	for k := 0; k < 20*shipWindow; k++ {
		vt += 200_000 // window span 3.2 ms: past the cold threshold
		if e.note(1+k%3, 1, vt) {
			flips++
		}
	}
	if e.shipped {
		t.Fatal("stayed shipped after the chunk went cold")
	}
	if flips != 1 {
		t.Fatalf("flips = %d, want exactly 1", flips)
	}
}

// TestShipEstimatorNoFlapping: traffic hovering between the hot and
// cold spans must not oscillate — the asymmetric thresholds are there
// precisely so the boundary is sticky.
func TestShipEstimatorNoFlapping(t *testing.T) {
	var e shipEstimator
	vt := int64(0)
	flips := 0
	for k := 0; k < 40*shipWindow; k++ {
		// Alternate ~200 µs and ~800 µs windows: the EWMA hovers between
		// the 400 µs hot gate and the 1.6 ms cold gate.
		if (k/shipWindow)%2 == 0 {
			vt += 12_500
		} else {
			vt += 50_000
		}
		if e.note(1+k%3, 1, vt) {
			flips++
		}
	}
	if flips > 2 {
		t.Fatalf("estimator flapped: %d flips over 40 windows", flips)
	}
}

// ---------------------------------------------------------------------------
// Whole-array parity and crossover behaviour.

// runShipWorkload runs a seeded RMW mix (every node reads then combines
// into the target element) and returns the final array contents plus
// the cluster-wide ship op/flip counters. hot sends 60% of the traffic
// to the first chunk over a small array (requester-interleaved, the
// pattern the estimator exists for); otherwise traffic is uniform over
// an array big enough that no chunk's window ever runs hot.
func runShipWorkload(t *testing.T, ship string, hot bool) ([]uint64, int64, int64) {
	t.Helper()
	const (
		chunkWords = 64
		opsPerNode = 2000
	)
	elems := int64(chunkWords * 256)
	if hot {
		elems = chunkWords * 32
	}
	c := cluster.New(cluster.Config{
		Nodes: 6, RuntimeThreads: 2,
		ChunkWords: chunkWords, CacheChunks: 64,
		Model: vtime.Default(),
		Ship:  ship,
	})
	defer c.Close()
	vals := make([]uint64, elems)
	var shipOps, shipFlips int64
	var mu sync.Mutex

	c.Run(func(n *cluster.Node) {
		a := New(n, elems)
		add := a.RegisterOp(OpAddU64)
		root := n.NewCtx(0)
		rng := root.Rng
		rng.Seed(77 + int64(n.ID()))
		c.Barrier(root)
		for k := 0; k < opsPerNode; k++ {
			var i int64
			if hot && rng.Float64() < 0.6 {
				i = int64(rng.Intn(chunkWords))
			} else {
				i = rng.Int63n(elems)
			}
			_ = a.Get(root, i)
			a.Apply(root, add, i, 1)
		}
		c.Barrier(root)
		if n.ID() == 0 {
			for i := int64(0); i < elems; i++ {
				vals[i] = a.Get(root, i)
			}
		}
		c.Barrier(root)
		mu.Lock()
		shipOps += a.Metrics.ShipOps.Load()
		shipFlips += a.Metrics.ShipFlips.Load()
		mu.Unlock()
	})
	return vals, shipOps, shipFlips
}

// TestShippingOffParity locks the ablation contract: ship=off takes the
// pre-shipping code path (no shipped ops, no estimator flips, exact
// results), auto on uniform traffic never flips (so it behaves as off),
// and every mode agrees on the final state because shipped ops commute.
func TestShippingOffParity(t *testing.T) {
	offHot, ops, flips := runShipWorkload(t, "off", true)
	if ops != 0 || flips != 0 {
		t.Fatalf("ship=off shipped anyway: ops=%d flips=%d", ops, flips)
	}
	onHot, ops, _ := runShipWorkload(t, "on", true)
	if ops == 0 {
		t.Fatal("ship=on hot run shipped nothing")
	}
	autoHot, _, _ := runShipWorkload(t, "auto", true)
	for i := range offHot {
		if offHot[i] != onHot[i] || offHot[i] != autoHot[i] {
			t.Fatalf("modes disagree at [%d]: off=%d on=%d auto=%d",
				i, offHot[i], onHot[i], autoHot[i])
		}
	}

	_, ops, flips = runShipWorkload(t, "auto", false)
	if flips != 0 {
		t.Errorf("uniform traffic flipped the estimator %d times; auto must degenerate to off", flips)
	}
	if ops != 0 {
		t.Errorf("uniform auto run shipped %d ops", ops)
	}
}

// TestShippingAutoFlipsHotChunk: the estimator must actually find the
// hot chunk — under the same contended mix that TestShippingOffParity
// checks for correctness, auto mode must flip and ship.
func TestShippingAutoFlipsHotChunk(t *testing.T) {
	_, ops, flips := runShipWorkload(t, "auto", true)
	if flips == 0 {
		t.Fatal("hot-chunk RMW mix never flipped the estimator")
	}
	if ops == 0 {
		t.Fatal("estimator flipped but nothing shipped")
	}
}
