package core

import (
	"darray/internal/cluster"
	"darray/internal/trace"
)

// Bulk transfers: chunk-wise ranged reads and writes. Internally each
// covered chunk is pinned once, so a bulk operation costs one reference
// acquisition per chunk instead of per element — the natural companion
// to the Pin interface for dense transfers (and the access pattern GAM
// was designed around, cf. §2).
//
// When the range spans more than one chunk and the array's pipeline
// depth is > 1, acquisitions run through rangePipeline so up to K
// coherence round trips are in flight at once; otherwise the serial
// chunk-at-a-time loop below is used (and is the ablation baseline).

// usePipeline reports whether a range over [i, i+n) should go through
// the async pipeline, and returns the covered chunk interval.
func (a *Array) usePipeline(i, n int64) (ciLo, ciHi int64, ok bool) {
	ciLo = i / a.sh.chunkWords
	ciHi = (i + n - 1) / a.sh.chunkWords
	return ciLo, ciHi, a.pipeline > 1 && ciHi > ciLo
}

// GetRange copies elements [i, i+len(dst)) into dst.
func (a *Array) GetRange(ctx *cluster.Ctx, i int64, dst []uint64) {
	if len(dst) == 0 {
		return
	}
	var tc trace.Ctx
	var t0 int64
	if a.trc != nil {
		tc, t0 = a.rootSpan(ctx)
		if tc.Trace != 0 {
			defer a.endRoot(ctx, tc, "GetRange", i/a.sh.chunkWords, t0)
		}
	}
	if ciLo, ciHi, ok := a.usePipeline(i, int64(len(dst))); ok {
		end := i + int64(len(dst))
		a.rangePipeline(ctx, ciLo, ciHi, wantPinRead, 0, func(p *Pin) {
			lo, hi := maxi64(i, p.base), mini64(end, p.limit)
			copy(dst[lo-i:hi-i], p.d.data[lo-p.base:hi-p.base])
			if m := a.model; m != nil {
				cc := m.CopyCost(int(8 * (hi - lo)))
				a.child(tc, a.self(), trace.StageService, "range-copy", p.d.ci, ctx.Clock.Now(), ctx.Clock.Now()+cc)
				ctx.Clock.Advance(cc)
			}
			ctx.Stats.Ops++
		}, tc)
		return
	}
	for len(dst) > 0 {
		p := a.pin(ctx, i, wantPinRead, 0, tc)
		if p == nil {
			return // cluster failed; see ctx.Err
		}
		n := p.Limit() - i
		if n > int64(len(dst)) {
			n = int64(len(dst))
		}
		base := i - p.First()
		copy(dst[:n], p.d.data[base:base+n])
		if m := a.model; m != nil {
			cc := m.CopyCost(int(8 * n))
			a.child(tc, a.self(), trace.StageService, "range-copy", p.d.ci, ctx.Clock.Now(), ctx.Clock.Now()+cc)
			ctx.Clock.Advance(cc)
		}
		ctx.Stats.Ops++
		p.Unpin(ctx)
		dst = dst[n:]
		i += n
	}
}

// SetRange copies src into elements [i, i+len(src)).
func (a *Array) SetRange(ctx *cluster.Ctx, i int64, src []uint64) {
	if len(src) == 0 {
		return
	}
	var tc trace.Ctx
	var t0 int64
	if a.trc != nil {
		tc, t0 = a.rootSpan(ctx)
		if tc.Trace != 0 {
			defer a.endRoot(ctx, tc, "SetRange", i/a.sh.chunkWords, t0)
		}
	}
	if ciLo, ciHi, ok := a.usePipeline(i, int64(len(src))); ok {
		end := i + int64(len(src))
		a.rangePipeline(ctx, ciLo, ciHi, wantPinWrite, 0, func(p *Pin) {
			lo, hi := maxi64(i, p.base), mini64(end, p.limit)
			copy(p.d.data[lo-p.base:hi-p.base], src[lo-i:hi-i])
			if m := a.model; m != nil {
				cc := m.CopyCost(int(8 * (hi - lo)))
				a.child(tc, a.self(), trace.StageService, "range-copy", p.d.ci, ctx.Clock.Now(), ctx.Clock.Now()+cc)
				ctx.Clock.Advance(cc)
			}
			ctx.Stats.Ops++
		}, tc)
		return
	}
	for len(src) > 0 {
		p := a.pin(ctx, i, wantPinWrite, 0, tc)
		if p == nil {
			return // cluster failed; see ctx.Err
		}
		n := p.Limit() - i
		if n > int64(len(src)) {
			n = int64(len(src))
		}
		base := i - p.First()
		copy(p.d.data[base:base+n], src[:n])
		if m := a.model; m != nil {
			cc := m.CopyCost(int(8 * n))
			a.child(tc, a.self(), trace.StageService, "range-copy", p.d.ci, ctx.Clock.Now(), ctx.Clock.Now()+cc)
			ctx.Clock.Advance(cc)
		}
		ctx.Stats.Ops++
		p.Unpin(ctx)
		src = src[n:]
		i += n
	}
}

// ApplyRange combines src[k] into element i+k for every k under the
// registered operator — a bulk Operate.
func (a *Array) ApplyRange(ctx *cluster.Ctx, op OpID, i int64, src []uint64) {
	if len(src) == 0 {
		return
	}
	var tc trace.Ctx
	var t0 int64
	if a.trc != nil {
		tc, t0 = a.rootSpan(ctx)
		if tc.Trace != 0 {
			defer a.endRoot(ctx, tc, "ApplyRange", i/a.sh.chunkWords, t0)
		}
	}
	if a.shipMode != shipOff {
		ciLo := i / a.sh.chunkWords
		ciHi := (i + int64(len(src)) - 1) / a.sh.chunkWords
		if a.shipActiveRange(ciLo, ciHi, op) {
			a.applyRangeShipped(ctx, op, i, src, tc)
			return
		}
	}
	if ciLo, ciHi, ok := a.usePipeline(i, int64(len(src))); ok {
		end := i + int64(len(src))
		a.rangePipeline(ctx, ciLo, ciHi, wantPinOperate, op, func(p *Pin) {
			lo, hi := maxi64(i, p.base), mini64(end, p.limit)
			for k := lo; k < hi; k++ {
				p.Apply(ctx, k, src[k-i])
			}
		}, tc)
		return
	}
	for len(src) > 0 {
		p := a.pin(ctx, i, wantPinOperate, op, tc)
		if p == nil {
			return // cluster failed; see ctx.Err
		}
		n := p.Limit() - i
		if n > int64(len(src)) {
			n = int64(len(src))
		}
		for k := int64(0); k < n; k++ {
			p.Apply(ctx, i+k, src[k])
		}
		p.Unpin(ctx)
		src = src[n:]
		i += n
	}
}

// Reduce folds the whole array through the registered operator on the
// calling thread (chunk-pinned reads) and returns the result, starting
// from the operator's identity. It is a read-side convenience, not a
// collective: each caller scans the full array.
func (a *Array) Reduce(ctx *cluster.Ctx, op OpID) uint64 {
	o := a.op(op)
	acc := o.Identity
	buf := make([]uint64, a.sh.chunkWords)
	for i := int64(0); i < a.sh.n; {
		n := a.sh.chunkWords
		if i+n > a.sh.n {
			n = a.sh.n - i
		}
		a.GetRange(ctx, i, buf[:n])
		for _, v := range buf[:n] {
			acc = o.Fn(acc, v)
		}
		i += n
	}
	return acc
}
