package core

import (
	"darray/internal/cluster"
)

// Bulk transfers: chunk-wise ranged reads and writes. Internally each
// covered chunk is pinned once, so a bulk operation costs one reference
// acquisition per chunk instead of per element — the natural companion
// to the Pin interface for dense transfers (and the access pattern GAM
// was designed around, cf. §2).

// GetRange copies elements [i, i+len(dst)) into dst.
func (a *Array) GetRange(ctx *cluster.Ctx, i int64, dst []uint64) {
	for len(dst) > 0 {
		p := a.PinRead(ctx, i)
		n := p.Limit() - i
		if n > int64(len(dst)) {
			n = int64(len(dst))
		}
		base := i - p.First()
		copy(dst[:n], p.d.data[base:base+n])
		if m := a.model; m != nil {
			ctx.Clock.Advance(m.CopyCost(int(8 * n)))
		}
		ctx.Stats.Ops++
		p.Unpin(ctx)
		dst = dst[n:]
		i += n
	}
}

// SetRange copies src into elements [i, i+len(src)).
func (a *Array) SetRange(ctx *cluster.Ctx, i int64, src []uint64) {
	for len(src) > 0 {
		p := a.PinWrite(ctx, i)
		n := p.Limit() - i
		if n > int64(len(src)) {
			n = int64(len(src))
		}
		base := i - p.First()
		copy(p.d.data[base:base+n], src[:n])
		if m := a.model; m != nil {
			ctx.Clock.Advance(m.CopyCost(int(8 * n)))
		}
		ctx.Stats.Ops++
		p.Unpin(ctx)
		src = src[n:]
		i += n
	}
}

// ApplyRange combines src[k] into element i+k for every k under the
// registered operator — a bulk Operate.
func (a *Array) ApplyRange(ctx *cluster.Ctx, op OpID, i int64, src []uint64) {
	for len(src) > 0 {
		p := a.PinOperate(ctx, i, op)
		n := p.Limit() - i
		if n > int64(len(src)) {
			n = int64(len(src))
		}
		for k := int64(0); k < n; k++ {
			p.Apply(ctx, i+k, src[k])
		}
		p.Unpin(ctx)
		src = src[n:]
		i += n
	}
}

// Reduce folds the whole array through the registered operator on the
// calling thread (chunk-pinned reads) and returns the result, starting
// from the operator's identity. It is a read-side convenience, not a
// collective: each caller scans the full array.
func (a *Array) Reduce(ctx *cluster.Ctx, op OpID) uint64 {
	o := a.op(op)
	acc := o.Identity
	buf := make([]uint64, a.sh.chunkWords)
	for i := int64(0); i < a.sh.n; {
		n := a.sh.chunkWords
		if i+n > a.sh.n {
			n = a.sh.n - i
		}
		a.GetRange(ctx, i, buf[:n])
		for _, v := range buf[:n] {
			acc = o.Fn(acc, v)
		}
		i += n
	}
	return acc
}
