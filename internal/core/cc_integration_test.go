package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"darray/internal/cluster"
	"darray/internal/vtime"
)

// captureSchedule runs a remote GetRange over nChunks chunks on a
// 2-node cluster and returns the pipeline's issue/await interleaving as
// a string like "i0 i1 a0 i2 a1 ...". Single app thread, so the hook
// sequence is deterministic.
func captureSchedule(t *testing.T, cfg cluster.Config, opts Options, nChunks int64) string {
	t.Helper()
	cfg.Nodes = 2
	cfg.ChunkWords = 64
	cfg.Model = vtime.Default()
	c := cluster.New(cfg)
	defer c.Close()
	var sched []string
	c.Run(func(n *cluster.Node) {
		a := New(n, 2*64*nChunks, opts) // nChunks homed per node
		ctx := n.NewCtx(0)
		c.Barrier(ctx)
		if n.ID() == 1 {
			pipeHook = func(op byte, ci int64) {
				sched = append(sched, fmt.Sprintf("%c%d", op, ci))
			}
			dst := make([]uint64, 64*nChunks)
			a.GetRange(ctx, 0, dst) // node 0's whole partition: all remote
			pipeHook = nil
		}
		c.Barrier(ctx)
	})
	return strings.Join(sched, " ")
}

// fixedSchedule is the static-knob pipeline schedule over n chunks at
// depth K, exactly as the pre-CC implementation interleaved it: K
// issues up front, then one issue immediately after each await until
// the range is exhausted.
func fixedSchedule(n, k int64) string {
	if k > n {
		k = n
	}
	var s []string
	for i := int64(0); i < k; i++ {
		s = append(s, fmt.Sprintf("i%d", i))
	}
	next := k
	for ci := int64(0); ci < n; ci++ {
		s = append(s, fmt.Sprintf("a%d", ci))
		if next < n {
			s = append(s, fmt.Sprintf("i%d", next))
			next++
		}
	}
	return strings.Join(s, " ")
}

// TestNoCCScheduleBitIdentical locks the NoCC ablation to the fixed-
// depth issue schedule the static knobs produced before congestion
// control existed: depth issues up front, then strictly one issue per
// completion. Any window gating leaking into the NoCC path breaks the
// exact interleaving.
func TestNoCCScheduleBitIdentical(t *testing.T) {
	const chunks, depth = 16, 4
	got := captureSchedule(t, cluster.Config{
		RuntimeThreads: 1, CacheChunks: 64,
		PipelineDepth: depth, PrefetchAhead: -1, NoCC: true,
	}, Options{}, chunks)
	if want := fixedSchedule(chunks, depth); got != want {
		t.Fatalf("NoCC schedule diverged from fixed-depth behaviour:\n got: %s\nwant: %s", got, want)
	}
}

// TestNoCCArrayOptionSchedule covers the per-array ablation: a CC-
// enabled cluster still runs this one array at the fixed schedule.
func TestNoCCArrayOptionSchedule(t *testing.T) {
	const chunks, depth = 12, 4
	got := captureSchedule(t, cluster.Config{
		RuntimeThreads: 1, CacheChunks: 64,
		PipelineDepth: depth, PrefetchAhead: -1,
	}, Options{NoCC: true}, chunks)
	if want := fixedSchedule(chunks, depth); got != want {
		t.Fatalf("Options.NoCC schedule diverged:\n got: %s\nwant: %s", got, want)
	}
}

// TestAdaptiveSlowStartNarrowsBurst checks the tentpole's issue-side
// effect: with congestion control active and a deep static knob, the
// initial burst is the controller's initial window (4 chunks), not the
// configured depth — the knob is a ceiling, not a setting.
func TestAdaptiveSlowStartNarrowsBurst(t *testing.T) {
	const chunks, depth = 16, 12
	got := strings.Fields(captureSchedule(t, cluster.Config{
		RuntimeThreads: 1, CacheChunks: 64,
		PipelineDepth: depth, PrefetchAhead: -1,
	}, Options{}, chunks))
	burst := 0
	for _, ev := range got {
		if ev[0] != 'i' {
			break
		}
		burst++
	}
	if burst != 4 {
		t.Fatalf("adaptive initial burst = %d issues, want the initial window 4 (schedule %v)", burst, got)
	}
	// The schedule still covers every chunk in order.
	var issues, awaits int
	for _, ev := range got {
		switch ev[0] {
		case 'i':
			issues++
		case 'a':
			awaits++
		}
	}
	if issues != chunks || awaits != chunks {
		t.Fatalf("schedule covered %d issues / %d awaits, want %d each", issues, awaits, chunks)
	}
}

// TestPrefetchDemandCredit exercises the spare-credit cap: speculation
// is refused once in-flight demand exhausts the window (even under
// NoCC, where the window is the fixed depth), and allowed again when
// demand drains.
func TestPrefetchDemandCredit(t *testing.T) {
	c := tc(t, 2, func(cfg *cluster.Config) {
		cfg.PipelineDepth = 4
		cfg.NoCC = true
	})
	c.Run(func(n *cluster.Node) {
		a := New(n, 2 * 64 * 8)
		ctx := n.NewCtx(0)
		c.Barrier(ctx)
		if n.ID() == 1 {
			if got := a.spareCredit(ctx, 0); got != 4 {
				t.Errorf("idle spare credit = %d, want the fixed depth 4", got)
			}
			for i := 0; i < 4; i++ {
				ctx.DemandStart()
			}
			if got := a.spareCredit(ctx, 0); got != 0 {
				t.Errorf("saturated spare credit = %d, want 0", got)
			}
			before := a.Metrics.PrefetchThrottled.Load()
			a.speculate(ctx, 1) // remote, absent — only credit can refuse it
			if got := a.Metrics.PrefetchThrottled.Load(); got != before+1 {
				t.Errorf("saturated speculate: throttled %d -> %d, want +1", before, got)
			}
			for i := 0; i < 4; i++ {
				ctx.DemandEnd()
			}
			pf := a.Metrics.Prefetches.Load()
			a.speculate(ctx, 1)
			for i := 0; a.Metrics.Prefetches.Load() != pf+1; i++ {
				if i > 10000 {
					t.Error("drained speculate never issued a prefetch")
					break
				}
				time.Sleep(100 * time.Microsecond)
			}
		}
		c.Barrier(ctx)
	})
}

// TestAdaptivePrefetchCreditTracksWindow checks the adaptive half of
// the credit: a fresh controller's window (initial window 4) bounds
// speculation even when the static depth is larger.
func TestAdaptivePrefetchCreditTracksWindow(t *testing.T) {
	c := tc(t, 2, func(cfg *cluster.Config) { cfg.PipelineDepth = 16 })
	c.Run(func(n *cluster.Node) {
		a := New(n, 2 * 64 * 8)
		ctx := n.NewCtx(0)
		c.Barrier(ctx)
		if n.ID() == 1 {
			if got := a.spareCredit(ctx, 0); got != 4 {
				t.Errorf("fresh adaptive spare credit = %d, want initial window 4", got)
			}
		}
		c.Barrier(ctx)
	})
}

// TestAdaptiveBulkCorrectness streams SetRange/GetRange across node
// boundaries with congestion control active and a small cache, checking
// the adaptive schedule never corrupts data or leaks pins.
func TestAdaptiveBulkCorrectness(t *testing.T) {
	c := tc(t, 3, func(cfg *cluster.Config) { cfg.CacheChunks = 16 })
	var handle *Array
	c.Run(func(n *cluster.Node) {
		const words = 3 * 64 * 8
		a := New(n, words)
		if n.ID() == 0 {
			handle = a
		}
		ctx := n.NewCtx(0)
		c.Barrier(ctx)
		if n.ID() == 0 {
			src := make([]uint64, words)
			for i := range src {
				src[i] = uint64(13*i + 5)
			}
			a.SetRange(ctx, 0, src)
		}
		c.Barrier(ctx)
		got := make([]uint64, words)
		a.GetRange(ctx, 0, got)
		for i := range got {
			if got[i] != uint64(13*i+5) {
				t.Errorf("node %d: [%d] = %d, want %d", n.ID(), i, got[i], 13*i+5)
				return
			}
		}
		c.Barrier(ctx)
	})
	if err := ValidateQuiesced(handle.Instances()); err != nil {
		t.Fatal(err)
	}
}
