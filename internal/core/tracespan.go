package core

import (
	"darray/internal/cluster"
	"darray/internal/fabric"
	"darray/internal/trace"
)

// Causal-tracing glue between the coherence protocol and internal/trace.
//
// Every helper here is defensive about cost: with no tracer attached the
// fast paths pay one nil check, with a tracer attached but disabled one
// atomic load, and untraced messages flowing through a tracing-enabled
// cluster pay a zero-struct comparison. Spans carry virtual time, so
// tracing additionally requires a vtime model — without one every
// begin/end would be zero and the spans meaningless.

// traceOn reports whether spans can be recorded right now.
func (a *Array) traceOn() bool {
	return a.trc != nil && a.trc.Enabled() && a.model != nil
}

// rootSpan decides whether this public op is sampled and, if so, opens
// its root context. Callers must guard with a.trc != nil so untraced
// arrays pay only that nil check. Returns the zero Ctx when tracing is
// off or the sampler skips this op.
func (a *Array) rootSpan(ctx *cluster.Ctx) (trace.Ctx, int64) {
	if !a.trc.Enabled() || a.model == nil {
		return trace.Ctx{}, 0
	}
	tc := a.trc.SampleRoot()
	if !tc.Valid() {
		return trace.Ctx{}, 0
	}
	return tc, ctx.Clock.Now()
}

// endRoot closes a sampled op's root span at the thread's current
// virtual time. Call sites guard on tc.Trace != 0.
func (a *Array) endRoot(ctx *cluster.Ctx, tc trace.Ctx, name string, ci, t0 int64) {
	a.trc.RecordRoot(tc, int32(a.self()), name, ci, t0, ctx.Clock.Now())
}

// child chains one span onto tc, tolerating a nil tracer and a zero
// context (both no-ops returning tc unchanged).
func (a *Array) child(tc trace.Ctx, node int, stage trace.Stage, name string, chunk, begin, end int64) trace.Ctx {
	if !tc.Valid() || a.trc == nil {
		return tc
	}
	return a.trc.Child(tc, int32(node), stage, name, chunk, begin, end)
}

// msgSpans emits the transport-stage spans for one received traced
// message — sender doorbell-queue wait, wire flight, retransmission
// delay, receiver RPC-queue wait, and the handler's service slot — and
// returns the chained context for the handler's protocol action.
// Zero-length stages are skipped by Child, so e.g. the retransmit span
// only appears on messages the fault layer actually delayed.
func (a *Array) msgSpans(m *fabric.Message, start, end int64) trace.Ctx {
	tc := trace.Ctx{Trace: m.Trace, Span: m.PSpan}
	if !tc.Valid() || !a.traceOn() {
		return trace.Ctx{}
	}
	wireEnd := m.VT - m.RetransNs
	tc = a.child(tc, m.From, trace.StageQueue, "tx-queue", m.Chunk, m.QueuedVT, m.SendVT)
	tc = a.child(tc, m.From, trace.StageWire, "wire", m.Chunk, m.SendVT, wireEnd)
	tc = a.child(tc, m.From, trace.StageRetransmit, "retransmit", m.Chunk, wireEnd, m.VT)
	tc = a.child(tc, a.self(), trace.StageQueue, "rx-queue", m.Chunk, m.VT, start)
	tc = a.child(tc, a.self(), trace.StageService, kindName(m.Kind), m.Chunk, start, end)
	return tc
}
