package core

import (
	"strings"
	"testing"

	"darray/internal/cluster"
)

func TestTraceRecordsProtocolEvents(t *testing.T) {
	c := tc(t, 2)
	c.Run(func(n *cluster.Node) {
		a := New(n, 2*64)
		ctx := n.NewCtx(0)
		a.EnableTrace(64)
		c.Barrier(ctx)
		if n.ID() == 1 {
			_ = a.Get(ctx, 0) // remote read: local-req at 1, read-req at 0
		}
		c.Barrier(ctx)
		evs := a.TraceEvents()
		var kinds []string
		for _, e := range evs {
			kinds = append(kinds, e.Kind)
		}
		joined := strings.Join(kinds, ",")
		if n.ID() == 1 && !strings.Contains(joined, "local-req") {
			t.Errorf("requester trace missing local-req: %v", kinds)
		}
		if n.ID() == 1 && !strings.Contains(joined, "data-resp") {
			t.Errorf("requester trace missing data-resp: %v", kinds)
		}
		if n.ID() == 0 && !strings.Contains(joined, "read-req") {
			t.Errorf("home trace missing read-req: %v", kinds)
		}
		c.Barrier(ctx)
	})
}

func TestTraceRingWraps(t *testing.T) {
	c := tc(t, 2)
	c.Run(func(n *cluster.Node) {
		a := New(n, 2*64*8)
		ctx := n.NewCtx(0)
		a.EnableTrace(8)
		c.Barrier(ctx)
		if n.ID() == 1 {
			for i := int64(0); i < 64*8; i += 64 {
				_ = a.Get(ctx, i) // many chunks: > 8 events
			}
			evs := a.TraceEvents()
			if len(evs) != 8 {
				t.Errorf("ring returned %d events, want 8", len(evs))
			}
			for i := 1; i < len(evs); i++ {
				if evs[i].Seq <= evs[i-1].Seq {
					t.Errorf("trace not ordered: %v", evs)
					break
				}
			}
		}
		c.Barrier(ctx)
	})
}

func TestTraceDisabled(t *testing.T) {
	c := tc(t, 2)
	c.Run(func(n *cluster.Node) {
		a := New(n, 2*64)
		ctx := n.NewCtx(0)
		c.Barrier(ctx)
		_ = a.Get(ctx, 0)
		c.Barrier(ctx)
		if len(a.TraceEvents()) != 0 {
			t.Error("events recorded while tracing disabled")
		}
		a.EnableTrace(4)
		a.DisableTrace()
		if n.ID() == 1 {
			_ = a.Get(ctx, 64)
		}
		c.Barrier(ctx)
		if len(a.TraceEvents()) != 0 {
			t.Error("events recorded after DisableTrace")
		}
		c.Barrier(ctx)
	})
}

func TestTraceEventString(t *testing.T) {
	e := TraceEvent{Seq: 3, Node: 1, Chunk: 7, Kind: "read-req", From: 2}
	s := e.String()
	for _, want := range []string{"#3", "n1", "chunk 7", "read-req", "from=2"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestKindNames(t *testing.T) {
	for k := uint8(0); k <= msgUnlock; k++ {
		if strings.HasPrefix(kindName(k), "kind-") {
			t.Errorf("message kind %d has no name", k)
		}
	}
	if kindName(200) != "kind-200" {
		t.Error("unknown kind should fall back to numeric form")
	}
}
