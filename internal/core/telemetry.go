package core

import (
	"sync/atomic"

	"darray/internal/telemetry"
)

// Transition identifies one edge of the home directory's coherence state
// machine (paper Figure 5 / Table 1). Self-loops that admit another
// participant (a new sharer joining Shared, a new combiner joining
// Operated) are counted as their own edges: they are the protocol's
// sharing-amortization events, and their ratio to full state changes is
// what explains cached-read scaling (Figure 13).
type Transition int

const (
	TransUnsharedToShared Transition = iota
	TransUnsharedToDirty
	TransUnsharedToOperated
	TransSharedToUnshared
	TransSharedToDirty
	TransSharedToOperated
	TransSharedAddSharer
	TransDirtyToShared
	TransDirtyToUnshared
	TransOperatedToUnshared
	TransOperatedAddNode
	NumTransitions
)

var transitionNames = [NumTransitions]string{
	"unshared->shared",
	"unshared->dirty",
	"unshared->operated",
	"shared->unshared",
	"shared->dirty",
	"shared->operated",
	"shared+sharer",
	"dirty->shared",
	"dirty->unshared",
	"operated->unshared",
	"operated+node",
}

// String returns the edge's stable metric name.
func (t Transition) String() string {
	if t < 0 || t >= NumTransitions {
		return "unknown"
	}
	return transitionNames[t]
}

// transition counts one directory state-machine edge. Runs on the home
// runtime goroutine (slow path), so an unconditional atomic add is fine.
func (a *Array) transition(t Transition) {
	a.Metrics.Transitions[t].Add(1)
}

// telOn reports whether fast-path telemetry collection is enabled: one
// atomic load, the only cost instrumentation adds to the lock-free data
// access paths when metrics are off.
func (a *Array) telOn() bool {
	return a.reg != nil && a.reg.Enabled()
}

// KindName maps protocol message kinds to stable names (exported for
// fabric per-kind reports, which treat kinds as opaque numbers).
func KindName(k uint8) string {
	if k > msgShipReply {
		return ""
	}
	return kindName(k)
}

// counterMetric builds a single-node counter Metric for collectMetrics.
func counterMetric(name string, node int, v *atomic.Int64) telemetry.Metric {
	per := make([]int64, node+1)
	per[node] = v.Load()
	return telemetry.Metric{Name: name, Kind: telemetry.KindCounter, PerNode: per}
}

// collectMetrics contributes this node's protocol counters to cluster
// metrics snapshots. Registered per Array instance at wire() time; the
// owning cluster folds final values into the registry on Close.
func (a *Array) collectMetrics(emit telemetry.Emit) {
	node := a.node.ID()
	m := &a.Metrics
	for _, c := range []struct {
		name string
		v    *atomic.Int64
	}{
		{"core/cache/hits", &m.Hits},
		{"core/cache/misses", &m.Misses},
		{"core/cache/fills", &m.Fills},
		{"core/cache/evictions", &m.Evictions},
		{"core/cache/writebacks", &m.WriteBacks},
		{"core/cache/prefetches", &m.Prefetches},
		{"core/prefetch/issued", &m.Prefetches},
		{"core/prefetch/hits", &m.PrefetchHits},
		{"core/prefetch/wasted", &m.PrefetchWasted},
		{"core/prefetch/throttled", &m.PrefetchThrottled},
		{"core/cc/backoffs", &m.CCBackoffs},
		{"core/cache/reclaim_sweeps", &m.ReclaimSweeps},
		{"core/cache/reclaim_scanned", &m.ReclaimScanned},
		{"core/cache/delay_stalls", &m.DelayStalls},
		{"core/cache/ref_drain_stalls", &m.RefDrainStalls},
		{"core/pin/fast", &m.PinFast},
		{"core/pin/slow", &m.PinSlow},
		{"core/operate/combines", &m.Combines},
		{"core/operate/flushes", &m.OpFlushes},
		{"core/operate/merges", &m.OpMerges},
		{"core/operate/merges_voluntary", &m.OpMergesVoluntary},
		{"core/operate/merges_recalled", &m.OpMergesRecalled},
		{"core/ship/ops", &m.ShipOps},
		{"core/ship/flips", &m.ShipFlips},
		{"core/ship/bytes_saved", &m.ShipBytesSaved},
		{"core/coherence/invalidations", &m.Invals},
		{"core/coherence/recalls", &m.Recalls},
		{"core/coherence/downgrades", &m.Downgrades},
		{"core/alloc/lease", &m.Leases},
		{"core/alloc/adopt", &m.Adopts},
		{"core/alloc/donate", &m.Donates},
		{"core/alloc/copy", &m.PayloadCopies},
	} {
		emit(counterMetric(c.name, node, c.v))
	}
	for t := Transition(0); t < NumTransitions; t++ {
		emit(counterMetric("core/coherence/"+t.String(), node, &m.Transitions[t]))
	}
	for _, h := range []struct {
		name string
		h    *telemetry.Histogram
	}{
		{"core/cc/cwnd", &a.ccCwnd},
		{"core/cc/srtt", &a.ccSrtt},
	} {
		d := h.h.Data()
		if d.Count == 0 {
			continue
		}
		per := make([]int64, node+1)
		per[node] = d.Count
		emit(telemetry.Metric{Name: h.name, Kind: telemetry.KindHistogram, PerNode: per, Hist: d})
	}
}
