package core

import (
	"runtime"
	"sync/atomic"

	"darray/internal/cluster"
	"darray/internal/trace"
)

// Get reads element i (paper Figure 4). The fast path costs one atomic
// read of the delay flag, two atomic refcnt updates, and a few branches;
// when the chunk is not readable locally the request goes to the runtime
// via the local-request queue and the thread blocks until it is filled.
func (a *Array) Get(ctx *cluster.Ctx, i int64) uint64 {
	ci, off := a.locate(i)
	d := &a.dents[ci]
	ctx.Stats.Ops++
	if m := a.model; m != nil {
		ctx.Clock.Advance(m.GetHit)
	}
	var tc trace.Ctx
	var t0 int64
	if a.trc != nil {
		tc, t0 = a.rootSpan(ctx)
	}
	if off == a.seqTrig {
		// Mid-chunk sample point for the sequential-access detector: one
		// int compare per Get when the detector is off (seqTrig == -1).
		a.noteSeq(ctx, ci)
	}
	for {
		if d.delay.Load() { // prevent runtime starvation
			if a.telOn() {
				a.Metrics.DelayStalls.Add(1)
			}
			for d.delay.Load() {
				runtime.Gosched()
			}
		}
		d.refcnt.Add(1) // hold a reference
		st := d.state.Load()
		if p := statePerm(st); p == permRead || p == permRW {
			// Atomic load (a plain MOV on amd64): combining — a local
			// Apply hit or a shipped op at the home — CASes this word
			// concurrently with readers.
			v := atomic.LoadUint64(&d.data[off])
			d.refcnt.Add(-1) // release the reference
			ctx.Stats.Hits++
			if a.telOn() {
				a.Metrics.Hits.Add(1)
				a.notePrefetchHit(d)
			}
			if tc.Trace != 0 {
				a.endRoot(ctx, tc, "Get", ci, t0)
			}
			return v
		}
		d.refcnt.Add(-1)
		if !a.slowPath(ctx, d, ci, wantRead, 0, tc) {
			if tc.Trace != 0 {
				a.endRoot(ctx, tc, "Get", ci, t0)
			}
			return 0 // cluster failed; see ctx.Err
		}
	}
}

// Set writes element i. It requires exclusive (RW) permission; like a
// native array, concurrent unsynchronized Set/Get of the same element by
// different application threads is the application's race to manage.
func (a *Array) Set(ctx *cluster.Ctx, i int64, v uint64) {
	ci, off := a.locate(i)
	d := &a.dents[ci]
	ctx.Stats.Ops++
	if m := a.model; m != nil {
		ctx.Clock.Advance(m.SetHit)
	}
	var tc trace.Ctx
	var t0 int64
	if a.trc != nil {
		tc, t0 = a.rootSpan(ctx)
	}
	for {
		if d.delay.Load() {
			if a.telOn() {
				a.Metrics.DelayStalls.Add(1)
			}
			for d.delay.Load() {
				runtime.Gosched()
			}
		}
		d.refcnt.Add(1)
		st := d.state.Load()
		if statePerm(st) == permRW {
			d.data[off] = v
			d.refcnt.Add(-1)
			ctx.Stats.Hits++
			if a.telOn() {
				a.Metrics.Hits.Add(1)
			}
			if tc.Trace != 0 {
				a.endRoot(ctx, tc, "Set", ci, t0)
			}
			return
		}
		d.refcnt.Add(-1)
		if !a.slowPath(ctx, d, ci, wantWrite, 0, tc) {
			if tc.Trace != 0 {
				a.endRoot(ctx, tc, "Set", ci, t0)
			}
			return // cluster failed; see ctx.Err
		}
	}
}

// Apply performs val[i] = op(val[i], operand) with Operate semantics
// (paper §4.3): on a chunk in the Operated state the operand is combined
// into the node's local combine buffer with a CAS loop, so any number of
// threads on any number of nodes proceed concurrently; the home node
// merges combined buffers when the chunk is read, written, or evicted.
// A home-node thread holding Unshared (RW) permission applies directly.
func (a *Array) Apply(ctx *cluster.Ctx, op OpID, i int64, operand uint64) {
	ci, off := a.locate(i)
	d := &a.dents[ci]
	fn := a.op(op).Fn
	ctx.Stats.Ops++
	if m := a.model; m != nil {
		ctx.Clock.Advance(m.ApplyHit)
	}
	var tc trace.Ctx
	var t0 int64
	if a.trc != nil {
		tc, t0 = a.rootSpan(ctx)
	}
	for {
		if d.delay.Load() {
			if a.telOn() {
				a.Metrics.DelayStalls.Add(1)
			}
			for d.delay.Load() {
				runtime.Gosched()
			}
		}
		d.refcnt.Add(1)
		st := d.state.Load()
		if p := statePerm(st); p == permRW || (p == permOperated && stateOp(st) == op) {
			addr := &d.data[off]
			for {
				old := atomic.LoadUint64(addr)
				if atomic.CompareAndSwapUint64(addr, old, fn(old, operand)) {
					break
				}
			}
			d.refcnt.Add(-1)
			ctx.Stats.Hits++
			ctx.Stats.Combines++
			if a.telOn() {
				a.Metrics.Hits.Add(1)
				a.Metrics.Combines.Add(1)
			}
			if tc.Trace != 0 {
				a.endRoot(ctx, tc, "Apply", ci, t0)
			}
			return
		}
		d.refcnt.Add(-1)
		if a.shipWanted(d, ci, op) {
			// Active path: ship the op to the home instead of acquiring
			// Operated permission. The op is complete when the reply lands.
			a.shipOne(ctx, d, ci, off, op, operand, tc)
			if tc.Trace != 0 {
				a.endRoot(ctx, tc, "Apply", ci, t0)
			}
			return
		}
		if !a.slowPath(ctx, d, ci, wantOperate, op, tc) {
			if tc.Trace != 0 {
				a.endRoot(ctx, tc, "Apply", ci, t0)
			}
			return // cluster failed; see ctx.Err
		}
	}
}

// slowPath submits a request to the runtime owning chunk ci and blocks
// until the runtime reports a state change, then the caller retries its
// fast path. The response carries the virtual completion time.
//
// Returns false when the request completed with an error (the fabric
// gave up on a peer): the caller must abandon the operation and return a
// zero value instead of retrying — the error is recorded on ctx.
func (a *Array) slowPath(ctx *cluster.Ctx, d *dentry, ci int64, want uint8, op OpID, tc trace.Ctx) bool {
	if ctx.Err() != nil {
		return false
	}
	ctx.Stats.Misses++
	if a.telOn() {
		a.Metrics.Misses.Add(1)
	}
	vt := ctx.Clock.Now()
	if m := a.model; m != nil {
		vt += m.SlowFixed
	}
	if tc.Trace != 0 {
		tc = a.trc.Child(tc, int32(a.self()), trace.StageService, "submit", ci, ctx.Clock.Now(), vt)
	}
	rt := a.rtOf(ci)
	w := a.getWaiter()
	*w = waiter{ctx: ctx, want: want, op: op, vt: vt, tc: tc}
	ctx.DemandStart()
	rt.Submit(func(rt *cluster.Runtime) {
		a.handleLocal(rt, d, ci, w)
	})
	resp := ctx.WaitResp()
	ctx.DemandEnd()
	if resp.Err != nil {
		return false
	}
	ctx.Clock.AdvanceTo(resp.VT)
	return true
}
