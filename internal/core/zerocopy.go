package core

import (
	"sync"

	"darray/internal/buf"
	"darray/internal/fabric"
)

// Zero-copy data-path plumbing. When the cluster's buffer pool is
// active (a.pooled), every protocol payload lives in a refcounted
// buf.Ref leased from the pool, protocol messages and slow-path waiters
// are recycled through sync.Pools, and a chunk buffer changes owner
// instead of being copied wherever the protocol transfers ownership:
//
//	lease  — home grants and writebacks fill a pooled buffer (one copy
//	         out of the memory region, as on real hardware)
//	adopt  — a cache installs an inbound grant by taking over its
//	         buffer as the cache line's backing store (no copy)
//	donate — a dying cache line's buffer becomes the outbound
//	         writeback/flush payload (no copy)
//
// Virtual-time charges are identical in both modes: the vtime model
// prices the DMA out of (or into) the registered region, which happens
// on real hardware whether or not host memory is recycled. Only real
// allocator traffic differs, which is what the NoPool ablation isolates.

// waiterPool recycles slow-path waiters process-wide. Only pooled
// arrays allocate from it; lock waiters are excluded (they complete
// through ctx directly, never through respond, so their lifecycle has
// no single release point).
var waiterPool sync.Pool

func (a *Array) getWaiter() *waiter {
	if a.pooled {
		if v := waiterPool.Get(); v != nil {
			return v.(*waiter)
		}
	}
	return &waiter{}
}

// putWaiter recycles a waiter after its completion was delivered; the
// single call site is respond.
func (a *Array) putWaiter(w *waiter) {
	if !a.pooled {
		return
	}
	*w = waiter{}
	waiterPool.Put(w)
}

// recycleMsg returns a fully handled protocol message — and any payload
// reference still attached — to the pools. Handlers that adopt the
// payload clear m.Payload first, so the Release here is a no-op for
// them. NoPool leaves everything to the GC, exactly as before.
func (a *Array) recycleMsg(m *fabric.Message) {
	if !a.pooled {
		return
	}
	m.Payload.Release()
	fabric.FreeMessage(m)
}

// leasePayload returns an n-word outbound payload buffer: leased from
// the cluster pool when pooling is on, freshly allocated otherwise. The
// returned ref (nil under NoPool) must be attached to the outbound
// fMsg, transferring ownership to the receiver.
func (a *Array) leasePayload(n int) ([]uint64, *buf.Ref) {
	if a.pooled {
		ref := a.pool.Get(n)
		a.Metrics.Leases.Add(1)
		return ref.Words(), ref
	}
	return make([]uint64, n), nil
}

// takeLineData surrenders d's cache-line buffer as an outbound payload.
// The caller must be about to release the line (recall, op-recall,
// eviction): ownership of the buffer moves to the message zero-copy.
// Without a pooled line buffer it falls back to lease-and-copy.
func (a *Array) takeLineData(d *dentry) ([]uint64, *buf.Ref) {
	if a.pooled && d.line != nil && d.line.ref != nil {
		ref := d.line.ref
		data := d.line.data
		d.line.ref = nil
		d.line.data = nil
		a.Metrics.Donates.Add(1)
		return data, ref
	}
	data, ref := a.leasePayload(len(d.data))
	copy(data, d.data)
	if a.pooled {
		a.Metrics.PayloadCopies.Add(1)
	}
	return data, ref
}

// ensureLineData guarantees d's cache line has backing words, leasing
// them from the pool on first use (pooled lines start empty; they are
// normally backed by adopting an inbound grant). Pooled mode only;
// requires d.line != nil.
func (a *Array) ensureLineData(d *dentry) {
	ln := d.line
	if ln.data != nil {
		d.data = ln.data
		return
	}
	ref := a.pool.Get(int(a.sh.chunkWords))
	a.Metrics.Leases.Add(1)
	ln.ref = ref
	ln.data = ref.Words()
	d.data = ln.data
}

// installGrant installs an inbound msgDataResp payload into d's cache
// line. When the grant arrived in a pooled, chunk-sized buffer the line
// adopts it outright — the receive path's copy disappears; otherwise
// the words are copied into (possibly freshly leased) line backing.
func (a *Array) installGrant(d *dentry, m *fabric.Message) {
	if a.pooled {
		if m.Payload != nil && int64(len(m.Data)) == a.sh.chunkWords {
			ln := d.line
			if ln.ref != nil {
				ln.ref.Release() // drop the previously adopted backing
			}
			ln.ref = m.Payload
			ln.data = m.Data
			d.data = m.Data
			m.Payload = nil // ownership moved to the line
			a.Metrics.Adopts.Add(1)
			return
		}
		a.ensureLineData(d)
		a.Metrics.PayloadCopies.Add(1)
	}
	copy(d.data, m.Data)
}
