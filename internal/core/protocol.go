package core

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"darray/internal/buf"
	"darray/internal/cluster"
	"darray/internal/fabric"
	"darray/internal/trace"
)

// Protocol message kinds. Requests flow cache→home, grants and
// coherence commands flow home→cache; the fabric guarantees per-pair
// FIFO and chunk→runtime placement guarantees per-chunk ordering.
const (
	msgReadReq uint8 = iota
	msgWriteReq
	msgOperateReq
	msgDataResp // Val carries the granted permission
	msgOpGrant
	msgInvalidate
	msgInvAck
	msgDowngrade // Dirty owner: write back, keep a Shared copy
	msgRecall    // Dirty owner: write back and invalidate
	msgOpRecall  // operating node: flush combined operands, invalidate
	msgWBData    // chunk data to home (recall response or voluntary evict)
	msgOpFlush   // combined operands to home
	msgLockReq   // Idx = element, Flag = writer
	msgLockGrant
	msgUnlock
	msgShipOp    // shipped Operate: Idx = offset, Val = operand (Flag: Data = batch)
	msgShipReply // shipped Operate done; Val carries the home's mode hint
)

type fMsg struct {
	to    int
	kind  uint8
	chunk int64
	op    OpID
	idx   int64
	val   uint64
	flag  bool
	data  []uint64
	pay   *buf.Ref // pool buffer backing data; ownership moves with the send
	vt    int64
	tc    trace.Ctx // causal-trace chain to carry in the message header
}

func (a *Array) send(m *fMsg) {
	if a.pooled {
		fm := fabric.NewMessage()
		fm.To, fm.Array, fm.Kind, fm.Chunk = m.to, a.sh.id, m.kind, m.chunk
		fm.OpID, fm.Idx, fm.Val, fm.Flag = int32(m.op), m.idx, m.val, m.flag
		fm.Data, fm.Payload, fm.SendVT = m.data, m.pay, m.vt
		fm.Trace, fm.PSpan, fm.QueuedVT = m.tc.Trace, m.tc.Span, m.vt
		a.node.Send(fm)
		return
	}
	a.node.Send(&fabric.Message{
		To: m.to, Array: a.sh.id, Kind: m.kind, Chunk: m.chunk,
		OpID: int32(m.op), Idx: m.idx, Val: m.val, Flag: m.flag,
		Data: m.data, SendVT: m.vt,
		Trace: m.tc.Trace, PSpan: m.tc.Span, QueuedVT: m.vt,
	})
}

// charge accounts one runtime service slot starting at vt and returns
// the virtual completion time (zero when no model is configured).
func (a *Array) charge(rt *cluster.Runtime, vt int64) int64 {
	_, end := a.charge2(rt, vt)
	return end
}

// charge2 is charge exposing the slot's start time as well: start - vt
// is how long the request sat in the runtime's RPC queue, the first
// segment of a slow-path miss's latency breakdown.
func (a *Array) charge2(rt *cluster.Runtime, vt int64) (start, end int64) {
	m := a.model
	if m == nil {
		return 0, 0
	}
	return rt.Res.Acquire(vt, m.RPCService)
}

func (a *Array) copyCost(words int) int64 {
	if a.model == nil {
		return 0
	}
	return a.model.CopyCost(8 * words)
}

func (a *Array) self() int { return a.node.ID() }

// handleMsg is the Rx route target: it runs on the runtime goroutine
// owning m.Chunk.
//
// Message lifecycle: every handler except the two grant installers is
// synchronous — any data it needs from m is consumed before it returns
// (serveHome copies the request fields; handleWBData and handleOpFlush
// copy/merge the payload into the home region inline) — so m is
// recycled here on return. msgDataResp/msgOpGrant may stall (line
// allocation, reference drain) with m captured by the continuation;
// those handlers own m and recycle it once the install completes.
func (a *Array) handleMsg(rt *cluster.Runtime, m *fabric.Message) {
	switch m.Kind {
	case msgLockReq, msgLockGrant, msgUnlock:
		a.handleLockMsg(rt, m)
		a.recycleMsg(m)
		return
	}
	d := &a.dents[m.Chunk]
	start, svt := a.charge2(rt, m.VT)
	tc := a.msgSpans(m, start, svt)
	a.trace(kindName(m.Kind), m.Chunk, m.From, m.VT, tc)
	switch m.Kind {
	case msgReadReq:
		a.serveHome(rt, d, homeReq{from: m.From, want: wantRead, vt: svt, tc: tc})
	case msgWriteReq:
		a.serveHome(rt, d, homeReq{from: m.From, want: wantWrite, vt: svt, tc: tc})
	case msgOperateReq:
		a.serveHome(rt, d, homeReq{from: m.From, want: wantOperate, op: OpID(m.OpID), vt: svt, tc: tc})
	case msgDataResp:
		a.handleDataResp(rt, d, m, svt, tc)
		return // the install continuation recycles m
	case msgOpGrant:
		a.handleOpGrant(rt, d, m, svt)
		return // the install continuation recycles m
	case msgInvalidate:
		a.handleInvalidate(rt, d, m, svt, tc)
	case msgInvAck:
		a.handleInvAck(rt, d, svt)
	case msgDowngrade:
		a.handleDowngrade(rt, d, svt, tc)
	case msgRecall:
		a.handleRecall(rt, d, svt, tc)
	case msgOpRecall:
		a.handleOpRecall(rt, d, svt, tc)
	case msgWBData:
		a.handleWBData(rt, d, m, svt, tc)
	case msgOpFlush:
		a.handleOpFlush(rt, d, m, svt)
	case msgShipOp:
		r := homeReq{from: m.From, want: wantShip, op: OpID(m.OpID), vt: svt, tc: tc,
			idx: m.Idx, val: m.Val}
		if m.Flag {
			// Batched variant: the operand buffer (and its pooled backing)
			// moves to the request so it survives deferrals and
			// continuations; shipApply releases it after the merge.
			r.data, r.pay = m.Data, m.Payload
			m.Payload = nil
		}
		a.serveHome(rt, d, r)
	case msgShipReply:
		a.handleShipReply(rt, d, m, svt, tc)
	default:
		panic(fmt.Sprintf("core: unknown message kind %d", m.Kind))
	}
	a.recycleMsg(m)
}

// handleLocal is the runtime-side entry for a local slow-path request.
func (a *Array) handleLocal(rt *cluster.Runtime, d *dentry, ci int64, w *waiter) {
	start, svt := a.charge2(rt, w.vt)
	if w.tc.Valid() && a.traceOn() {
		tc := a.child(w.tc, a.self(), trace.StageQueue, "rt-queue", ci, w.vt, start)
		w.tc = a.child(tc, a.self(), trace.StageService, "local-req", ci, start, svt)
	}
	a.trace("local-req", ci, -1, w.vt, w.tc)
	if satisfies(d.state.Load(), w.want, w.op) {
		w.vt = svt
		a.respond(rt, d, w, maxi64(svt, d.tvt))
		return
	}
	w.vt = svt
	if a.homeOfChunk(ci) == a.self() {
		// Only a request that directly starts its directory transaction
		// counts as linked: its wait is decomposed by the transaction's
		// own spans. A deferral leaves linked false so respond's
		// chunk-wait span covers the opaque busy window.
		if !d.busy {
			w.linked = true
		}
		a.serveHome(rt, d, homeReq{from: a.self(), want: baseWant(w.want), op: w.op, vt: svt, w: w, tc: w.tc})
	} else {
		a.cacheRequest(rt, d, w)
	}
}

// respond completes a local waiter. For pin requests the runtime takes
// the reference on the waiter's behalf before replying, closing the
// window in which another transition could intervene.
func (a *Array) respond(rt *cluster.Runtime, d *dentry, w *waiter, vt int64) {
	if w.tc.Valid() && !w.linked && vt > w.vt && a.traceOn() {
		// Piggybacked or deferred waiter: its wait is not decomposed by a
		// transaction chain of its own, so one queue span covers it.
		a.child(w.tc, a.self(), trace.StageQueue, "chunk-wait", d.ci, w.vt, vt)
	}
	var val uint64
	if isPin(w.want) && satisfies(d.state.Load(), w.want, w.op) {
		d.refcnt.Add(1)
		val = 1
	}
	tok, ctx := w.tok, w.ctx
	a.putWaiter(w) // every slow-path waiter is released exactly here
	// d.retrans is non-zero only while a remote grant whose delivery
	// needed go-back-N recovery completes its waiters: the loss signal
	// the requester's congestion controller reacts to.
	if tok != nil {
		tok.Complete(cluster.Resp{VT: vt, Val: val, RetransNs: d.retrans})
		return
	}
	ctx.Complete(cluster.Resp{VT: vt, Val: val, RetransNs: d.retrans})
}

func maxi64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func mini64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------------
// Home side: the directory state machine (paper Figure 9, Table 1).

type homeReq struct {
	from int
	want uint8
	op   OpID
	vt   int64
	w    *waiter   // non-nil for local requests
	tc   trace.Ctx // requester's causal-trace chain (zero when untraced)

	// Shipped-Operate operands (want == wantShip): chunk-relative offset,
	// one operand or a batch with its pooled backing (see deferredReq).
	idx  int64
	val  uint64
	data []uint64
	pay  *buf.Ref
}

// serveHome starts (or defers) a directory transaction for chunk d.
func (a *Array) serveHome(rt *cluster.Runtime, d *dentry, r homeReq) {
	if d.busy {
		d.defrd = append(d.defrd, deferredReq{from: r.from, want: r.want, op: r.op, vt: r.vt, w: r.w, tc: r.tc,
			idx: r.idx, val: r.val, data: r.data, pay: r.pay})
		return
	}
	d.busy = true
	if r.tc.Valid() && d.tvt > r.vt && a.traceOn() {
		// The directory clock is ahead of the requester: the request spent
		// [r.vt, d.tvt] serialized behind earlier transactions on this
		// chunk (including any time parked in the deferred list).
		r.tc = a.child(r.tc, a.self(), trace.StageQueue, "dir-wait", d.ci, r.vt, d.tvt)
	}
	d.tvt = maxi64(d.tvt, r.vt)
	d.tctx = r.tc
	a.homeStep(rt, d, r)
}

// homeStep dispatches one directory transaction. Transitions that must
// wait (reference drains, invalidation acks, recalls) continue through
// callbacks and re-enter homeStep or finish via homeDone.
func (a *Array) homeStep(rt *cluster.Runtime, d *dentry, r homeReq) {
	if r.want == wantShip {
		a.homeShip(rt, d, r)
		return
	}
	local := r.from == a.self()
	switch d.dstate {
	case dirUnshared:
		a.homeFromUnshared(rt, d, r, local)
	case dirShared:
		a.homeFromShared(rt, d, r, local)
	case dirDirty:
		a.homeFromDirty(rt, d, r, local)
	case dirOperated:
		if !local && r.want == wantOperate && r.op == d.opID {
			if d.opNodes&(1<<uint(r.from)) == 0 {
				a.transition(TransOperatedAddNode)
				a.noteShip(d, r.from, 1)
			} else {
				a.noteShip(d, r.from, 0)
			}
			d.opNodes |= 1 << uint(r.from)
			a.grantOperate(rt, d, r)
			return
		}
		if local && satisfies(d.state.Load(), r.want, r.op) {
			// Home already holds Operated(op) permission locally.
			a.homeFinish(rt, d, r)
			return
		}
		a.collapseOperated(rt, d, func(rt *cluster.Runtime) {
			a.homeStep(rt, d, r)
		})
	default:
		panic("core: bad directory state")
	}
}

func (a *Array) homeFromUnshared(rt *cluster.Runtime, d *dentry, r homeReq, local bool) {
	if local {
		// Unshared already grants the home node R/W/O.
		a.homeFinish(rt, d, r)
		return
	}
	switch r.want {
	case wantRead:
		a.demoteLocal(rt, d, permRead, func(rt *cluster.Runtime) {
			a.transition(TransUnsharedToShared)
			d.dstate = dirShared
			d.sharers = 1 << uint(r.from)
			a.grantData(rt, d, r, permRead)
		})
	case wantWrite:
		a.demoteLocal(rt, d, permInvalid, func(rt *cluster.Runtime) {
			a.transition(TransUnsharedToDirty)
			d.dstate = dirDirty
			d.owner = int32(r.from)
			a.grantData(rt, d, r, permRW)
		})
	case wantOperate:
		a.noteShip(d, r.from, 1)
		a.demoteLocal(rt, d, packState(permOperated, r.op), func(rt *cluster.Runtime) {
			a.transition(TransUnsharedToOperated)
			d.dstate = dirOperated
			d.opID = r.op
			d.opNodes = 1 << uint(r.from)
			a.grantOperate(rt, d, r)
		})
	}
}

func (a *Array) homeFromShared(rt *cluster.Runtime, d *dentry, r homeReq, local bool) {
	switch r.want {
	case wantRead:
		if local {
			a.homeFinish(rt, d, r) // home perm is Read already
			return
		}
		if d.sharers&(1<<uint(r.from)) == 0 {
			a.transition(TransSharedAddSharer)
		}
		d.sharers |= 1 << uint(r.from)
		a.grantData(rt, d, r, permRead)
	case wantWrite:
		except := -1
		if !local {
			except = r.from
		}
		a.invalidateSharers(rt, d, except, func(rt *cluster.Runtime) {
			if local {
				// Permission promotion Read→RW needs no drain (Fig. 6).
				a.transition(TransSharedToUnshared)
				d.dstate = dirUnshared
				d.state.Store(permRW)
				a.homeFinish(rt, d, r)
				return
			}
			a.demoteLocal(rt, d, permInvalid, func(rt *cluster.Runtime) {
				a.transition(TransSharedToDirty)
				d.dstate = dirDirty
				d.owner = int32(r.from)
				a.grantData(rt, d, r, permRW)
			})
		})
	case wantOperate:
		except := -1
		if !local {
			except = r.from
		}
		a.invalidateSharers(rt, d, except, func(rt *cluster.Runtime) {
			if local {
				a.transition(TransSharedToUnshared)
				d.dstate = dirUnshared
				d.state.Store(permRW) // RW satisfies Apply at home
				a.homeFinish(rt, d, r)
				return
			}
			a.noteShip(d, r.from, 1)
			a.demoteLocal(rt, d, packState(permOperated, r.op), func(rt *cluster.Runtime) {
				a.transition(TransSharedToOperated)
				d.dstate = dirOperated
				d.opID = r.op
				d.opNodes = 1 << uint(r.from)
				a.grantOperate(rt, d, r)
			})
		})
	}
}

func (a *Array) homeFromDirty(rt *cluster.Runtime, d *dentry, r homeReq, local bool) {
	owner := int(d.owner)
	if !local && owner == r.from {
		panic("core: dirty owner re-requested ownership")
	}
	if !local && r.want == wantRead {
		// Dirty --Remote R--> Shared: the owner keeps a Shared copy.
		a.downgradeDirty(rt, d, func(rt *cluster.Runtime) {
			a.transition(TransDirtyToShared)
			d.dstate = dirShared
			d.sharers = (1 << uint(owner)) | (1 << uint(r.from))
			d.state.Store(permRead)
			a.grantData(rt, d, r, permRead)
		})
		return
	}
	a.recallDirty(rt, d, func(rt *cluster.Runtime) {
		a.transition(TransDirtyToUnshared)
		d.dstate = dirUnshared
		d.owner = -1
		d.state.Store(permRW)
		a.homeStep(rt, d, r)
	})
}

// homeFinish completes a transaction whose requester is the home node.
func (a *Array) homeFinish(rt *cluster.Runtime, d *dentry, r homeReq) {
	if r.w != nil {
		a.respond(rt, d, r.w, d.tvt)
	}
	a.homeDone(rt, d)
}

// grantData replies to a remote requester with a copy of the chunk.
// Home storage is a contiguous registered region, so the copy out of it
// stays (and is charged) in both modes; pooling only recycles the
// buffer the copy lands in.
func (a *Array) grantData(rt *cluster.Runtime, d *dentry, r homeReq, perm uint32) {
	data, pay := a.leasePayload(len(d.data))
	copy(data, d.data)
	cc := a.copyCost(len(data))
	tc := a.child(d.tctx, a.self(), trace.StageService, "copy-out", d.ci, d.tvt, d.tvt+cc)
	a.send(&fMsg{to: r.from, kind: msgDataResp, chunk: d.ci, val: uint64(perm),
		data: data, pay: pay, vt: d.tvt + cc, tc: tc})
	a.homeDone(rt, d)
}

// grantOperate replies to a remote Operate request; no data moves (the
// requester initializes a combine buffer with the operator identity).
// Val piggybacks the home's current shipping hint so a cache that keeps
// combining under a stale grant steers to the active path after its
// next collapse.
func (a *Array) grantOperate(rt *cluster.Runtime, d *dentry, r homeReq) {
	a.send(&fMsg{to: r.from, kind: msgOpGrant, chunk: d.ci, op: d.opID,
		val: a.shipHint(d), vt: d.tvt, tc: d.tctx})
	a.homeDone(rt, d)
}

// homeDone ends the current transaction and serves deferred requests.
func (a *Array) homeDone(rt *cluster.Runtime, d *dentry) {
	d.busy = false
	a.drainDeferred(rt, d, d.ci)
}

// drainDeferred re-dispatches requests that arrived during a transaction
// (home side) or an eviction (cache side).
func (a *Array) drainDeferred(rt *cluster.Runtime, d *dentry, ci int64) {
	for !d.busy && len(d.defrd) > 0 {
		r := d.defrd[0]
		d.defrd = d.defrd[1:]
		if len(d.defrd) == 0 {
			d.defrd = nil
		}
		if a.homeOfChunk(ci) == a.self() {
			if r.w != nil && satisfies(d.state.Load(), r.want, r.op) {
				a.respond(rt, d, r.w, maxi64(r.vt, d.tvt))
				continue
			}
			a.serveHome(rt, d, homeReq{from: r.from, want: r.want, op: r.op, vt: r.vt, w: r.w, tc: r.tc,
				idx: r.idx, val: r.val, data: r.data, pay: r.pay})
			continue
		}
		// Cache side: deferred coherence commands.
		switch r.want {
		case defInvalidate:
			a.handleInvalidate(rt, d, &fabric.Message{From: r.from, Chunk: ci}, r.vt, r.tc)
		case defDowngrade:
			a.handleDowngrade(rt, d, r.vt, r.tc)
		case defRecall:
			a.handleRecall(rt, d, r.vt, r.tc)
		case defOpRecall:
			a.handleOpRecall(rt, d, r.vt, r.tc)
		}
	}
	// A cache-side dentry may have collected waiters during an eviction.
	if !d.busy && !d.pending && len(d.waiters) > 0 && a.homeOfChunk(ci) != a.self() {
		a.issueRequest(rt, d)
	}
}

// Cache-side deferred command tags (reuse deferredReq.want).
const (
	defInvalidate uint8 = 100 + iota
	defDowngrade
	defRecall
	defOpRecall
)

// demoteLocal changes the local access permission, waiting out live
// references when the change revokes rights (paper Figure 5); pure
// promotions skip the drain (Figure 6). The new state is only published
// after the reference count drains: that ordering is what lets a Pin
// (a held reference) forbid the runtime from degrading the chunk's
// permission while pinned accessors bypass the delay/refcnt atomics.
// New application threads are parked on the delay flag meanwhile.
// cont runs on this runtime goroutine.
func (a *Array) demoteLocal(rt *cluster.Runtime, d *dentry, newState uint32, cont func(rt *cluster.Runtime)) {
	old := d.state.Load()
	if old == newState {
		cont(rt)
		return
	}
	op, np := statePerm(old), statePerm(newState)
	if op == permInvalid || (op == permRead && np == permRW) {
		d.state.Store(newState)
		cont(rt)
		return
	}
	d.delay.Store(true) // block incoming application threads
	if d.refcnt.Load() == 0 {
		d.state.Store(newState)
		d.delay.Store(false)
		cont(rt)
		return
	}
	a.Metrics.RefDrainStalls.Add(1)
	rt.Stall(func(rt *cluster.Runtime) bool {
		if d.refcnt.Load() != 0 {
			return false
		}
		d.state.Store(newState)
		d.delay.Store(false)
		cont(rt)
		return true
	})
}

// invalidateSharers sends invalidations to every sharer except `except`
// and continues once all acks arrive.
func (a *Array) invalidateSharers(rt *cluster.Runtime, d *dentry, except int, cont func(rt *cluster.Runtime)) {
	mask := d.sharers
	if except >= 0 {
		mask &^= 1 << uint(except)
	}
	d.sharers = 0
	n := bits.OnesCount64(mask)
	if n == 0 {
		cont(rt)
		return
	}
	d.acks = n
	d.onAcks = cont
	d.fanVT = d.tvt
	for v := 0; mask != 0; v++ {
		if mask&1 != 0 {
			a.send(&fMsg{to: v, kind: msgInvalidate, chunk: d.ci, vt: d.tvt, tc: d.tctx})
		}
		mask >>= 1
	}
}

func (a *Array) handleInvAck(rt *cluster.Runtime, d *dentry, svt int64) {
	d.tvt = maxi64(d.tvt, svt)
	if d.acks == 0 || d.onAcks == nil {
		panic("core: unexpected invalidation ack")
	}
	d.acks--
	if d.acks == 0 {
		// One fanout span covers the whole multicast wait: fan-out start
		// to the last ack's service completion.
		d.tctx = a.child(d.tctx, a.self(), trace.StageFanout, "inv-fanout", d.ci, d.fanVT, d.tvt)
		cb := d.onAcks
		d.onAcks = nil
		cb(rt)
	}
}

// recallDirty demands the chunk back from its Dirty owner. The response
// (or a voluntary writeback that crossed on the wire) lands in
// handleWBData, which copies the data home before running cont.
func (a *Array) recallDirty(rt *cluster.Runtime, d *dentry, cont func(rt *cluster.Runtime)) {
	a.Metrics.Recalls.Add(1)
	d.onWB = func(rt *cluster.Runtime, data []uint64, vt int64) {
		copy(d.data, data)
		d.tvt = maxi64(d.tvt, vt)
		cont(rt)
	}
	a.send(&fMsg{to: int(d.owner), kind: msgRecall, chunk: d.ci, vt: d.tvt, tc: d.tctx})
}

// downgradeDirty asks the Dirty owner to write back but keep reading.
func (a *Array) downgradeDirty(rt *cluster.Runtime, d *dentry, cont func(rt *cluster.Runtime)) {
	a.Metrics.Downgrades.Add(1)
	d.onWB = func(rt *cluster.Runtime, data []uint64, vt int64) {
		copy(d.data, data)
		d.tvt = maxi64(d.tvt, vt)
		cont(rt)
	}
	a.send(&fMsg{to: int(d.owner), kind: msgDowngrade, chunk: d.ci, vt: d.tvt, tc: d.tctx})
}

func (a *Array) handleWBData(rt *cluster.Runtime, d *dentry, m *fabric.Message, svt int64, tc trace.Ctx) {
	if d.onWB != nil {
		cb := d.onWB
		d.onWB = nil
		end := svt + a.copyCost(len(m.Data))
		if tc.Valid() {
			// The writeback chain (descended from our recall/downgrade)
			// becomes the transaction chain for the rest of the grant.
			d.tctx = a.child(tc, a.self(), trace.StageService, "merge-wb", d.ci, svt, end)
		}
		cb(rt, m.Data, end)
		return
	}
	if d.busy {
		panic("core: voluntary writeback during unrelated transaction")
	}
	if d.dstate != dirDirty || int(d.owner) != m.From {
		panic("core: writeback from non-owner")
	}
	copy(d.data, m.Data)
	a.transition(TransDirtyToUnshared)
	d.dstate = dirUnshared
	d.owner = -1
	d.state.Store(permRW)
	d.tvt = maxi64(d.tvt, svt+a.copyCost(len(m.Data)))
	a.drainDeferred(rt, d, d.ci)
}

// collapseOperated drains the Operated state: home permission is revoked
// first (stopping local combining), then every operating node is asked
// to flush its combined operands, which the home merges; the chunk lands
// in Unshared with home RW permission.
func (a *Array) collapseOperated(rt *cluster.Runtime, d *dentry, cont func(rt *cluster.Runtime)) {
	a.bumpShip(d) // collapse churn feeds the contention estimator
	a.demoteLocal(rt, d, permInvalid, func(rt *cluster.Runtime) {
		mask := d.opNodes
		n := bits.OnesCount64(mask)
		finish := func(rt *cluster.Runtime) {
			a.transition(TransOperatedToUnshared)
			d.dstate = dirUnshared
			d.opNodes = 0
			d.opID = 0
			d.state.Store(permRW)
			cont(rt)
		}
		if n == 0 {
			finish(rt)
			return
		}
		d.opAcks = n
		d.onOpAll = finish
		d.fanVT = d.tvt
		for v := 0; mask != 0; v++ {
			if mask&1 != 0 {
				a.send(&fMsg{to: v, kind: msgOpRecall, chunk: d.ci, vt: d.tvt, tc: d.tctx})
			}
			mask >>= 1
		}
	})
}

// handleOpFlush merges a node's combined operand buffer into the home
// chunk. Identity elements are skipped; merging uses CAS because home
// application threads may be combining concurrently (voluntary flushes
// arrive while the chunk is still Operated).
func (a *Array) handleOpFlush(rt *cluster.Runtime, d *dentry, m *fabric.Message, svt int64) {
	op := a.op(OpID(m.OpID))
	a.mergeOperands(d, m.Data, op)
	a.Metrics.OpMerges.Add(1)
	if m.Flag {
		a.Metrics.OpMergesVoluntary.Add(1)
	} else {
		a.Metrics.OpMergesRecalled.Add(1)
	}
	d.opNodes &^= 1 << uint(m.From)
	d.tvt = maxi64(d.tvt, svt+a.copyCost(len(m.Data)))
	if d.opAcks > 0 {
		d.opAcks--
		if d.opAcks == 0 {
			d.tctx = a.child(d.tctx, a.self(), trace.StageFanout, "op-collapse", d.ci, d.fanVT, d.tvt)
			cb := d.onOpAll
			d.onOpAll = nil
			cb(rt)
		}
	}
}

func (a *Array) mergeOperands(d *dentry, buf []uint64, op *Op) {
	id := op.Identity
	fn := op.Fn
	for i, v := range buf {
		if v == id {
			continue
		}
		addr := &d.data[i]
		for {
			old := atomic.LoadUint64(addr)
			if atomic.CompareAndSwapUint64(addr, old, fn(old, v)) {
				break
			}
		}
	}
}
