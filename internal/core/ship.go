package core

import (
	"math/bits"
	"sync/atomic"

	"darray/internal/buf"
	"darray/internal/cluster"
	"darray/internal/fabric"
	"darray/internal/trace"
)

// Function shipping: the active-message Operate path (paper §4.3-4.4
// plus the RDMA-vs-RPC crossover of PAPERS.md). Instead of acquiring
// Operated permission and combining locally, a cache ships the op —
// operator id plus operand(s) — to the chunk's home, which applies it
// against the authoritative backing under the existing directory
// serialization: no ownership transfer, no combine-buffer flush at the
// next collapse, no chunk-sized payloads. Cached combining amortizes
// one grant over many local combines and wins when few nodes touch a
// chunk; shipping pays one header-sized round trip per op and wins when
// many nodes interleave reads and updates on a hot chunk, because every
// read/update cycle then costs the cached path a full Operated
// collapse (op-recall fan-out + per-combiner flushes + re-grants).
//
// Mode selection is per chunk. The home-side estimator watches the
// operate-family signals serveHome already sees (distinct requesters,
// Operated add-node/collapse churn, and the virtual-time rate at which
// they arrive) and flips the chunk between cached and shipped with
// hysteresis. Caches learn the home's decision from the mode hint
// piggybacked on every msgShipReply and msgOpGrant; a stale hint is
// only ever suboptimal, never incorrect, because the home applies
// shipped ops in every directory state.

// Shipping modes (Array.shipMode, resolved at construction from
// cluster.Config.Ship and core.Options).
const (
	shipOff  uint8 = iota // cached combining only: reproduces pre-shipping behaviour bit-for-bit
	shipAuto              // per-chunk estimator decides (requires a vtime model)
	shipOn                // every remote Apply ships
)

// shipModeOf parses a Config.Ship / Options.Ship knob value.
func shipModeOf(s string) uint8 {
	switch s {
	case "", "auto":
		return shipAuto
	case "on":
		return shipOn
	case "off":
		return shipOff
	}
	panic("core: ship mode must be auto, on, or off: " + s)
}

// Estimator tuning. All EWMAs are fixed-point (×16) and advance once
// per completed window of shipWindow operate-family events; the flip
// thresholds are deliberately asymmetric (hysteresis) so a chunk
// hovering at the boundary does not flap.
const (
	// shipWindow is the number of operate-family events per estimator
	// window.
	shipWindow = 16
	// shipAlpha is the EWMA smoothing shift: new = old + (sample-old)>>shipAlpha.
	shipAlpha = 1

	// Flip to shipped when, per window (EWMA): at least ~2.5 distinct
	// requester nodes, at least ~2 add-node/collapse churn events, and
	// the window's events arrived within shipHotSpan of virtual time (a
	// cold chunk can see every node eventually; only a hot one sees them
	// fast). 400 µs per 16 events sits between the ~200 µs a genuinely
	// hot chunk shows even while the cached path is thrashing and the
	// multi-millisecond windows of uniformly spread traffic.
	shipUpNodes = 2*16 + 8
	shipUpChurn = 2 * 16
	shipHotSpan = 400_000 * 16 // 400 µs per 16-event window, ×16
	// Flip back to cached when the requester diversity collapses or the
	// chunk has cooled well past the hot threshold.
	shipDownNodes = 1*16 + 8
	shipColdSpan  = 1_600_000 * 16
)

// shipEstimator is the per-chunk contention estimator, owned by the
// home chunk's runtime goroutine (no atomics needed). It decides
// between the two execution modes of a chunk's Operate traffic.
type shipEstimator struct {
	reqMask uint64 // distinct requesters seen this window
	events  int32  // operate-family events this window
	churn   int32  // add-node + collapse events this window
	winVT   int64  // virtual time the window opened

	nodesX16 int32 // EWMA: distinct requesters per window, ×16
	churnX16 int32 // EWMA: churn events per window, ×16
	spanX16  int64 // EWMA: window duration in virtual ns, ×16

	shipped bool // current mode: true = shipped, false = cached
}

// note feeds one operate-family event (a remote Operate request or a
// shipped op) from node `from`, with `churn` add-node/collapse events
// attributed to it, at virtual time nowVT. Returns true when the event
// completed a window whose EWMAs crossed a flip threshold.
func (e *shipEstimator) note(from int, churn int32, nowVT int64) bool {
	if e.events == 0 {
		e.winVT = nowVT
	}
	e.reqMask |= 1 << uint(from&63)
	e.churn += churn
	e.events++
	if e.events < shipWindow {
		return false
	}
	nodes := int32(bits.OnesCount64(e.reqMask)) << 4
	ch := e.churn << 4
	span := (nowVT - e.winVT) << 4
	if span < 0 {
		span = 0
	}
	e.nodesX16 += (nodes - e.nodesX16) >> shipAlpha
	e.churnX16 += (ch - e.churnX16) >> shipAlpha
	e.spanX16 += (span - e.spanX16) >> shipAlpha
	e.reqMask, e.events, e.churn = 0, 0, 0
	if !e.shipped {
		if e.nodesX16 >= shipUpNodes && e.churnX16 >= shipUpChurn && e.spanX16 <= shipHotSpan {
			e.shipped = true
			return true
		}
		return false
	}
	if e.nodesX16 <= shipDownNodes || e.spanX16 >= shipColdSpan {
		e.shipped = false
		return true
	}
	return false
}

// bump records one churn event (an Operated collapse) outside a request
// arrival; it is folded into the current window.
func (e *shipEstimator) bump() { e.churn++ }

// noteShip feeds the home-side estimator from a directory event. Only
// auto mode estimates, and only with a vtime model attached — the rate
// signal is meaningless at virtual time zero.
func (a *Array) noteShip(d *dentry, from int, churn int32) {
	if a.shipMode != shipAuto || a.model == nil {
		return
	}
	if d.est.note(from, churn, d.tvt) {
		a.Metrics.ShipFlips.Add(1)
	}
}

// bumpShip attributes an Operated collapse to the estimator's churn
// signal (same gating as noteShip).
func (a *Array) bumpShip(d *dentry) {
	if a.shipMode == shipAuto && a.model != nil {
		d.est.bump()
	}
}

// shipHint is the mode hint piggybacked on msgShipReply and msgOpGrant
// (1 = ship your next miss here). Off mode always sends 0, keeping the
// wire bytes identical to the pre-shipping protocol.
func (a *Array) shipHint(d *dentry) uint64 {
	if a.shipMode == shipAuto && d.est.shipped {
		return 1
	}
	return 0
}

// ---------------------------------------------------------------------------
// Home side: applying a shipped op.

// homeShip serves a wantShip directory transaction. The shipped op
// mutates the authoritative words, so any state granting other nodes a
// copy or exclusivity is folded back to Unshared first — with the one
// crucial exception: Operated under the same operator combines directly
// (commutative with every outstanding combine buffer), which is what
// makes a shipped op cheap exactly when the chunk is hottest.
func (a *Array) homeShip(rt *cluster.Runtime, d *dentry, r homeReq) {
	a.noteShip(d, r.from, 0)
	switch d.dstate {
	case dirUnshared:
		a.shipApply(rt, d, r)
	case dirOperated:
		if r.op == d.opID {
			// Home holds Operated(op): the shipped operand combines into
			// the backing exactly like a home-thread combine; no
			// transition, no churn.
			a.shipApply(rt, d, r)
			return
		}
		a.collapseOperated(rt, d, func(rt *cluster.Runtime) {
			a.homeStep(rt, d, r)
		})
	case dirShared:
		// Every Shared copy goes stale, including the requester's.
		a.invalidateSharers(rt, d, -1, func(rt *cluster.Runtime) {
			a.transition(TransSharedToUnshared)
			d.dstate = dirUnshared
			d.state.Store(permRW) // promotion Read→RW needs no drain
			a.shipApply(rt, d, r)
		})
	case dirDirty:
		a.recallDirty(rt, d, func(rt *cluster.Runtime) {
			a.transition(TransDirtyToUnshared)
			d.dstate = dirUnshared
			d.owner = -1
			d.state.Store(permRW)
			a.shipApply(rt, d, r)
		})
	default:
		panic("core: bad directory state")
	}
}

// shipApply applies a shipped op (single operand or batch) against the
// home backing and replies. Merging uses CAS like mergeOperands: home
// application threads may be writing or combining concurrently.
func (a *Array) shipApply(rt *cluster.Runtime, d *dentry, r homeReq) {
	op := a.op(r.op)
	words := 1
	if r.data != nil {
		words = len(r.data)
		id, fn := op.Identity, op.Fn
		for i, v := range r.data {
			if v == id {
				continue
			}
			casApply(&d.data[r.idx+int64(i)], v, fn)
		}
		r.pay.Release() // nil-safe; batch operands owned since handleMsg
	} else {
		casApply(&d.data[r.idx], r.val, op.Fn)
	}
	cc := a.copyCost(words)
	d.tctx = a.child(d.tctx, a.self(), trace.StageShip, "ship-apply", d.ci, d.tvt, d.tvt+cc)
	d.tvt += cc
	a.Metrics.ShipOps.Add(1)
	// bytes_saved is a documented estimate: a cached-mode combine of the
	// same operands would eventually flush a full chunk home, a shipped
	// op moves only its operands.
	if saved := 8 * (a.sh.chunkWords - int64(words)); saved > 0 {
		a.Metrics.ShipBytesSaved.Add(saved)
	}
	a.send(&fMsg{to: r.from, kind: msgShipReply, chunk: d.ci,
		val: a.shipHint(d), vt: d.tvt, tc: d.tctx})
	a.homeDone(rt, d)
}

func casApply(addr *uint64, v uint64, fn func(acc, operand uint64) uint64) {
	for {
		old := atomic.LoadUint64(addr)
		if atomic.CompareAndSwapUint64(addr, old, fn(old, v)) {
			return
		}
	}
}

// ---------------------------------------------------------------------------
// Cache side: issuing shipped ops.

// shipWanted reports whether a missing Apply on chunk ci should ship.
// Local permission always wins (combining under a held grant is free),
// and a home node never ships to itself.
func (a *Array) shipWanted(d *dentry, ci int64, op OpID) bool {
	switch a.shipMode {
	case shipOn:
	case shipAuto:
		if !d.ship.Load() {
			return false
		}
	default:
		return false
	}
	if satisfies(d.state.Load(), wantOperate, op) {
		return false
	}
	return a.homeOfChunk(ci) != a.self()
}

// shipOne ships a single Apply and waits for the home's reply, so every
// op issued before a barrier is home-applied before the barrier exits
// (the determinism chaos fingerprints rely on). Returns false when the
// cluster failed.
func (a *Array) shipOne(ctx *cluster.Ctx, d *dentry, ci, off int64, op OpID, operand uint64, tc trace.Ctx) bool {
	if ctx.Err() != nil {
		return false
	}
	ctx.Stats.Misses++
	if a.telOn() {
		a.Metrics.Misses.Add(1)
	}
	vt := ctx.Clock.Now()
	if m := a.model; m != nil {
		vt += m.SlowFixed
	}
	if tc.Trace != 0 {
		tc = a.trc.Child(tc, int32(a.self()), trace.StageShip, "ship-submit", ci, ctx.Clock.Now(), vt)
	}
	w := a.getWaiter()
	*w = waiter{ctx: ctx, want: wantShip, op: op, vt: vt, tc: tc, linked: true}
	a.rtOf(ci).Submit(func(rt *cluster.Runtime) {
		a.shipRequest(rt, d, w, off, operand, nil, nil)
	})
	resp := ctx.WaitResp()
	if resp.Err != nil {
		return false
	}
	ctx.Clock.AdvanceTo(resp.VT)
	return true
}

// shipRequest runs on the chunk's runtime goroutine: it queues the
// waiter on the chunk's ship FIFO and sends the msgShipOp. Per-pair
// fabric FIFO plus per-chunk runtime placement guarantee replies return
// in issue order, so handleShipReply matches the queue head.
func (a *Array) shipRequest(rt *cluster.Runtime, d *dentry, w *waiter, off int64, val uint64, data []uint64, pay *buf.Ref) {
	start, svt := a.charge2(rt, w.vt)
	if w.tc.Valid() && a.traceOn() {
		tc := a.child(w.tc, a.self(), trace.StageQueue, "rt-queue", d.ci, w.vt, start)
		w.tc = a.child(tc, a.self(), trace.StageService, "ship-req", d.ci, start, svt)
	}
	a.trace("ship-req", d.ci, -1, w.vt, w.tc)
	w.vt = svt
	d.shipQ = append(d.shipQ, w)
	a.send(&fMsg{to: a.homeOfChunk(d.ci), kind: msgShipOp, chunk: d.ci, op: w.op,
		idx: off, val: val, flag: data != nil, data: data, pay: pay, vt: svt, tc: w.tc})
}

// handleShipReply completes the oldest in-flight shipped op on this
// chunk and refreshes the cache's mode hint.
func (a *Array) handleShipReply(rt *cluster.Runtime, d *dentry, m *fabric.Message, svt int64, tc trace.Ctx) {
	if a.shipMode == shipAuto {
		d.ship.Store(m.Val != 0)
	}
	if len(d.shipQ) == 0 {
		panic("core: ship reply with no outstanding shipped op")
	}
	w := d.shipQ[0]
	copy(d.shipQ, d.shipQ[1:])
	d.shipQ[len(d.shipQ)-1] = nil
	d.shipQ = d.shipQ[:len(d.shipQ)-1]
	if tc.Valid() {
		w.tc = tc // the reply chain decomposed the wait
	}
	a.respond(rt, d, w, maxi64(svt, w.vt))
}

// ---------------------------------------------------------------------------
// Batched shipping for ApplyRange.

// shipActiveRange reports whether any chunk in [ciLo, ciHi] would take
// the shipped path right now. When none would, ApplyRange stays on the
// cached path untouched.
func (a *Array) shipActiveRange(ciLo, ciHi int64, op OpID) bool {
	if a.shipMode == shipOff {
		return false
	}
	for ci := ciLo; ci <= ciHi; ci++ {
		if a.shipWanted(&a.dents[ci], ci, op) {
			return true
		}
	}
	return false
}

// applyRangeShipped is ApplyRange's shipping-aware path: chunks whose
// mode is shipped get one batched msgShipOp each (operands ride the
// message, up to pipeline-depth batches in flight via tokens); the rest
// take the ordinary pin path.
func (a *Array) applyRangeShipped(ctx *cluster.Ctx, op OpID, i int64, src []uint64, tc trace.Ctx) {
	cw := a.sh.chunkWords
	end := i + int64(len(src))
	depth := a.pipeline
	if depth < 1 {
		depth = 1
	}
	toks := make([]*cluster.Token, 0, depth)
	// drain waits out the oldest in-flight batches until at most keep
	// remain; returns false once the cluster has failed.
	drain := func(keep int) bool {
		for len(toks) > keep {
			tok := toks[0]
			copy(toks, toks[1:])
			toks = toks[:len(toks)-1]
			resp := tok.Wait()
			if resp.Err != nil {
				// A failed wait may leave a late completion in the token's
				// channel; do not recycle it.
				ctx.Fail(resp.Err)
				return false
			}
			ctx.Clock.AdvanceTo(resp.VT)
			ctx.RecycleToken(tok)
		}
		return true
	}
	for ci := i / cw; ci*cw < end; ci++ {
		lo, hi := maxi64(i, ci*cw), mini64(end, (ci+1)*cw)
		d := &a.dents[ci]
		if !a.shipWanted(d, ci, op) {
			p := a.pin(ctx, lo, wantPinOperate, op, tc)
			if p == nil {
				return // cluster failed; see ctx.Err
			}
			for k := lo; k < hi; k++ {
				p.Apply(ctx, k, src[k-i])
			}
			p.Unpin(ctx)
			continue
		}
		if ctx.Err() != nil {
			return
		}
		ctx.Stats.Ops++
		ctx.Stats.Misses++
		if a.telOn() {
			a.Metrics.Misses.Add(1)
		}
		data, pay := a.leasePayload(int(hi - lo))
		copy(data, src[lo-i:hi-i])
		vt := ctx.Clock.Now()
		if m := a.model; m != nil {
			vt += m.SlowFixed + m.CopyCost(int(8*(hi-lo)))
		}
		btc := tc
		if tc.Trace != 0 {
			btc = a.trc.Child(tc, int32(a.self()), trace.StageShip, "ship-batch", ci, ctx.Clock.Now(), vt)
		}
		tok := ctx.AcquireToken()
		w := a.getWaiter()
		*w = waiter{ctx: ctx, tok: tok, want: wantShip, op: op, vt: vt, tc: btc, linked: true}
		off := lo - ci*cw
		a.rtOf(ci).Submit(func(rt *cluster.Runtime) {
			a.shipRequest(rt, d, w, off, 0, data, pay)
		})
		toks = append(toks, tok)
		if !drain(depth - 1) {
			return
		}
	}
	drain(0)
}
