package core

import (
	"runtime"
	"testing"

	"darray/internal/buf"
	"darray/internal/cluster"
)

// skipIfNotMeasurable skips allocation-delta tests in build modes whose
// allocator traffic is not representative of a release build.
func skipIfNotMeasurable(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("allocation measurement needs steady-state rounds")
	}
	if raceEnabled {
		t.Skip("race-detector bookkeeping allocates; Mallocs deltas are not comparable")
	}
	if buf.Debug {
		t.Skip("bufdebug quarantines released buffers; pooling is intentionally defeated")
	}
}

// allocWorkload builds a 2-node cluster and has node 0 repeatedly sweep
// node 1's partition, forcing every access through the cross-node miss
// slow path (CacheChunks is far below the remote partition size, so
// each round re-evicts and re-fetches). It reports heap allocations per
// slow-path miss, measured around the steady-state phase only.
func allocWorkload(t *testing.T, noPool bool, byRange bool) float64 {
	t.Helper()
	cfg := cluster.Config{Nodes: 2, ChunkWords: 64, CacheChunks: 8, NoPool: noPool}
	c := cluster.New(cfg)
	defer c.Close()

	const chunks = 64 // per-node partition, words = 64*64
	words := int64(cfg.ChunkWords) * chunks * int64(cfg.Nodes)
	var allocsPerMiss float64
	c.Run(func(n *cluster.Node) {
		a := New(n, words)
		if n.ID() != 0 {
			return
		}
		ctx := n.NewCtx(0)
		lo := words / 2 // start of node 1's partition
		sweep := func() {
			if byRange {
				dst := make([]uint64, cfg.ChunkWords)
				for i := lo; i < words; i += int64(cfg.ChunkWords) {
					a.GetRange(ctx, i, dst)
				}
				return
			}
			for i := lo; i < words; i += 8 {
				a.Get(ctx, i)
			}
		}
		sweep() // warm up pools and lazily-built state

		var before, after runtime.MemStats
		missBase := ctx.Stats.Misses
		runtime.GC()
		runtime.ReadMemStats(&before)
		for round := 0; round < 8; round++ {
			sweep()
		}
		runtime.ReadMemStats(&after)
		misses := ctx.Stats.Misses - missBase
		if misses == 0 {
			t.Fatal("workload produced no slow-path misses")
		}
		allocsPerMiss = float64(after.Mallocs-before.Mallocs) / float64(misses)
	})
	if err := c.Err(); err != nil {
		t.Fatalf("cluster failed: %v", err)
	}
	return allocsPerMiss
}

// TestPooledAllocsGet asserts the pooled data path allocates at most
// half as much per cross-node Get miss as the NoPool ablation — the
// PR's headline regression gate.
func TestPooledAllocsGet(t *testing.T) {
	skipIfNotMeasurable(t)
	pooled := allocWorkload(t, false, false)
	noPool := allocWorkload(t, true, false)
	t.Logf("Get: pooled %.2f allocs/miss, NoPool %.2f allocs/miss", pooled, noPool)
	if pooled > 0.5*noPool {
		t.Errorf("pooled Get path allocates %.2f/miss, want <= 50%% of NoPool (%.2f/miss)",
			pooled, noPool)
	}
}

// TestPooledAllocsGetRange asserts the same bound on the pipelined bulk
// path, which additionally exercises token and chunk-request recycling.
func TestPooledAllocsGetRange(t *testing.T) {
	skipIfNotMeasurable(t)
	pooled := allocWorkload(t, false, true)
	noPool := allocWorkload(t, true, true)
	t.Logf("GetRange: pooled %.2f allocs/miss, NoPool %.2f allocs/miss", pooled, noPool)
	if pooled > 0.5*noPool {
		t.Errorf("pooled GetRange path allocates %.2f/miss, want <= 50%% of NoPool (%.2f/miss)",
			pooled, noPool)
	}
}
