package core

import (
	"darray/internal/cluster"
	"darray/internal/trace"
)

// Pipelined bulk transfers (BCL-style aggregation, cf. PAPERS.md Brock
// et al.): a bulk range operation keeps up to PipelineDepth chunk
// acquisitions outstanding, so the coherence round trips for chunks
// i+1..i+K overlap the copy of chunk i instead of serializing one RTT
// per chunk. Each in-flight acquisition completes through its own
// cluster.Token, sidestepping the Ctx single-outstanding-request limit.

// chunkReq is one in-flight chunk acquisition of a bulk pipeline.
type chunkReq struct {
	ci  int64
	d   *dentry
	tok *cluster.Token // slow-path completion; nil when pin fast-granted
	pin *Pin           // non-nil when the lock-free fast path granted
}

// issueChunkInto starts acquiring a pin on chunk ci without blocking:
// one non-blocking fast-path attempt, then an asynchronous slow-path
// request completing through a token from the ctx freelist. A raised
// delay flag is not spun on — the runtime is mid-transition and the
// slow path will queue behind it. r is caller-provided storage (the
// pipeline reuses a fixed ring of requests instead of allocating one
// per chunk).
func (a *Array) issueChunkInto(ctx *cluster.Ctx, r *chunkReq, ci int64, want uint8, op OpID, fn func(acc, operand uint64) uint64, tc trace.Ctx) {
	d := &a.dents[ci]
	*r = chunkReq{ci: ci, d: d}
	ctx.Stats.Ops++
	if !d.delay.Load() {
		d.refcnt.Add(1)
		if satisfies(d.state.Load(), want, op) {
			ctx.Stats.Hits++
			if a.telOn() {
				a.Metrics.PinFast.Add(1)
				a.notePrefetchHit(d)
			}
			r.pin = a.mkPin(d, ci, fn, op)
			return
		}
		d.refcnt.Add(-1)
	}
	if ctx.Err() != nil {
		return // tok stays nil; awaitChunk reports the failure
	}
	ctx.Stats.Misses++
	if a.telOn() {
		a.Metrics.Misses.Add(1)
	}
	vt := ctx.Clock.Now()
	if m := a.model; m != nil {
		vt += m.SlowFixed
	}
	if tc.Trace != 0 {
		tc = a.trc.Child(tc, int32(a.self()), trace.StageService, "submit", ci, ctx.Clock.Now(), vt)
	}
	r.tok = ctx.AcquireToken()
	w := a.getWaiter()
	*w = waiter{ctx: ctx, tok: r.tok, want: want, op: op, vt: vt, tc: tc}
	a.rtOf(ci).Submit(func(rt *cluster.Runtime) {
		a.handleLocal(rt, d, ci, w)
	})
}

// awaitChunk blocks until r's acquisition completes and returns the pin,
// or nil when the cluster has failed (recorded on ctx). In the rare case
// that the granted state was lost again before the pin could be taken,
// it falls back to the synchronous pin path.
func (a *Array) awaitChunk(ctx *cluster.Ctx, r *chunkReq, want uint8, op OpID, fn func(acc, operand uint64) uint64, tc trace.Ctx) *Pin {
	if r.pin != nil {
		return r.pin
	}
	if r.tok == nil {
		return nil // issued after the cluster already failed
	}
	resp := r.tok.Wait()
	if resp.Err != nil {
		// Do not recycle the token: a failed wait may leave a late
		// completion in its channel.
		ctx.Fail(resp.Err)
		return nil
	}
	ctx.Clock.AdvanceTo(resp.VT)
	ctx.RecycleToken(r.tok)
	r.tok = nil
	if resp.Val == 1 {
		// The runtime took the reference on our behalf.
		if a.telOn() {
			a.Metrics.PinSlow.Add(1)
		}
		return a.mkPin(r.d, r.ci, fn, op)
	}
	return a.pin(ctx, r.ci*a.sh.chunkWords, want, op, tc)
}

// rangePipeline pins chunks [ciLo, ciHi] in order with up to
// a.pipeline acquisitions outstanding, calling process for each pinned
// chunk and unpinning it. The next acquisition is issued before the
// current chunk is processed, so the copy overlaps the fetch. Stops
// early (without process) once the cluster fails.
func (a *Array) rangePipeline(ctx *cluster.Ctx, ciLo, ciHi int64, want uint8, op OpID, process func(p *Pin), tc trace.Ctx) {
	var fn func(acc, operand uint64) uint64
	if want == wantPinOperate {
		fn = a.op(op).Fn
	}
	depth := int64(a.pipeline)
	if n := ciHi - ciLo + 1; depth > n {
		depth = n
	}
	// Fixed ring of request slots: slot (ci-ciLo)%depth is always free
	// again by the time ci needs it, because completions are consumed in
	// issue order.
	reqs := make([]chunkReq, depth)
	next := ciLo
	for i := int64(0); i < depth; i++ {
		a.issueChunkInto(ctx, &reqs[i], next, want, op, fn, tc)
		next++
	}
	for ci := ciLo; ci <= ciHi; ci++ {
		r := &reqs[(ci-ciLo)%depth]
		p := a.awaitChunk(ctx, r, want, op, fn, tc)
		if next <= ciHi {
			a.issueChunkInto(ctx, r, next, want, op, fn, tc)
			next++
		}
		if p == nil {
			return // cluster failed; remaining tokens die with it
		}
		process(p)
		p.Unpin(ctx)
	}
}

// ---------------------------------------------------------------------------
// Sequential-access detector (fast-path speculative prefetch).

// noteSeq feeds the detector with a fast-path touch of chunk ci. The
// whole state is one packed word (chunk<<8 | streak) updated with a
// single CAS; losing the CAS race means another thread observed an
// access concurrently, and the observation is simply dropped — the
// detector never blocks or retries on the fast path.
func (a *Array) noteSeq(ctx *cluster.Ctx, ci int64) {
	old := a.seq.Load()
	last, streak := old>>8, old&0xff
	if ci == last && streak != 0 {
		return // repeat touch of the same chunk: no new information
	}
	var ns int64
	if ci == last+1 && streak != 0 {
		ns = streak + 1
		if ns > 0xff {
			ns = 0xff
		}
	} else {
		ns = 1
	}
	if !a.seq.CompareAndSwap(old, ci<<8|ns) {
		return // contention: drop silently
	}
	if ns >= 2 {
		a.speculate(ctx, ci+1)
	}
}

// speculate submits a speculative fetch of chunk ci to its owning
// runtime. All checks here are advisory (the runtime dedups again in
// prefetchChunk); the fast path only pays them after the detector has
// already confirmed a streaming pattern.
func (a *Array) speculate(ctx *cluster.Ctx, ci int64) {
	if ci >= a.sh.nChunks || a.homeOfChunk(ci) == a.self() {
		return
	}
	d := &a.dents[ci]
	if statePerm(d.state.Load()) != permInvalid {
		return // already resident; in-flight fetches dedup on the runtime
	}
	vt := ctx.Clock.Now()
	a.rtOf(ci).Submit(func(rt *cluster.Runtime) {
		a.prefetchChunk(rt, d, vt)
	})
}

// notePrefetchHit attributes a fast-path hit to a speculative fill.
// Called under telOn: the common case (no outstanding prefetch mark)
// costs one atomic load.
func (a *Array) notePrefetchHit(d *dentry) {
	if d.pf.Load() && d.pf.CompareAndSwap(true, false) {
		a.Metrics.PrefetchHits.Add(1)
	}
}
