package core

import (
	"darray/internal/cc"
	"darray/internal/cluster"
	"darray/internal/trace"
)

// Pipelined bulk transfers (BCL-style aggregation, cf. PAPERS.md Brock
// et al.): a bulk range operation keeps multiple chunk acquisitions
// outstanding, so the coherence round trips for chunks i+1..i+K overlap
// the copy of chunk i instead of serializing one RTT per chunk. Each
// in-flight acquisition completes through its own cluster.Token,
// sidestepping the Ctx single-outstanding-request limit.
//
// How many acquisitions stay in flight depends on the mode. With
// congestion control active (the default) a per-(thread, destination)
// cc.Controller picks the window from observed virtual-time round
// trips, and the configured PipelineDepth is only its ceiling; under
// the NoCC ablation the fixed depth itself is the window, reproducing
// the static-knob issue schedule bit-for-bit.

// chunkReq is one in-flight chunk acquisition of a bulk pipeline.
type chunkReq struct {
	ci  int64
	d   *dentry
	tok *cluster.Token // slow-path completion; nil when pin fast-granted
	pin *Pin           // non-nil when the lock-free fast path granted

	// Congestion-control bookkeeping, set by the pipeline when the
	// acquisition went remote under an active controller: the
	// destination's controller, and the virtual time the request was
	// issued (completionVT - issueVT is the RTT sample).
	ctrl    *cc.Controller
	issueVT int64
}

// issueChunkInto starts acquiring a pin on chunk ci without blocking:
// one non-blocking fast-path attempt, then an asynchronous slow-path
// request completing through a token from the ctx freelist. A raised
// delay flag is not spun on — the runtime is mid-transition and the
// slow path will queue behind it. r is caller-provided storage (the
// pipeline reuses a fixed ring of requests instead of allocating one
// per chunk).
func (a *Array) issueChunkInto(ctx *cluster.Ctx, r *chunkReq, ci int64, want uint8, op OpID, fn func(acc, operand uint64) uint64, tc trace.Ctx) {
	d := &a.dents[ci]
	*r = chunkReq{ci: ci, d: d}
	ctx.Stats.Ops++
	if !d.delay.Load() {
		d.refcnt.Add(1)
		if satisfies(d.state.Load(), want, op) {
			ctx.Stats.Hits++
			if a.telOn() {
				a.Metrics.PinFast.Add(1)
				a.notePrefetchHit(d)
			}
			r.pin = a.mkPin(d, ci, fn, op)
			return
		}
		d.refcnt.Add(-1)
	}
	if ctx.Err() != nil {
		return // tok stays nil; awaitChunk reports the failure
	}
	ctx.Stats.Misses++
	if a.telOn() {
		a.Metrics.Misses.Add(1)
	}
	vt := ctx.Clock.Now()
	if m := a.model; m != nil {
		vt += m.SlowFixed
	}
	if tc.Trace != 0 {
		tc = a.trc.Child(tc, int32(a.self()), trace.StageService, "submit", ci, ctx.Clock.Now(), vt)
	}
	r.tok = ctx.AcquireToken()
	ctx.DemandStart()
	w := a.getWaiter()
	*w = waiter{ctx: ctx, tok: r.tok, want: want, op: op, vt: vt, tc: tc}
	a.rtOf(ci).Submit(func(rt *cluster.Runtime) {
		a.handleLocal(rt, d, ci, w)
	})
}

// awaitChunk blocks until r's acquisition completes and returns the pin,
// or nil when the cluster has failed (recorded on ctx). In the rare case
// that the granted state was lost again before the pin could be taken,
// it falls back to the synchronous pin path.
func (a *Array) awaitChunk(ctx *cluster.Ctx, r *chunkReq, want uint8, op OpID, fn func(acc, operand uint64) uint64, tc trace.Ctx) *Pin {
	if r.pin != nil {
		return r.pin
	}
	if r.tok == nil {
		return nil // issued after the cluster already failed
	}
	resp := r.tok.Wait()
	ctx.DemandEnd()
	if resp.Err != nil {
		// Do not recycle the token: a failed wait may leave a late
		// completion in its channel.
		ctx.Fail(resp.Err)
		return nil
	}
	ctx.Clock.AdvanceTo(resp.VT)
	ctx.RecycleToken(r.tok)
	r.tok = nil
	if r.ctrl != nil {
		// Feed the completed round trip to the destination's controller:
		// the sample carries both the queueing delay (resp.VT - issueVT)
		// and the fabric's go-back-N share (resp.RetransNs).
		ev := r.ctrl.OnAck(resp.VT, resp.VT-r.issueVT, resp.RetransNs)
		if ev != cc.EvGrow {
			a.Metrics.CCBackoffs.Add(1)
		}
		if a.telOn() {
			a.ccCwnd.Observe(int64(r.ctrl.Window(a.pipeline)))
			a.ccSrtt.Observe(r.ctrl.SrttNs())
		}
	}
	if resp.Val == 1 {
		// The runtime took the reference on our behalf.
		if a.telOn() {
			a.Metrics.PinSlow.Add(1)
		}
		return a.mkPin(r.d, r.ci, fn, op)
	}
	return a.pin(ctx, r.ci*a.sh.chunkWords, want, op, tc)
}

// pipeHook, when non-nil, observes every pipeline issue ('i') and await
// ('a') in program order — test instrumentation locking the NoCC
// schedule bit-for-bit to the fixed-depth behaviour. Set only from
// single-threaded tests before any bulk call.
var pipeHook func(op byte, ci int64)

// rangePipeline pins chunks [ciLo, ciHi] in order with up to depth
// acquisitions outstanding — the adaptive congestion window when
// control is active, the fixed a.pipeline otherwise — calling process
// for each pinned chunk and unpinning it. The next acquisitions are
// issued before the current chunk is processed, so the copy overlaps
// the fetch. Stops early (without process) once the cluster fails.
func (a *Array) rangePipeline(ctx *cluster.Ctx, ciLo, ciHi int64, want uint8, op OpID, process func(p *Pin), tc trace.Ctx) {
	var fn func(acc, operand uint64) uint64
	if want == wantPinOperate {
		fn = a.op(op).Fn
	}
	depth := int64(a.pipeline)
	if n := ciHi - ciLo + 1; depth > n {
		depth = n
	}
	// Fixed ring of request slots: slot (ci-ciLo)%depth is always free
	// again by the time ci needs it, because completions are consumed in
	// issue order and at most depth acquisitions are ever outstanding.
	reqs := make([]chunkReq, depth)
	adaptive := !a.ccOff && ctx.CCOn()
	// infl[dst] counts this range's slow-path acquisitions in flight
	// toward dst; the controller's window caps it per destination.
	var infl []int64
	if adaptive {
		infl = make([]int64, ctx.Node.Cluster().Nodes())
	}
	self := a.self()
	next := ciLo
	awaited := ciLo
	// blockedVT, when >= 0, is the virtual time since which the window
	// (not the ring) has withheld the next issue — surfaced as a "cc"
	// stage span so the critical-path report separates pacing from wire.
	blockedVT := int64(-1)
	issue := func() {
		for next <= ciHi && next-awaited < depth {
			dst := a.homeOfChunk(next)
			var ctrl *cc.Controller
			if adaptive && dst != self {
				ctrl = ctx.CC(dst)
				if infl[dst] >= int64(ctrl.Window(a.pipeline)) {
					if blockedVT < 0 {
						blockedVT = ctx.Clock.Now()
					}
					return // window full toward dst; issue stays in order
				}
			}
			if blockedVT >= 0 {
				if tc.Valid() && a.traceOn() {
					a.child(tc, self, trace.StageCC, "cwnd-wait", next, blockedVT, ctx.Clock.Now())
				}
				blockedVT = -1
			}
			r := &reqs[(next-ciLo)%depth]
			if pipeHook != nil {
				pipeHook('i', next)
			}
			a.issueChunkInto(ctx, r, next, want, op, fn, tc)
			if r.tok != nil && ctrl != nil {
				r.ctrl = ctrl
				r.issueVT = ctx.Clock.Now()
				infl[dst]++
			}
			next++
		}
	}
	issue()
	for ci := ciLo; ci <= ciHi; ci++ {
		r := &reqs[(ci-ciLo)%depth]
		ctrl := r.ctrl
		if pipeHook != nil {
			pipeHook('a', ci)
		}
		p := a.awaitChunk(ctx, r, want, op, fn, tc)
		awaited++
		if ctrl != nil {
			infl[a.homeOfChunk(ci)]--
		}
		issue()
		if p == nil {
			return // cluster failed; remaining tokens die with it
		}
		process(p)
		p.Unpin(ctx)
	}
}

// ---------------------------------------------------------------------------
// Sequential-access detector (fast-path speculative prefetch).

// noteSeq feeds the detector with a fast-path touch of chunk ci. The
// whole state is one packed word (chunk<<8 | streak) updated with a
// single CAS; losing the CAS race means another thread observed an
// access concurrently, and the observation is simply dropped — the
// detector never blocks or retries on the fast path.
func (a *Array) noteSeq(ctx *cluster.Ctx, ci int64) {
	old := a.seq.Load()
	last, streak := old>>8, old&0xff
	if ci == last && streak != 0 {
		return // repeat touch of the same chunk: no new information
	}
	var ns int64
	if ci == last+1 && streak != 0 {
		ns = streak + 1
		if ns > 0xff {
			ns = 0xff
		}
	} else {
		ns = 1
	}
	if !a.seq.CompareAndSwap(old, ci<<8|ns) {
		return // contention: drop silently
	}
	if ns >= 2 {
		a.speculate(ctx, ci+1)
	}
}

// speculate submits a speculative fetch of chunk ci to its owning
// runtime. All checks here are advisory (the runtime dedups again in
// prefetchChunk); the fast path only pays them after the detector has
// already confirmed a streaming pattern.
func (a *Array) speculate(ctx *cluster.Ctx, ci int64) {
	if ci >= a.sh.nChunks {
		return
	}
	dst := a.homeOfChunk(ci)
	if dst == a.self() {
		return
	}
	if a.spareCredit(ctx, dst) < 1 {
		a.Metrics.PrefetchThrottled.Add(1)
		return // demand traffic already owns the window
	}
	d := &a.dents[ci]
	if statePerm(d.state.Load()) != permInvalid {
		return // already resident; in-flight fetches dedup on the runtime
	}
	vt := ctx.Clock.Now()
	a.rtOf(ci).Submit(func(rt *cluster.Runtime) {
		a.prefetchChunk(rt, d, vt)
	})
}

// spareCredit returns how many speculative issues toward dst the
// issuing thread's window has room for beyond its in-flight demand
// requests: window(dst) - demand. Under NoCC the window is the fixed
// pipeline depth, so prefetch still yields to a saturated pipeline —
// speculative traffic must never queue ahead of demand fetches.
func (a *Array) spareCredit(ctx *cluster.Ctx, dst int) int64 {
	win := int64(a.pipeline)
	if !a.ccOff {
		if c := ctx.CC(dst); c != nil {
			win = int64(c.Window(a.pipeline))
		}
	}
	return win - ctx.DemandInflight()
}

// notePrefetchHit attributes a fast-path hit to a speculative fill.
// Called under telOn: the common case (no outstanding prefetch mark)
// costs one atomic load.
func (a *Array) notePrefetchHit(d *dentry) {
	if d.pf.Load() && d.pf.CompareAndSwap(true, false) {
		a.Metrics.PrefetchHits.Add(1)
	}
}
