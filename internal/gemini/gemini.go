// Package gemini implements the Gemini baseline (Zhu et al., OSDI 2016):
// a computation-centric distributed graph engine built on explicit bulk
// message passing rather than shared memory. Vertex state is a plain
// local slice per node — zero abstraction overhead, which is why Gemini
// wins on a single node in the paper's Figure 16 — and each superstep
// sender-combines contributions per remote partition into dense buffers
// exchanged as bulk messages, followed by a barrier.
package gemini

import (
	"math"

	"darray/internal/cluster"
	"darray/internal/fabric"
	"darray/internal/graph"
	"darray/internal/vtime"
)

// Engine is one node's handle to a Gemini-style engine instance.
type Engine struct {
	node   *cluster.Node
	csr    *graph.CSR
	rev    *graph.CSR
	bounds []int64
	lo, hi int64
	id     uint32
	model  *vtime.Model

	inbox chan *fabric.Message
}

// New collectively builds the engine over csr.
func New(node *cluster.Node, csr *graph.CSR) *Engine {
	c := node.Cluster()
	type sharedT struct {
		bounds []int64
		id     uint32
	}
	shAny := node.Collective(func() any {
		return sharedT{bounds: csr.Partition(c.Nodes()), id: c.NextArrayID()}
	})
	sh := shAny.(sharedT)
	e := &Engine{
		node:   node,
		csr:    csr,
		bounds: sh.bounds,
		lo:     sh.bounds[node.ID()],
		hi:     sh.bounds[node.ID()+1],
		id:     sh.id,
		model:  c.Model(),
		inbox:  make(chan *fabric.Message, 4*c.Nodes()),
	}
	node.RegisterRoute(sh.id, cluster.Route{
		RuntimeOf: func(*fabric.Message) int { return 0 },
		Handle:    func(_ *cluster.Runtime, m *fabric.Message) { e.inbox <- m },
	})
	c.Barrier(nil)
	return e
}

// LocalRange returns this node's vertex range.
func (e *Engine) LocalRange() (int64, int64) { return e.lo, e.hi }

func (e *Engine) reverse() *graph.CSR {
	if e.rev == nil {
		e.rev = e.node.Collective(func() any { return e.csr.Reverse() }).(*graph.CSR)
	}
	return e.rev
}

// chargeEdges advances the thread's clock by the calibrated per-edge
// push cost (owner lookup + dense-buffer combine).
func (e *Engine) chargeEdges(ctx *cluster.Ctx, edges int64) {
	if e.model != nil {
		cost := e.model.GeminiEdge
		if cost == 0 {
			cost = maxi64(e.model.NativeAccess, 1)
		}
		ctx.Clock.Advance(edges * cost)
	}
}

func maxi64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// exchange sends one dense float64/uint64 buffer per remote partition
// and merges the n-1 buffers received from peers into local via merge.
// It is the Gemini superstep communication phase.
func (e *Engine) exchange(ctx *cluster.Ctx, outbufs [][]uint64, merge func(local []uint64, remote []uint64)) {
	c := e.node.Cluster()
	nodes := c.Nodes()
	self := e.node.ID()
	for p := 0; p < nodes; p++ {
		if p == self {
			continue
		}
		e.node.Send(&fabric.Message{
			To: p, Array: e.id, Kind: 1, Data: outbufs[p],
			SendVT: ctx.Clock.Now(),
		})
	}
	local := outbufs[self]
	for recv := 0; recv < nodes-1; recv++ {
		m := <-e.inbox
		merge(local, m.Data)
		ctx.Clock.AdvanceTo(m.VT)
		if e.model != nil {
			ctx.Clock.Advance(e.model.CopyCost(8 * len(m.Data)))
		}
	}
	c.Barrier(ctx)
}

// PageRank runs iters rounds of synchronous PageRank and returns this
// node's local ranks.
func (e *Engine) PageRank(ctx *cluster.Ctx, iters int) []float64 {
	c := e.node.Cluster()
	nodes := c.Nodes()
	n := e.csr.N
	curr := make([]float64, e.hi-e.lo)
	for i := range curr {
		curr[i] = 1.0 / float64(n)
	}
	c.Barrier(ctx)
	for it := 0; it < iters; it++ {
		// Dense per-partition combine buffers (sender-side combining).
		outbufs := make([][]uint64, nodes)
		for p := 0; p < nodes; p++ {
			outbufs[p] = make([]uint64, e.bounds[p+1]-e.bounds[p])
		}
		for u := e.lo; u < e.hi; u++ {
			deg := e.csr.OutDegree(u)
			if deg == 0 {
				continue
			}
			contrib := curr[u-e.lo] / float64(deg)
			for _, v := range e.csr.Neighbors(u) {
				p := graph.OwnerOf(e.bounds, v)
				buf := outbufs[p]
				off := v - e.bounds[p]
				buf[off] = math.Float64bits(math.Float64frombits(buf[off]) + contrib)
			}
			e.chargeEdges(ctx, deg)
		}
		acc := outbufs[e.node.ID()]
		e.exchange(ctx, outbufs, func(local, remote []uint64) {
			for i, v := range remote {
				local[i] = math.Float64bits(math.Float64frombits(local[i]) + math.Float64frombits(v))
			}
		})
		base := (1 - 0.85) / float64(n)
		for i := range curr {
			curr[i] = base + 0.85*math.Float64frombits(acc[i])
		}
		e.chargeEdges(ctx, e.hi-e.lo)
		c.Barrier(ctx)
	}
	return curr
}

// ConnectedComponents runs min-label propagation to a fixed point over
// the undirected view; returns local labels and the iteration count.
func (e *Engine) ConnectedComponents(ctx *cluster.Ctx) ([]uint64, int) {
	c := e.node.Cluster()
	nodes := c.Nodes()
	rev := e.reverse()
	inf := ^uint64(0)
	curr := make([]uint64, e.hi-e.lo)
	for i := range curr {
		curr[i] = uint64(e.lo) + uint64(i)
	}
	c.Barrier(ctx)
	iters := 0
	for {
		iters++
		outbufs := make([][]uint64, nodes)
		for p := 0; p < nodes; p++ {
			buf := make([]uint64, e.bounds[p+1]-e.bounds[p])
			for i := range buf {
				buf[i] = inf
			}
			outbufs[p] = buf
		}
		push := func(v int64, label uint64) {
			p := graph.OwnerOf(e.bounds, v)
			off := v - e.bounds[p]
			if label < outbufs[p][off] {
				outbufs[p][off] = label
			}
		}
		for u := e.lo; u < e.hi; u++ {
			label := curr[u-e.lo]
			for _, v := range e.csr.Neighbors(u) {
				push(v, label)
			}
			for _, v := range rev.Neighbors(u) {
				push(v, label)
			}
			e.chargeEdges(ctx, e.csr.OutDegree(u)+rev.OutDegree(u))
		}
		acc := outbufs[e.node.ID()]
		e.exchange(ctx, outbufs, func(local, remote []uint64) {
			for i, v := range remote {
				if v < local[i] {
					local[i] = v
				}
			}
		})
		changed := 0.0
		for i := range curr {
			if acc[i] < curr[i] {
				curr[i] = acc[i]
				changed = 1
			}
		}
		if c.AllReduceSum(ctx, changed) == 0 {
			break
		}
		c.Barrier(ctx)
	}
	return curr, iters
}
