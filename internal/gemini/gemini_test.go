package gemini

import (
	"math"
	"testing"

	"darray/internal/cluster"
	"darray/internal/graph"
)

func refPageRank(g *graph.CSR, iters int) []float64 {
	n := g.N
	curr := make([]float64, n)
	next := make([]float64, n)
	for i := range curr {
		curr[i] = 1.0 / float64(n)
	}
	for it := 0; it < iters; it++ {
		for i := range next {
			next[i] = 0
		}
		for u := int64(0); u < n; u++ {
			deg := g.OutDegree(u)
			if deg == 0 {
				continue
			}
			c := curr[u] / float64(deg)
			for _, v := range g.Neighbors(u) {
				next[v] += c
			}
		}
		base := (1 - 0.85) / float64(n)
		for i := range curr {
			curr[i] = base + 0.85*next[i]
		}
	}
	return curr
}

func tc(t *testing.T, nodes int) *cluster.Cluster {
	t.Helper()
	c := cluster.New(cluster.Config{Nodes: nodes})
	t.Cleanup(c.Close)
	return c
}

func TestGeminiPageRankMatchesReference(t *testing.T) {
	g := graph.RMAT(graph.RMATConfig{Scale: 9, EdgeFactor: 4, A: 0.57, B: 0.19, C: 0.19, Seed: 3})
	want := refPageRank(g, 5)
	c := tc(t, 3)
	locals := make([][]float64, 3)
	bounds := make([][]int64, 3)
	c.Run(func(n *cluster.Node) {
		e := New(n, g)
		lo, hi := e.LocalRange()
		bounds[n.ID()] = []int64{lo, hi}
		locals[n.ID()] = e.PageRank(n.NewCtx(0), 5)
	})
	got := make([]float64, g.N)
	for p := range locals {
		copy(got[bounds[p][0]:bounds[p][1]], locals[p])
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("rank[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestGeminiCCOnRing(t *testing.T) {
	g := graph.Ring(300)
	c := tc(t, 3)
	c.Run(func(n *cluster.Node) {
		e := New(n, g)
		labels, iters := e.ConnectedComponents(n.NewCtx(0))
		if iters < 1 {
			t.Errorf("iters = %d", iters)
		}
		for i, l := range labels {
			if l != 0 {
				t.Errorf("ring label[%d] = %d, want 0", i, l)
				return
			}
		}
	})
}

func TestGeminiCCTwoComponents(t *testing.T) {
	// Two disjoint rings: 0..149 and 150..299.
	srcs := make([]int64, 0, 300)
	dsts := make([]int64, 0, 300)
	for u := int64(0); u < 150; u++ {
		srcs = append(srcs, u)
		dsts = append(dsts, (u+1)%150)
	}
	for u := int64(150); u < 300; u++ {
		srcs = append(srcs, u)
		dsts = append(dsts, 150+(u-150+1)%150)
	}
	g := graph.FromEdgeList(300, srcs, dsts)
	c := tc(t, 2)
	c.Run(func(n *cluster.Node) {
		e := New(n, g)
		lo, _ := e.LocalRange()
		labels, _ := e.ConnectedComponents(n.NewCtx(0))
		for i, l := range labels {
			u := lo + int64(i)
			want := uint64(0)
			if u >= 150 {
				want = 150
			}
			if l != want {
				t.Errorf("label[%d] = %d, want %d", u, l, want)
				return
			}
		}
	})
}

// refCC computes undirected components with union-find, normalized to
// component minima (what min-label propagation converges to).
func refCC(g *graph.CSR) []uint64 {
	parent := make([]int64, g.N)
	for i := range parent {
		parent[i] = int64(i)
	}
	var find func(int64) int64
	find = func(x int64) int64 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for u := int64(0); u < g.N; u++ {
		for _, v := range g.Neighbors(u) {
			ru, rv := find(u), find(v)
			if ru < rv {
				parent[rv] = ru
			} else if rv < ru {
				parent[ru] = rv
			}
		}
	}
	out := make([]uint64, g.N)
	minOf := map[int64]uint64{}
	for i := range out {
		r := find(int64(i))
		if m, ok := minOf[r]; !ok || uint64(i) < m {
			minOf[r] = uint64(i)
		}
	}
	for i := range out {
		out[i] = minOf[find(int64(i))]
	}
	return out
}

func TestGeminiCCMatchesReferenceOnRMAT(t *testing.T) {
	g := graph.RMAT(graph.RMATConfig{Scale: 8, EdgeFactor: 4, A: 0.57, B: 0.19, C: 0.19, Seed: 13})
	want := refCC(g)
	c := tc(t, 3)
	locals := make([][]uint64, 3)
	lows := make([]int64, 3)
	c.Run(func(n *cluster.Node) {
		e := New(n, g)
		lo, _ := e.LocalRange()
		lows[n.ID()] = lo
		labels, _ := e.ConnectedComponents(n.NewCtx(0))
		locals[n.ID()] = labels
	})
	got := make([]uint64, g.N)
	for p := range locals {
		copy(got[lows[p]:], locals[p])
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("label[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestGeminiMultipleInstances(t *testing.T) {
	// Two engines on one cluster must not cross messages.
	g1 := graph.Ring(128)
	g2 := graph.Path(128)
	c := tc(t, 2)
	c.Run(func(n *cluster.Node) {
		e1 := New(n, g1)
		e2 := New(n, g2)
		ctx := n.NewCtx(0)
		r1 := e1.PageRank(ctx, 2)
		r2 := e2.PageRank(ctx, 2)
		if len(r1) == 0 || len(r2) == 0 {
			t.Error("empty local ranks")
		}
	})
}
