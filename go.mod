module darray

go 1.22
