package darray_test

import (
	"math"
	"testing"

	"darray"
)

// TestPublicAPIQuickstart exercises the whole exported surface the way
// the README's quickstart does.
func TestPublicAPIQuickstart(t *testing.T) {
	c := darray.NewCluster(darray.Config{Nodes: 3})
	defer c.Close()
	c.Run(func(n *darray.Node) {
		arr := darray.New(n, 3*512)
		add := arr.RegisterOp(darray.OpAddU64)
		ctx := n.NewCtx(0)

		lo, hi := arr.LocalRange()
		for i := lo; i < hi; i++ {
			arr.Set(ctx, i, uint64(i))
		}
		c.Barrier(ctx)

		if got := arr.Get(ctx, 100); got != 100 {
			t.Errorf("Get(100) = %d", got)
		}
		for k := 0; k < 10; k++ {
			arr.Apply(ctx, add, 5, 1)
		}
		c.Barrier(ctx)
		if got := arr.Get(ctx, 5); got != 5+30 {
			t.Errorf("after applies: %d, want 35", got)
		}

		arr.WLock(ctx, 9)
		arr.Set(ctx, 9, arr.Get(ctx, 9)+1)
		arr.Unlock(ctx, 9)
		c.Barrier(ctx)
		if got := arr.Get(ctx, 9); got != 12 {
			t.Errorf("after locked increments: %d, want 12", got)
		}

		p := arr.PinRead(ctx, lo)
		if p.Get(ctx, lo) != uint64(lo) {
			t.Error("pinned read wrong")
		}
		p.Unpin(ctx)
		c.Barrier(ctx)
	})
}

func TestPublicAPIFloatView(t *testing.T) {
	c := darray.NewCluster(darray.Config{Nodes: 2})
	defer c.Close()
	c.Run(func(n *darray.Node) {
		f := darray.New(n, 1024).AsF64()
		addF := f.RegisterOp(darray.OpAddF64)
		ctx := n.NewCtx(0)
		c.Barrier(ctx)
		f.Apply(ctx, addF, 3, 0.5)
		c.Barrier(ctx)
		if got := f.Get(ctx, 3); math.Abs(got-1.0) > 1e-12 {
			t.Errorf("f[3] = %v, want 1.0", got)
		}
		c.Barrier(ctx)
	})
}

func TestPublicAPICustomPartition(t *testing.T) {
	c := darray.NewCluster(darray.Config{Nodes: 2, ChunkWords: 64})
	defer c.Close()
	c.Run(func(n *darray.Node) {
		arr := darray.New(n, 4*64, darray.Options{PartitionOffset: []int64{0, 64}})
		lo, hi := arr.LocalRange()
		if n.ID() == 0 && (lo != 0 || hi != 64) {
			t.Errorf("node 0 range [%d,%d), want [0,64)", lo, hi)
		}
		if n.ID() == 1 && (lo != 64 || hi != 4*64) {
			t.Errorf("node 1 range [%d,%d), want [64,256)", lo, hi)
		}
	})
}

func TestPublicAPIBuiltinOps(t *testing.T) {
	cases := []struct {
		op   darray.Op
		a, b uint64
		want uint64
	}{
		{darray.OpAddU64, 3, 4, 7},
		{darray.OpMinU64, 9, 2, 2},
		{darray.OpMaxU64, 9, 2, 9},
	}
	for _, tc := range cases {
		if got := tc.op.Fn(tc.a, tc.b); got != tc.want {
			t.Errorf("%s(%d,%d) = %d, want %d", tc.op.Name, tc.a, tc.b, got, tc.want)
		}
		if got := tc.op.Fn(tc.a, tc.op.Identity); got != tc.a {
			t.Errorf("%s identity law broken: op(%d, id) = %d", tc.op.Name, tc.a, got)
		}
	}
	fa := darray.OpAddF64
	sum := fa.Fn(math.Float64bits(1.5), math.Float64bits(2.25))
	if math.Float64frombits(sum) != 3.75 {
		t.Errorf("OpAddF64 = %v", math.Float64frombits(sum))
	}
	fm := darray.OpMinF64
	if math.Float64frombits(fm.Identity) != math.Inf(1) {
		t.Error("OpMinF64 identity should be +Inf")
	}
	fx := darray.OpMaxF64
	if math.Float64frombits(fx.Identity) != math.Inf(-1) {
		t.Error("OpMaxF64 identity should be -Inf")
	}
}
