// PageRank on the raw DArray API — the paper's Figure 8 case study.
// Vertex ranks live in two distributed arrays; each node walks its local
// vertices' out-edges and pushes contributions to (possibly remote)
// neighbors through the Operate interface, which combines updates
// locally and merges them at each chunk's home node.
package main

import (
	"flag"
	"fmt"
	"sort"

	"darray"
	"darray/internal/graph"
)

func main() {
	scale := flag.Int("scale", 12, "R-MAT scale (2^scale vertices)")
	nodes := flag.Int("nodes", 4, "simulated cluster nodes")
	iters := flag.Int("iters", 10, "PageRank iterations")
	flag.Parse()

	g := graph.RMAT(graph.DefaultRMAT(*scale))
	fmt.Printf("rmat%d: %d vertices, %d edges, %d nodes, %d iterations\n",
		*scale, g.N, g.Edges(), *nodes, *iters)

	c := darray.NewCluster(darray.Config{Nodes: *nodes})
	defer c.Close()

	nV := g.N
	top := make([]struct {
		V    int64
		Rank float64
	}, 10)

	c.Run(func(n *darray.Node) {
		currRank := darray.New(n, nV).AsF64()
		nextRank := darray.New(n, nV).AsF64()
		incOp := currRank.RegisterOp(darray.OpAddF64) // paper line 2: registerOp
		_ = nextRank.RegisterOp(darray.OpAddF64)

		ctx := n.NewCtx(0)
		lo, hi := currRank.LocalRange()
		if hi > nV {
			hi = nV
		}

		// Initialize curr_rank (paper lines 5-6).
		currRank.FillF64(ctx, 1.0/float64(nV))
		nextRank.FillF64(ctx, 0)
		c.Barrier(ctx)

		// Core algorithm (paper lines 7-13).
		for it := 0; it < *iters; it++ {
			for src := lo; src < hi && src < g.N; src++ {
				deg := g.OutDegree(src)
				if deg == 0 {
					continue
				}
				inc := currRank.Get(ctx, src) / float64(deg)
				for _, dst := range g.Neighbors(src) {
					// Propagate rank to neighbors (paper line 11).
					nextRank.Apply(ctx, incOp, dst, inc)
				}
			}
			c.Barrier(ctx)
			// Prepare for the next iteration (paper lines 12-13), with
			// the standard damping the paper's simplified listing omits.
			for v := lo; v < hi && v < g.N; v++ {
				r := 0.15/float64(nV) + 0.85*nextRank.Get(ctx, v)
				currRank.Set(ctx, v, r)
				nextRank.Set(ctx, v, 0)
			}
			c.Barrier(ctx)
		}

		if n.ID() == 0 {
			type vr struct {
				V    int64
				Rank float64
			}
			all := make([]vr, g.N)
			for v := int64(0); v < g.N; v++ {
				all[v] = vr{v, currRank.Get(ctx, v)}
			}
			sort.Slice(all, func(i, j int) bool { return all[i].Rank > all[j].Rank })
			for i := 0; i < 10 && i < len(all); i++ {
				top[i].V, top[i].Rank = all[i].V, all[i].Rank
			}
		}
		c.Barrier(ctx)
	})

	fmt.Println("top-10 vertices by rank:")
	for i, t := range top {
		fmt.Printf("%2d. vertex %-8d rank %.6g\n", i+1, t.V, t.Rank)
	}
}
