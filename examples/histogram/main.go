// Distributed histogram: every node scans a private shard of samples
// and builds one global histogram with the Operate interface. The
// write_add combiner turns what would be a contended scatter of remote
// atomic increments into local combining plus one merge per chunk —
// the paper's motivating pattern for the Operated coherence state.
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"strings"

	"darray"
)

func main() {
	nodes := flag.Int("nodes", 4, "simulated cluster nodes")
	samples := flag.Int("samples", 200000, "samples per node")
	bins := flag.Int64("bins", 64, "histogram bins")
	flag.Parse()

	c := darray.NewCluster(darray.Config{Nodes: *nodes})
	defer c.Close()

	final := make([]uint64, *bins)
	c.Run(func(n *darray.Node) {
		hist := darray.New(n, *bins)
		add := hist.RegisterOp(darray.OpAddU64)
		ctx := n.NewCtx(0)
		c.Barrier(ctx)

		// Each node draws from a normal distribution (its private data
		// shard) and bins into the shared global histogram.
		rng := rand.New(rand.NewSource(int64(7 + n.ID())))
		for k := 0; k < *samples; k++ {
			x := rng.NormFloat64()*0.15 + 0.5 // mean .5, sd .15
			bin := int64(x * float64(*bins))
			if bin < 0 {
				bin = 0
			}
			if bin >= *bins {
				bin = *bins - 1
			}
			hist.Apply(ctx, add, bin, 1)
		}
		c.Barrier(ctx)

		if n.ID() == 0 {
			for b := int64(0); b < *bins; b++ {
				final[b] = hist.Get(ctx, b)
			}
			fmt.Printf("combines on node 0: %d (misses: %d)\n",
				ctx.Stats.Combines, ctx.Stats.Misses)
		}
		c.Barrier(ctx)
	})

	var total, peak uint64
	for _, v := range final {
		total += v
		if v > peak {
			peak = v
		}
	}
	fmt.Printf("global histogram: %d samples over %d bins\n", total, *bins)
	for b, v := range final {
		bar := strings.Repeat("#", int(math.Round(float64(v)/float64(peak)*50)))
		if b%4 == 0 { // print every 4th bin to keep the chart short
			fmt.Printf("bin %2d |%-50s| %d\n", b, bar, v)
		}
	}
	want := uint64(*nodes) * uint64(*samples)
	if total != want {
		fmt.Printf("ERROR: lost updates: %d != %d\n", total, want)
	} else {
		fmt.Printf("all %d increments accounted for — no lost updates\n", want)
	}
}
