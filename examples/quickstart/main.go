// Quickstart: the DArray API tour — construction, Read/Write, the
// Operate interface, distributed locks, and the Pin hint, on a
// four-node simulated cluster.
package main

import (
	"fmt"

	"darray"
)

func main() {
	c := darray.NewCluster(darray.Config{Nodes: 4})
	defer c.Close()

	c.Run(func(n *darray.Node) {
		// Collective creation: a global array of 64Ki 8-byte objects,
		// evenly partitioned across the four nodes.
		arr := darray.New(n, 1<<16)
		add := arr.RegisterOp(darray.OpAddU64)
		ctx := n.NewCtx(0)

		// Each node writes its own partition (local, no network).
		lo, hi := arr.LocalRange()
		for i := lo; i < hi; i++ {
			arr.Set(ctx, i, uint64(i))
		}
		c.Barrier(ctx)

		// Remote reads are absorbed by the coherent cache: the first
		// access to a chunk fetches it, the rest hit locally.
		var sum uint64
		for i := int64(0); i < 1024; i++ {
			sum += arr.Get(ctx, i)
		}
		if n.ID() == 1 {
			fmt.Printf("node %d: sum of first 1024 elements = %d (misses: %d, hits: %d)\n",
				n.ID(), sum, ctx.Stats.Misses, ctx.Stats.Hits)
		}
		c.Barrier(ctx)

		// Operate: all four nodes increment the same element
		// concurrently; operands combine locally and merge at the home
		// node — no exclusive ownership, no lock.
		for k := 0; k < 1000; k++ {
			arr.Apply(ctx, add, 42, 1)
		}
		c.Barrier(ctx)
		if n.ID() == 0 {
			fmt.Printf("element 42 after 4x1000 concurrent adds: %d (started at 42)\n",
				arr.Get(ctx, 42))
		}
		c.Barrier(ctx)

		// Distributed reader/writer locks for non-commutative updates.
		arr.WLock(ctx, 7)
		arr.Set(ctx, 7, arr.Get(ctx, 7)*2)
		arr.Unlock(ctx, 7)
		c.Barrier(ctx)
		if n.ID() == 0 {
			fmt.Printf("element 7 after 4 locked doublings: %d (started at 7)\n",
				arr.Get(ctx, 7))
		}
		c.Barrier(ctx)

		// Pin: hold a chunk's reference explicitly so sequential access
		// skips the fast path's atomics entirely.
		p := arr.PinRead(ctx, lo)
		var local uint64
		for i := p.First(); i < p.Limit(); i++ {
			local += p.Get(ctx, i)
		}
		p.Unpin(ctx)
		if n.ID() == 0 {
			fmt.Printf("node %d: pinned scan of chunk [%d,%d) sum = %d\n",
				n.ID(), lo, lo+arr.ChunkWords(), local)
		}
	})
}
