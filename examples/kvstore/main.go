// Distributed key-value store on DArray (the paper's §5.2 application):
// a bucketed entry array plus a slab-managed byte array, driven by a
// YCSB-style zipfian workload from every node.
package main

import (
	"flag"
	"fmt"

	"darray"
	"darray/internal/cluster"
	"darray/internal/kvs"
	"darray/internal/ycsb"
)

func main() {
	nodes := flag.Int("nodes", 3, "simulated cluster nodes")
	records := flag.Int64("records", 10000, "distinct keys")
	opsPer := flag.Int("ops", 5000, "operations per node")
	getRatio := flag.Float64("get-ratio", 0.95, "fraction of gets")
	flag.Parse()

	c := darray.NewCluster(darray.Config{Nodes: *nodes})
	defer c.Close()

	fmt.Printf("kvstore: %d nodes, %d records, %d ops/node, %.0f%% gets (zipfian 0.99)\n",
		*nodes, *records, *opsPer, *getRatio*100)

	c.Run(func(n *darray.Node) {
		store := kvs.NewDArray(n, kvs.Config{
			Buckets:   *records / 8,
			ByteWords: int64(*nodes) * *records * 64,
		})
		ctx := n.NewCtx(0)
		gen := ycsb.NewGenerator(ycsb.Config{Records: *records, Seed: 1})

		// Preload: each node loads its slice of the key space.
		per := *records / int64(c.Nodes())
		lo := int64(n.ID()) * per
		hi := lo + per
		if n.ID() == c.Nodes()-1 {
			hi = *records
		}
		for r := lo; r < hi; r++ {
			if err := store.Put(ctx, ycsb.Key(r), gen.LoadValue(r)); err != nil {
				panic(err)
			}
		}
		c.Barrier(ctx)

		run := ycsb.NewGenerator(ycsb.Config{
			Records:  *records,
			GetRatio: *getRatio,
			Seed:     int64(100 + n.ID()),
		})
		var gets, puts, hits int
		for k := 0; k < *opsPer; k++ {
			op := run.Next()
			switch op.Kind {
			case ycsb.OpGet:
				gets++
				if v, err := store.Get(ctx, op.Key); err == nil &&
					ycsb.ValidValue(ycsb.KeyID(op.Key), v) {
					hits++
				}
			case ycsb.OpPut:
				puts++
				if err := store.Put(ctx, op.Key, op.Val); err != nil {
					panic(err)
				}
			}
		}
		c.Barrier(ctx)
		report(c, ctx, n, gets, puts, hits)
	})
}

func report(c *cluster.Cluster, ctx *cluster.Ctx, n *cluster.Node, gets, puts, hits int) {
	tg := c.AllReduceSum(ctx, float64(gets))
	tp := c.AllReduceSum(ctx, float64(puts))
	th := c.AllReduceSum(ctx, float64(hits))
	if n.ID() == 0 {
		fmt.Printf("totals: %v gets (%v valid), %v puts — all gets returned the "+
			"writer's value\n", tg, th, tp)
		if tg != th {
			fmt.Println("WARNING: some gets missed or returned stale bytes")
		}
	}
}
