// Host-time benchmarks: one per paper table/figure, exercising the real
// code paths at small scale with Go's testing.B harness. These measure
// wall-clock cost on the host (meaningful for comparing abstraction
// overheads of the real implementation); the paper-shaped virtual-time
// series come from cmd/darray-bench (see EXPERIMENTS.md).
package darray_test

import (
	"testing"

	"darray"
	"darray/internal/bcl"
	"darray/internal/cluster"
	"darray/internal/core"
	"darray/internal/engine"
	"darray/internal/gam"
	"darray/internal/gemini"
	"darray/internal/graph"
	"darray/internal/kvs"
	"darray/internal/ycsb"
)

const benchWords = 1 << 14

// benchCluster builds a cluster and per-node arrays, returning node 0's
// handles for driving from the benchmark goroutine.
func benchCluster(b *testing.B, nodes int) (*cluster.Cluster, []*core.Array, []*gam.Array, []*bcl.Array) {
	b.Helper()
	c := cluster.New(cluster.Config{Nodes: nodes, CacheChunks: 64})
	b.Cleanup(c.Close)
	arrs := make([]*core.Array, nodes)
	gams := make([]*gam.Array, nodes)
	bcls := make([]*bcl.Array, nodes)
	c.Run(func(n *cluster.Node) {
		arrs[n.ID()] = core.New(n, benchWords)
		arrs[n.ID()].RegisterOp(core.OpAddU64)
		gams[n.ID()] = gam.New(n, benchWords)
		bcls[n.ID()] = bcl.New(n, benchWords)
	})
	return c, arrs, gams, bcls
}

// Figure 1: single-machine sequential 8-byte access cost per system.
func BenchmarkFig01SeqReadNative(b *testing.B) {
	buf := make([]uint64, benchWords)
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += buf[i&(benchWords-1)]
	}
	_ = sink
}

func BenchmarkFig01SeqReadDArray(b *testing.B) {
	_, arrs, _, _ := benchCluster(b, 1)
	ctx := arrs[0].Node().NewCtx(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arrs[0].Get(ctx, int64(i&(benchWords-1)))
	}
}

func BenchmarkFig01SeqReadDArrayPin(b *testing.B) {
	_, arrs, _, _ := benchCluster(b, 1)
	ctx := arrs[0].Node().NewCtx(0)
	p := arrs[0].PinRead(ctx, 0)
	lim := p.Limit()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Get(ctx, int64(i)%lim)
	}
	b.StopTimer()
	p.Unpin(ctx)
}

func BenchmarkFig01SeqReadGAM(b *testing.B) {
	_, _, gams, _ := benchCluster(b, 1)
	ctx := gams[0].Inner().Node().NewCtx(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gams[0].Get(ctx, int64(i&(benchWords-1)))
	}
}

func BenchmarkFig01SeqReadBCL(b *testing.B) {
	_, _, _, bcls := benchCluster(b, 1)
	ctx := bcls[0].Node().NewCtx(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bcls[0].Get(ctx, int64(i&(benchWords-1)))
	}
}

// Figure 12: three nodes, multithreaded sequential Operate.
func BenchmarkFig12OperateThreads(b *testing.B) {
	c, arrs, _, _ := benchCluster(b, 3)
	const threads = 2
	per := b.N/(3*threads) + 1
	b.ResetTimer()
	c.Run(func(n *cluster.Node) {
		arr := arrs[n.ID()]
		n.RunThreads(threads, func(ctx *cluster.Ctx) {
			for k := 0; k < per; k++ {
				arr.Apply(ctx, 1, int64(k&(benchWords-1)), 1)
			}
		})
	})
}

// Figure 13: weak-ish scaling sweep at 3 nodes, one driver per node.
func BenchmarkFig13SeqReadThreeNodes(b *testing.B) {
	c, arrs, _, _ := benchCluster(b, 3)
	per := b.N/3 + 1
	b.ResetTimer()
	c.Run(func(n *cluster.Node) {
		arr := arrs[n.ID()]
		ctx := n.NewCtx(0)
		lo := int64(n.ID()) * benchWords / 3
		for k := 0; k < per; k++ {
			arr.Get(ctx, (lo+int64(k))%benchWords)
		}
	})
}

// Figure 14: zipfian write_add via Operate vs via WLock+Read+Write.
func BenchmarkFig14ZipfOperate(b *testing.B) {
	c, arrs, _, _ := benchCluster(b, 2)
	per := b.N/2 + 1
	b.ResetTimer()
	c.Run(func(n *cluster.Node) {
		arr := arrs[n.ID()]
		ctx := n.NewCtx(0)
		z := ycsb.NewZipfian(benchWords, 0.99, int64(n.ID()))
		for k := 0; k < per; k++ {
			arr.Apply(ctx, 1, z.Next(), 1)
		}
	})
}

func BenchmarkFig14ZipfLockRW(b *testing.B) {
	c, arrs, _, _ := benchCluster(b, 2)
	per := b.N/2 + 1
	b.ResetTimer()
	c.Run(func(n *cluster.Node) {
		arr := arrs[n.ID()]
		ctx := n.NewCtx(0)
		z := ycsb.NewZipfian(benchWords, 0.99, int64(n.ID()))
		for k := 0; k < per; k++ {
			i := z.Next()
			arr.WLock(ctx, i)
			arr.Set(ctx, i, arr.Get(ctx, i)+1)
			arr.Unlock(ctx, i)
		}
	})
}

// Figure 15: pinned vs plain sequential read (remote partition).
func BenchmarkFig15RemoteReadPlain(b *testing.B) {
	_, arrs, _, _ := benchCluster(b, 2)
	ctx := arrs[0].Node().NewCtx(0)
	half := int64(benchWords / 2) // node 1's partition
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arrs[0].Get(ctx, half+int64(i)%half)
	}
}

func BenchmarkFig15RemoteReadPinned(b *testing.B) {
	_, arrs, _, _ := benchCluster(b, 2)
	ctx := arrs[0].Node().NewCtx(0)
	half := int64(benchWords / 2)
	cw := arrs[0].ChunkWords()
	b.ResetTimer()
	i := int64(0)
	for i < int64(b.N) {
		base := half + (i%half)/cw*cw
		p := arrs[0].PinRead(ctx, base)
		for j := p.First(); j < p.Limit() && i < int64(b.N); j++ {
			p.Get(ctx, j)
			i++
		}
		p.Unpin(ctx)
	}
}

// Figure 16: one PageRank superstep per iteration on the DArray engine
// and the Gemini baseline.
func BenchmarkFig16PageRankDArray(b *testing.B) {
	g := graph.RMAT(graph.DefaultRMAT(10))
	c := cluster.New(cluster.Config{Nodes: 2, CacheChunks: 128})
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Run(func(n *cluster.Node) {
			eg := engine.NewGraph(n, g)
			eg.PageRank(n.NewCtx(0), 1, false)
		})
	}
	b.ReportMetric(float64(g.Edges()), "edges/op")
}

func BenchmarkFig16PageRankGemini(b *testing.B) {
	g := graph.RMAT(graph.DefaultRMAT(10))
	c := cluster.New(cluster.Config{Nodes: 2})
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Run(func(n *cluster.Node) {
			e := gemini.New(n, g)
			e.PageRank(n.NewCtx(0), 1)
		})
	}
	b.ReportMetric(float64(g.Edges()), "edges/op")
}

// Figure 17: YCSB ops against the DArray KVS on two nodes.
func BenchmarkFig17KVSGet(b *testing.B) {
	c := cluster.New(cluster.Config{Nodes: 2, CacheChunks: 256})
	defer c.Close()
	const records = 512
	stores := make([]*kvs.Store, 2)
	c.Run(func(n *cluster.Node) {
		s := kvs.NewDArray(n, kvs.Config{Buckets: 128, ByteWords: 1 << 17})
		stores[n.ID()] = s
		ctx := n.NewCtx(0)
		if n.ID() == 0 {
			gen := ycsb.NewGenerator(ycsb.Config{Records: records, Seed: 1})
			for r := int64(0); r < records; r++ {
				if err := s.Put(ctx, ycsb.Key(r), gen.LoadValue(r)); err != nil {
					panic(err)
				}
			}
		}
		c.Barrier(ctx)
	})
	ctx := stores[1].Node().NewCtx(0)
	z := ycsb.NewZipfian(records, 0.99, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stores[1].Get(ctx, ycsb.Key(z.Next())); err != nil {
			b.Fatal(err)
		}
	}
}

// Figure 18: uniformly random reads (poor locality).
func BenchmarkFig18RandomReadDArray(b *testing.B) {
	_, arrs, _, _ := benchCluster(b, 2)
	ctx := arrs[0].Node().NewCtx(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arrs[0].Get(ctx, ctx.Rng.Int63n(benchWords))
	}
}

func BenchmarkFig18RandomReadBCL(b *testing.B) {
	_, _, _, bcls := benchCluster(b, 2)
	ctx := bcls[0].Node().NewCtx(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bcls[0].Get(ctx, ctx.Rng.Int63n(benchWords))
	}
}

var _ = darray.OpAddU64 // the public package is exercised in darray_test.go
