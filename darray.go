// Package darray is the public API of the DArray reproduction: a high
// performance distributed object array with a coherent cache, a
// lock-free data access path, associative-commutative "Operate"
// updates, distributed reader/writer locks, and the Pin optimization
// hint (Ding, Han, Chen — ICPP 2023).
//
// A program runs SPMD over a simulated cluster:
//
//	c := darray.NewCluster(darray.Config{Nodes: 4})
//	defer c.Close()
//	c.Run(func(n *darray.Node) {
//		arr := darray.New(n, 1<<20)
//		add := arr.RegisterOp(darray.OpAddU64)
//		ctx := n.NewCtx(0)
//		arr.Apply(ctx, add, 7, 1) // combines locally, merges at home
//		c.Barrier(ctx)
//		_ = arr.Get(ctx, 7)
//	})
//
// The full design — architecture, the extended four-state coherence
// protocol, and the virtual-time benchmarking methodology — is described
// in DESIGN.md; the per-figure reproduction record lives in
// EXPERIMENTS.md.
package darray

import (
	"darray/internal/cluster"
	"darray/internal/core"
)

// Re-exported types: the cluster harness and the array API.
type (
	// Config describes a simulated cluster (node count, runtime threads,
	// cache geometry, optional virtual-time model).
	Config = cluster.Config
	// Cluster is a set of simulated nodes connected by the RDMA fabric.
	Cluster = cluster.Cluster
	// Node is one simulated machine.
	Node = cluster.Node
	// Ctx is an application-thread context (clock, RNG, statistics).
	Ctx = cluster.Ctx
	// Array is a distributed array of 8-byte objects.
	Array = core.Array
	// F64 is a float64-typed view of an Array.
	F64 = core.F64
	// I64 is an int64-typed view of an Array.
	I64 = core.I64
	// Op is an associative-commutative operator with identity.
	Op = core.Op
	// OpID names a registered operator.
	OpID = core.OpID
	// Options customizes array construction (custom partitioning).
	Options = core.Options
	// Pin is an explicitly held chunk reference (fast accessors).
	Pin = core.Pin
)

// Builtin operators for the Operate interface.
var (
	OpAddU64 = core.OpAddU64
	OpMinU64 = core.OpMinU64
	OpMaxU64 = core.OpMaxU64
	OpAddF64 = core.OpAddF64
	OpMinF64 = core.OpMinF64
	OpMaxF64 = core.OpMaxF64
)

// WithPrefetch returns Options pinning one array's bulk-transfer
// pipeline to k outstanding chunk fetches (k <= 1 forces the serial
// path); combine with the cluster-wide Config knobs (TxBurst,
// PipelineDepth, PrefetchAhead, DisableCoalesce) to tune or ablate the
// streaming optimizations.
var WithPrefetch = core.WithPrefetch

// WithShipping returns Options forcing one array's function-shipping
// mode: "auto" (per-chunk contention estimator), "on" (every remote
// Apply ships to the home), or "off" (cached combining only, the
// pre-shipping protocol). It overrides the cluster-wide Config.Ship.
var WithShipping = core.WithShipping

// NewCluster builds and starts a simulated cluster.
func NewCluster(cfg Config) *Cluster { return cluster.New(cfg) }

// New collectively creates a distributed array of n 8-byte elements
// (every node must call it in the same order — SPMD).
func New(node *Node, n int64, opts ...Options) *Array {
	return core.New(node, n, opts...)
}
